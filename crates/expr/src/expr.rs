//! Guard expressions over events, propositions and scoreboard checks.
//!
//! §4 of the paper defines transition labels `exp / act` where `exp` ranges
//! over "logical expressions formed over EVENTS and PROP using logical
//! connectives ∧, ∨ and ¬". The case-study monitors additionally guard
//! transitions with `Chk_evt(e)` — a query against the dynamic scoreboard —
//! so `Chk_evt` is a first-class atom here ([`Expr::ChkEvt`]).

use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

use crate::symbol::{Alphabet, SymbolId};
use crate::valuation::Valuation;

/// Read-only view of a scoreboard, as needed to evaluate `Chk_evt` atoms.
///
/// The concrete scoreboard lives in `cesc-core`; expressions only need to
/// ask whether at least one occurrence of an event is recorded (§4: the
/// scoreboard "dynamically maintains the information about event
/// occurrences, which is used in implementing the causality checks").
pub trait ScoreboardView {
    /// Whether at least one occurrence of `event` is currently recorded.
    fn has_event(&self, event: SymbolId) -> bool;
}

/// A scoreboard view with no recorded occurrences; every `Chk_evt` is
/// false. Useful for evaluating pure (scoreboard-free) expressions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EmptyScoreboard;

impl ScoreboardView for EmptyScoreboard {
    fn has_event(&self, _event: SymbolId) -> bool {
        false
    }
}

impl ScoreboardView for Valuation {
    /// Treats the valuation itself as the set of recorded events; used by
    /// satisfiability search where `Chk_evt` atoms are free variables.
    fn has_event(&self, event: SymbolId) -> bool {
        self.contains(event)
    }
}

/// A boolean expression over `EVENTS ∪ PROP` plus `Chk_evt` scoreboard
/// atoms.
///
/// `And`/`Or` are n-ary so pattern elements extracted from a chart's grid
/// lines (`e1 ∧ … ∧ ek`, §5 `extract_pattern`) print the way the paper
/// writes them. [`Expr`] implements `&`, `|` and `!` for concise
/// construction:
///
/// ```
/// use cesc_expr::{Alphabet, Expr};
/// let mut ab = Alphabet::new();
/// let (req, rdy) = (ab.event("req"), ab.event("rdy"));
/// let guard = Expr::sym(req) & !Expr::sym(rdy);
/// assert_eq!(guard.display(&ab).to_string(), "(req & !rdy)");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Constant truth value (`TRUE` appears as pattern element `b` in the
    /// paper's Fig 5).
    Const(bool),
    /// The truth value of an event or proposition at the current tick.
    Sym(SymbolId),
    /// `Chk_evt(e)`: the scoreboard currently records an occurrence of `e`.
    ChkEvt(SymbolId),
    /// Negation.
    Not(Box<Expr>),
    /// N-ary conjunction; empty conjunction is `true`.
    And(Vec<Expr>),
    /// N-ary disjunction; empty disjunction is `false`.
    Or(Vec<Expr>),
}

impl Expr {
    /// The constant `true`.
    pub fn t() -> Self {
        Expr::Const(true)
    }

    /// The constant `false`.
    pub fn f() -> Self {
        Expr::Const(false)
    }

    /// Atom for symbol `id`.
    pub fn sym(id: SymbolId) -> Self {
        Expr::Sym(id)
    }

    /// `Chk_evt(event)` scoreboard atom.
    pub fn chk(event: SymbolId) -> Self {
        Expr::ChkEvt(event)
    }

    /// Conjunction of `parts` (flattening nested conjunctions).
    pub fn and(parts: impl IntoIterator<Item = Expr>) -> Self {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Expr::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Expr::t(),
            1 => out.pop().expect("len checked"),
            _ => Expr::And(out),
        }
    }

    /// Disjunction of `parts` (flattening nested disjunctions).
    pub fn or(parts: impl IntoIterator<Item = Expr>) -> Self {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Expr::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Expr::f(),
            1 => out.pop().expect("len checked"),
            _ => Expr::Or(out),
        }
    }

    /// Conjunction of positive atoms for every symbol in `ids` — the
    /// paper's `extract_pattern` translation for a grid line carrying
    /// multiple events (`e1 … ek ⇒ (e1 ∧ … ∧ ek)`).
    pub fn all_of(ids: impl IntoIterator<Item = SymbolId>) -> Self {
        Expr::and(ids.into_iter().map(Expr::sym))
    }

    /// Evaluates the expression at one trace element.
    ///
    /// `v` supplies the truth values of `EVENTS ∪ PROP` for the current
    /// tick, `sb` answers `Chk_evt` queries.
    pub fn eval(&self, v: Valuation, sb: &dyn ScoreboardView) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Sym(id) => v.contains(*id),
            Expr::ChkEvt(id) => sb.has_event(*id),
            Expr::Not(e) => !e.eval(v, sb),
            Expr::And(es) => es.iter().all(|e| e.eval(v, sb)),
            Expr::Or(es) => es.iter().any(|e| e.eval(v, sb)),
        }
    }

    /// Evaluates an expression containing no `Chk_evt` atoms.
    ///
    /// Convenience for pure pattern elements; `Chk_evt` atoms evaluate as
    /// false (empty scoreboard).
    pub fn eval_pure(&self, v: Valuation) -> bool {
        self.eval(v, &EmptyScoreboard)
    }

    /// Whether the expression mentions any `Chk_evt` atom.
    pub fn uses_scoreboard(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Sym(_) => false,
            Expr::ChkEvt(_) => true,
            Expr::Not(e) => e.uses_scoreboard(),
            Expr::And(es) | Expr::Or(es) => es.iter().any(Expr::uses_scoreboard),
        }
    }

    /// All symbol atoms mentioned (excluding `Chk_evt` targets), as a
    /// valuation-set.
    pub fn symbols(&self) -> Valuation {
        let mut acc = Valuation::empty();
        self.collect_symbols(&mut acc, false);
        acc
    }

    /// All events referenced by `Chk_evt` atoms.
    pub fn chk_targets(&self) -> Valuation {
        let mut acc = Valuation::empty();
        self.collect_symbols(&mut acc, true);
        acc
    }

    fn collect_symbols(&self, acc: &mut Valuation, chk: bool) {
        match self {
            Expr::Const(_) => {}
            Expr::Sym(id) => {
                if !chk {
                    acc.insert(*id);
                }
            }
            Expr::ChkEvt(id) => {
                if chk {
                    acc.insert(*id);
                }
            }
            Expr::Not(e) => e.collect_symbols(acc, chk),
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.collect_symbols(acc, chk);
                }
            }
        }
    }

    /// Symbols occurring with *positive* polarity (not under an odd number
    /// of negations). §5's `add_causality_check` attaches `Add_evt(ex)` to
    /// "every transition that depends on the occurrence of event ex" —
    /// i.e. transitions whose pattern element mentions `ex` positively.
    pub fn positive_symbols(&self) -> Valuation {
        let mut acc = Valuation::empty();
        self.collect_polarity(&mut acc, true);
        acc
    }

    /// Symbols occurring with *negative* polarity.
    pub fn negative_symbols(&self) -> Valuation {
        let mut acc = Valuation::empty();
        self.collect_polarity(&mut acc, false);
        acc
    }

    fn collect_polarity(&self, acc: &mut Valuation, positive: bool) {
        match self {
            Expr::Const(_) | Expr::ChkEvt(_) => {}
            Expr::Sym(id) => {
                if positive {
                    acc.insert(*id);
                }
            }
            Expr::Not(e) => e.collect_polarity(acc, !positive),
            Expr::And(es) | Expr::Or(es) => {
                for e in es {
                    e.collect_polarity(acc, positive);
                }
            }
        }
    }

    /// Structural simplification: constant folding, double-negation
    /// elimination, flattening, idempotence and complement detection.
    ///
    /// The result evaluates identically on every valuation/scoreboard
    /// (checked by property test).
    pub fn simplify(&self) -> Expr {
        match self {
            Expr::Const(_) | Expr::Sym(_) | Expr::ChkEvt(_) => self.clone(),
            Expr::Not(e) => match e.simplify() {
                Expr::Const(b) => Expr::Const(!b),
                Expr::Not(inner) => *inner,
                other => Expr::Not(Box::new(other)),
            },
            Expr::And(es) => {
                let mut parts: Vec<Expr> = Vec::new();
                for e in es {
                    match e.simplify() {
                        Expr::Const(true) => {}
                        Expr::Const(false) => return Expr::f(),
                        Expr::And(inner) => {
                            for i in inner {
                                if !parts.contains(&i) {
                                    parts.push(i);
                                }
                            }
                        }
                        other => {
                            if !parts.contains(&other) {
                                parts.push(other);
                            }
                        }
                    }
                }
                if has_complement(&parts) {
                    return Expr::f();
                }
                Expr::and(parts)
            }
            Expr::Or(es) => {
                let mut parts: Vec<Expr> = Vec::new();
                for e in es {
                    match e.simplify() {
                        Expr::Const(false) => {}
                        Expr::Const(true) => return Expr::t(),
                        Expr::Or(inner) => {
                            for i in inner {
                                if !parts.contains(&i) {
                                    parts.push(i);
                                }
                            }
                        }
                        other => {
                            if !parts.contains(&other) {
                                parts.push(other);
                            }
                        }
                    }
                }
                if has_complement(&parts) {
                    return Expr::t();
                }
                Expr::or(parts)
            }
        }
    }

    /// Negation-normal form: negations pushed down to atoms.
    pub fn to_nnf(&self) -> Expr {
        self.nnf(false)
    }

    fn nnf(&self, negated: bool) -> Expr {
        match self {
            Expr::Const(b) => Expr::Const(*b != negated),
            Expr::Sym(_) | Expr::ChkEvt(_) => {
                if negated {
                    Expr::Not(Box::new(self.clone()))
                } else {
                    self.clone()
                }
            }
            Expr::Not(e) => e.nnf(!negated),
            Expr::And(es) => {
                let parts = es.iter().map(|e| e.nnf(negated));
                if negated {
                    Expr::or(parts)
                } else {
                    Expr::and(parts)
                }
            }
            Expr::Or(es) => {
                let parts = es.iter().map(|e| e.nnf(negated));
                if negated {
                    Expr::and(parts)
                } else {
                    Expr::or(parts)
                }
            }
        }
    }

    /// Renders the expression with symbol names from `alphabet`.
    ///
    /// The output is re-parseable by [`crate::parse_expr`]:
    /// `!` binds tightest, then `&`, then `|`; `Chk_evt(name)` for
    /// scoreboard atoms.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> impl fmt::Display + 'a {
        DisplayExpr {
            expr: self,
            alphabet,
        }
    }
}

fn has_complement(parts: &[Expr]) -> bool {
    parts.iter().any(|p| {
        let neg = match p {
            Expr::Not(inner) => (**inner).clone(),
            other => Expr::Not(Box::new(other.clone())),
        };
        parts.contains(&neg)
    })
}

impl BitAnd for Expr {
    type Output = Expr;
    fn bitand(self, rhs: Expr) -> Expr {
        Expr::and([self, rhs])
    }
}

impl BitOr for Expr {
    type Output = Expr;
    fn bitor(self, rhs: Expr) -> Expr {
        Expr::or([self, rhs])
    }
}

impl Not for Expr {
    type Output = Expr;
    fn not(self) -> Expr {
        match self {
            Expr::Not(inner) => *inner,
            other => Expr::Not(Box::new(other)),
        }
    }
}

impl From<bool> for Expr {
    fn from(b: bool) -> Expr {
        Expr::Const(b)
    }
}

struct DisplayExpr<'a> {
    expr: &'a Expr,
    alphabet: &'a Alphabet,
}

impl DisplayExpr<'_> {
    fn fmt_prec(&self, e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match e {
            Expr::Const(true) => f.write_str("true"),
            Expr::Const(false) => f.write_str("false"),
            Expr::Sym(id) => {
                if id.index() < self.alphabet.len() {
                    f.write_str(self.alphabet.name(*id))
                } else {
                    write!(f, "{id}")
                }
            }
            Expr::ChkEvt(id) => {
                if id.index() < self.alphabet.len() {
                    write!(f, "Chk_evt({})", self.alphabet.name(*id))
                } else {
                    write!(f, "Chk_evt({id})")
                }
            }
            Expr::Not(inner) => {
                f.write_str("!")?;
                match **inner {
                    Expr::Sym(_) | Expr::ChkEvt(_) | Expr::Const(_) | Expr::Not(_) => {
                        self.fmt_prec(inner, f)
                    }
                    _ => {
                        f.write_str("(")?;
                        self.fmt_prec(inner, f)?;
                        f.write_str(")")
                    }
                }
            }
            Expr::And(es) => {
                f.write_str("(")?;
                for (i, part) in es.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" & ")?;
                    }
                    match part {
                        Expr::Or(_) => {
                            f.write_str("(")?;
                            self.fmt_prec(part, f)?;
                            f.write_str(")")?;
                        }
                        _ => self.fmt_prec(part, f)?,
                    }
                }
                f.write_str(")")
            }
            Expr::Or(es) => {
                f.write_str("(")?;
                for (i, part) in es.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" | ")?;
                    }
                    self.fmt_prec(part, f)?;
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(self.expr, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Alphabet;

    fn setup() -> (Alphabet, SymbolId, SymbolId, SymbolId) {
        let mut ab = Alphabet::new();
        let e1 = ab.event("e1");
        let e2 = ab.event("e2");
        let p1 = ab.prop("p1");
        (ab, e1, e2, p1)
    }

    #[test]
    fn eval_atoms() {
        let (_, e1, e2, p1) = setup();
        let v = Valuation::of([e1, p1]);
        assert!(Expr::sym(e1).eval_pure(v));
        assert!(!Expr::sym(e2).eval_pure(v));
        assert!(Expr::sym(p1).eval_pure(v));
        assert!(Expr::t().eval_pure(v));
        assert!(!Expr::f().eval_pure(v));
    }

    #[test]
    fn eval_connectives_fig5_element() {
        // Fig 5: a = ((p1 & e1) | e2)
        let (_, e1, e2, p1) = setup();
        let a = (Expr::sym(p1) & Expr::sym(e1)) | Expr::sym(e2);
        assert!(a.eval_pure(Valuation::of([p1, e1])));
        assert!(a.eval_pure(Valuation::of([e2])));
        assert!(!a.eval_pure(Valuation::of([e1]))); // p1 missing
        assert!(!a.eval_pure(Valuation::empty()));
    }

    #[test]
    fn chk_evt_consults_scoreboard() {
        let (_, e1, _, _) = setup();
        let g = Expr::chk(e1);
        assert!(!g.eval(Valuation::empty(), &EmptyScoreboard));
        // a Valuation used as ScoreboardView: e1 recorded
        let sb = Valuation::of([e1]);
        assert!(g.eval(Valuation::empty(), &sb));
        assert!(g.uses_scoreboard());
        assert!(!Expr::sym(e1).uses_scoreboard());
    }

    #[test]
    fn symbol_collection_and_polarity() {
        let (_, e1, e2, p1) = setup();
        let e = (Expr::sym(e1) & !Expr::sym(e2)) | Expr::chk(p1);
        assert_eq!(e.symbols(), Valuation::of([e1, e2]));
        assert_eq!(e.chk_targets(), Valuation::of([p1]));
        assert_eq!(e.positive_symbols(), Valuation::of([e1]));
        assert_eq!(e.negative_symbols(), Valuation::of([e2]));
    }

    #[test]
    fn double_negation_collapses_via_not_operator() {
        let (_, e1, _, _) = setup();
        let e = !!Expr::sym(e1);
        assert_eq!(e, Expr::sym(e1));
    }

    #[test]
    fn simplify_folds_constants() {
        let (_, e1, e2, _) = setup();
        let e = Expr::sym(e1) & Expr::t();
        assert_eq!(e.simplify(), Expr::sym(e1));
        let e = Expr::sym(e1) & Expr::f();
        assert_eq!(e.simplify(), Expr::f());
        let e = Expr::sym(e1) | Expr::t();
        assert_eq!(e.simplify(), Expr::t());
        let e = Expr::or([Expr::sym(e1), Expr::sym(e1), Expr::sym(e2)]);
        assert_eq!(
            e.simplify(),
            Expr::or([Expr::sym(e1), Expr::sym(e2)])
        );
    }

    #[test]
    fn simplify_detects_complements() {
        let (_, e1, _, _) = setup();
        let e = Expr::sym(e1) & !Expr::sym(e1);
        assert_eq!(e.simplify(), Expr::f());
        let e = Expr::sym(e1) | !Expr::sym(e1);
        assert_eq!(e.simplify(), Expr::t());
    }

    #[test]
    fn nnf_pushes_negations() {
        let (ab, e1, e2, _) = setup();
        let e = !(Expr::sym(e1) & Expr::sym(e2));
        let nnf = e.to_nnf();
        assert_eq!(nnf.display(&ab).to_string(), "(!e1 | !e2)");
        // de Morgan the other way
        let e = !(Expr::sym(e1) | Expr::sym(e2));
        assert_eq!(e.to_nnf().display(&ab).to_string(), "(!e1 & !e2)");
    }

    #[test]
    fn display_round_structure() {
        let (ab, e1, e2, p1) = setup();
        let a = (Expr::sym(p1) & Expr::sym(e1)) | Expr::sym(e2);
        assert_eq!(a.display(&ab).to_string(), "((p1 & e1) | e2)");
        let g = Expr::sym(e1) & Expr::chk(e2);
        assert_eq!(g.display(&ab).to_string(), "(e1 & Chk_evt(e2))");
    }

    #[test]
    fn all_of_builds_conjunction() {
        let (ab, e1, e2, _) = setup();
        let e = Expr::all_of([e1, e2]);
        assert_eq!(e.display(&ab).to_string(), "(e1 & e2)");
        assert_eq!(Expr::all_of([]), Expr::t());
        assert_eq!(Expr::all_of([e1]), Expr::sym(e1));
    }

    #[test]
    fn and_or_flatten() {
        let (_, e1, e2, p1) = setup();
        let nested = Expr::and([Expr::and([Expr::sym(e1), Expr::sym(e2)]), Expr::sym(p1)]);
        assert_eq!(
            nested,
            Expr::And(vec![Expr::sym(e1), Expr::sym(e2), Expr::sym(p1)])
        );
        let nested = Expr::or([Expr::or([Expr::sym(e1)]), Expr::sym(p1)]);
        assert_eq!(nested, Expr::Or(vec![Expr::sym(e1), Expr::sym(p1)]));
    }
}
