//! Satisfiability and compatibility queries over guard expressions.
//!
//! The synthesis algorithm's `suffix_of` test (§5) needs to decide, at
//! synthesis time, whether a trace element that matched pattern element
//! `P[i]` *could also* match pattern element `P[j]` — i.e. whether
//! `P[i] ∧ P[j]` is satisfiable. Chart guards are tiny (≤ ~10 atoms), so a
//! semantic-branching search over the atoms actually present in the
//! expression is exact and fast; no external solver is needed.

use crate::expr::Expr;
use crate::symbol::SymbolId;
use crate::valuation::Valuation;

/// Partial assignment used during the satisfiability search: separate
/// true/false sets for tick symbols and scoreboard (`Chk_evt`) atoms.
#[derive(Debug, Clone, Copy, Default)]
struct Partial {
    sym_true: Valuation,
    sym_false: Valuation,
    chk_true: Valuation,
    chk_false: Valuation,
}

/// A satisfying witness returned by [`satisfying_valuation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Witness {
    /// Symbols that must be true at the tick.
    pub valuation: Valuation,
    /// Events the scoreboard must record (for `Chk_evt` atoms).
    pub scoreboard: Valuation,
}

/// Evaluates `e` under a partial assignment; `None` means "not yet
/// determined".
fn eval_partial(e: &Expr, p: &Partial) -> Option<bool> {
    match e {
        Expr::Const(b) => Some(*b),
        Expr::Sym(id) => {
            if p.sym_true.contains(*id) {
                Some(true)
            } else if p.sym_false.contains(*id) {
                Some(false)
            } else {
                None
            }
        }
        Expr::ChkEvt(id) => {
            if p.chk_true.contains(*id) {
                Some(true)
            } else if p.chk_false.contains(*id) {
                Some(false)
            } else {
                None
            }
        }
        Expr::Not(inner) => eval_partial(inner, p).map(|b| !b),
        Expr::And(es) => {
            let mut all_true = true;
            for part in es {
                match eval_partial(part, p) {
                    Some(false) => return Some(false),
                    Some(true) => {}
                    None => all_true = false,
                }
            }
            if all_true {
                Some(true)
            } else {
                None
            }
        }
        Expr::Or(es) => {
            let mut all_false = true;
            for part in es {
                match eval_partial(part, p) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => all_false = false,
                }
            }
            if all_false {
                Some(false)
            } else {
                None
            }
        }
    }
}

/// Picks an unassigned atom of `e`, preferring tick symbols.
fn pick_unassigned(e: &Expr, p: &Partial) -> Option<(SymbolId, bool)> {
    // (id, is_chk)
    match e {
        Expr::Const(_) => None,
        Expr::Sym(id) => {
            if !p.sym_true.contains(*id) && !p.sym_false.contains(*id) {
                Some((*id, false))
            } else {
                None
            }
        }
        Expr::ChkEvt(id) => {
            if !p.chk_true.contains(*id) && !p.chk_false.contains(*id) {
                Some((*id, true))
            } else {
                None
            }
        }
        Expr::Not(inner) => pick_unassigned(inner, p),
        Expr::And(es) | Expr::Or(es) => es.iter().find_map(|part| pick_unassigned(part, p)),
    }
}

fn search(e: &Expr, p: Partial) -> Option<Partial> {
    match eval_partial(e, &p) {
        Some(true) => return Some(p),
        Some(false) => return None,
        None => {}
    }
    let (id, is_chk) = pick_unassigned(e, &p)?;
    for value in [true, false] {
        let mut q = p;
        match (is_chk, value) {
            (false, true) => q.sym_true.insert(id),
            (false, false) => q.sym_false.insert(id),
            (true, true) => q.chk_true.insert(id),
            (true, false) => q.chk_false.insert(id),
        }
        if let Some(done) = search(e, q) {
            return Some(done);
        }
    }
    None
}

/// Whether `e` is satisfiable by *some* tick valuation and scoreboard
/// state.
///
/// # Examples
///
/// ```
/// use cesc_expr::{Alphabet, Expr, sat};
/// let mut ab = Alphabet::new();
/// let a = ab.event("a");
/// assert!(sat::is_satisfiable(&Expr::sym(a)));
/// assert!(!sat::is_satisfiable(&(Expr::sym(a) & !Expr::sym(a))));
/// ```
pub fn is_satisfiable(e: &Expr) -> bool {
    search(e, Partial::default()).is_some()
}

/// Whether `e` holds for *every* tick valuation and scoreboard state.
pub fn is_tautology(e: &Expr) -> bool {
    !is_satisfiable(&Expr::Not(Box::new(e.clone())))
}

/// Whether two guards can be matched by one and the same trace element —
/// the compatibility predicate behind the synthesis-time `suffix_of`
/// relation (see `cesc-core::synth`).
pub fn compatible(a: &Expr, b: &Expr) -> bool {
    is_satisfiable(&Expr::and([a.clone(), b.clone()]))
}

/// Whether `a` logically implies `b` (every element matching `a` also
/// matches `b`).
pub fn implies(a: &Expr, b: &Expr) -> bool {
    !is_satisfiable(&Expr::and([a.clone(), Expr::Not(Box::new(b.clone()))]))
}

/// Whether `a` and `b` match exactly the same elements.
pub fn equivalent(a: &Expr, b: &Expr) -> bool {
    implies(a, b) && implies(b, a)
}

/// A witness (tick valuation + scoreboard contents) satisfying `e`, if
/// any. Unmentioned symbols default to false, yielding the minimal
/// witness the search finds first.
pub fn satisfying_valuation(e: &Expr) -> Option<Witness> {
    search(e, Partial::default()).map(|p| Witness {
        valuation: p.sym_true,
        scoreboard: p.chk_true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::EmptyScoreboard;
    use crate::symbol::Alphabet;

    fn setup() -> (Alphabet, SymbolId, SymbolId, SymbolId) {
        let mut ab = Alphabet::new();
        let a = ab.event("a");
        let b = ab.event("b");
        let p = ab.prop("p");
        (ab, a, b, p)
    }

    #[test]
    fn constants() {
        assert!(is_satisfiable(&Expr::t()));
        assert!(!is_satisfiable(&Expr::f()));
        assert!(is_tautology(&Expr::t()));
        assert!(!is_tautology(&Expr::f()));
    }

    #[test]
    fn contradiction_and_tautology() {
        let (_, a, _, _) = setup();
        assert!(!is_satisfiable(&(Expr::sym(a) & !Expr::sym(a))));
        assert!(is_tautology(&(Expr::sym(a) | !Expr::sym(a))));
    }

    #[test]
    fn compatibility_of_pattern_elements() {
        let (_, a, b, p) = setup();
        // (a & p) compatible with (a): same element can match both
        assert!(compatible(
            &(Expr::sym(a) & Expr::sym(p)),
            &Expr::sym(a)
        ));
        // (a & !b) incompatible with (b)
        assert!(!compatible(&(Expr::sym(a) & !Expr::sym(b)), &Expr::sym(b)));
        // disjoint positive atoms are compatible (both can be true at once)
        assert!(compatible(&Expr::sym(a), &Expr::sym(b)));
    }

    #[test]
    fn implication_and_equivalence() {
        let (_, a, b, _) = setup();
        assert!(implies(&(Expr::sym(a) & Expr::sym(b)), &Expr::sym(a)));
        assert!(!implies(&Expr::sym(a), &(Expr::sym(a) & Expr::sym(b))));
        let x = !(Expr::sym(a) & Expr::sym(b));
        let y = !Expr::sym(a) | !Expr::sym(b);
        assert!(equivalent(&x, &y));
        assert!(!equivalent(&Expr::sym(a), &Expr::sym(b)));
    }

    #[test]
    fn chk_atoms_are_independent_dimensions() {
        let (_, a, _, _) = setup();
        // a tick where event `a` is absent but scoreboard remembers it
        let e = !Expr::sym(a) & Expr::chk(a);
        assert!(is_satisfiable(&e));
        let w = satisfying_valuation(&e).unwrap();
        assert!(!w.valuation.contains(a));
        assert!(w.scoreboard.contains(a));
    }

    #[test]
    fn witness_satisfies() {
        let (_, a, b, p) = setup();
        let e = (Expr::sym(a) | Expr::sym(b)) & Expr::sym(p) & !Expr::sym(b);
        let w = satisfying_valuation(&e).expect("satisfiable");
        assert!(e.eval(w.valuation, &EmptyScoreboard) || {
            // scoreboard part not needed here
            false
        });
        assert!(e.eval_pure(w.valuation));
    }

    #[test]
    fn unsat_has_no_witness() {
        let (_, a, _, _) = setup();
        assert_eq!(satisfying_valuation(&(Expr::sym(a) & !Expr::sym(a))), None);
    }
}
