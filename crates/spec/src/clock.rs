//! The shared VCD sampling plan for `cesc check` routes.
//!
//! Every check route used to assemble the same three things by hand:
//! the list of *declared* clock names the selected targets sample on,
//! a per-clock symbol mask (so each tick only carries the signals its
//! charts mention), and the validation of the `--clock` rename
//! override. [`ClockPlan`] centralises that assembly on
//! [`SpecSet::clock_plan`].

use cesc_expr::Valuation;
use cesc_trace::{ClockDomain, ClockSet, VcdClockSpec};

use crate::{SpecError, SpecSet, TargetRef};

/// The sampled-clock plan for a set of check targets: declared clock
/// names in first-seen order, each with the union of its charts'
/// mentioned-symbol masks, plus the validated `--clock` rename.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockPlan {
    names: Vec<String>,
    masks: Vec<Valuation>,
    sampled_override: Option<String>,
}

impl ClockPlan {
    /// Declared clock names, in first-seen target order.
    pub fn declared(&self) -> &[String] {
        &self.names
    }

    /// Number of distinct declared clocks.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the plan samples no clock at all.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The slot (clock index) of a declared clock name.
    pub fn slot_of(&self, declared: &str) -> Option<usize> {
        self.names.iter().position(|n| n == declared)
    }

    /// The per-clock VCD sampling specs, in slot order. The validated
    /// `--clock` override renames the *sampled signal*; the declared
    /// name (what monitors bind against) is unchanged.
    pub fn vcd_specs(&self) -> Vec<VcdClockSpec> {
        self.names
            .iter()
            .zip(&self.masks)
            .map(|(declared, mask)| {
                let sampled = self.sampled_override.as_deref().unwrap_or(declared);
                VcdClockSpec::masked(sampled, *mask)
            })
            .collect()
    }

    /// A [`ClockSet`] over the *declared* names, one domain per slot —
    /// what compiled multi-clock states bind against.
    pub fn clock_set(&self) -> ClockSet {
        let mut set = ClockSet::new();
        for declared in &self.names {
            set.add(ClockDomain::new(declared, 1, 0));
        }
        set
    }
}

impl SpecSet {
    /// Assembles the sampling plan for `targets`, validating
    /// `clock_override` (`--clock`): the override can only rename the
    /// sampled signal when every single-clock target shares one
    /// declared clock, and never applies to multiclock specs.
    pub fn clock_plan(
        &self,
        targets: &[TargetRef],
        clock_override: Option<&str>,
    ) -> Result<ClockPlan, SpecError> {
        let doc = self.document();
        if clock_override.is_some() {
            let mut declared: Vec<&str> = Vec::new();
            for t in targets {
                match *t {
                    TargetRef::Chart(i) => {
                        let c = doc.charts[i].clock();
                        if !declared.contains(&c) {
                            declared.push(c);
                        }
                    }
                    TargetRef::Assert(i) => {
                        let spec = self.assert_spec(i)?;
                        if !declared.contains(&spec.clock()) {
                            declared.push(spec.clock());
                        }
                    }
                    TargetRef::Multi(i) => {
                        return Err(SpecError::ClockOverride(format!(
                            "--clock cannot rename the clocks of multiclock spec `{}`; its \
                             local charts sample their declared clocks",
                            doc.multiclock[i].name()
                        )));
                    }
                }
            }
            if declared.len() > 1 {
                return Err(SpecError::ClockOverride(format!(
                    "--clock cannot rename charts on different declared clocks ({})",
                    declared.join(", ")
                )));
            }
        }

        let mut names: Vec<String> = Vec::new();
        let mut masks: Vec<Valuation> = Vec::new();
        let mut note = |declared: &str, mask: Valuation| {
            match names.iter().position(|n| n == declared) {
                Some(i) => masks[i] = masks[i] | mask,
                None => {
                    names.push(declared.to_owned());
                    masks.push(mask);
                }
            }
        };
        for t in targets {
            match *t {
                TargetRef::Chart(i) => {
                    let c = &doc.charts[i];
                    note(c.clock(), c.mentioned_symbols());
                }
                TargetRef::Multi(i) => {
                    for c in doc.multiclock[i].charts() {
                        note(c.clock(), c.mentioned_symbols());
                    }
                }
                TargetRef::Assert(i) => {
                    let (_, cesc) = &doc.compositions[i];
                    let mut mask = Valuation::empty();
                    for chart in cesc.basic_charts() {
                        mask = mask | chart.mentioned_symbols();
                    }
                    let spec = self.assert_spec(i)?;
                    note(spec.clock(), mask);
                }
            }
        }
        Ok(ClockPlan {
            names,
            masks,
            sampled_override: clock_override.map(str::to_owned),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpecSet;

    const DOC: &str = r#"
        scesc a on clk { instances { M } events { x } tick { M: x } }
        scesc b on clk { instances { M } events { y } tick { M: y } }
        scesc c on tock { instances { M } events { z } tick { M: z } }
        multiclock duo { charts { a, c } }
    "#;

    #[test]
    fn masks_union_per_declared_clock() {
        let specs = SpecSet::load(DOC).unwrap();
        let plan = specs
            .clock_plan(&[TargetRef::Chart(0), TargetRef::Chart(1), TargetRef::Chart(2)], None)
            .unwrap();
        assert_eq!(plan.declared(), &["clk".to_owned(), "tock".to_owned()]);
        let x = specs.alphabet().lookup("x").unwrap();
        let y = specs.alphabet().lookup("y").unwrap();
        let z = specs.alphabet().lookup("z").unwrap();
        assert!(plan.masks[0].contains(x) && plan.masks[0].contains(y));
        assert!(!plan.masks[0].contains(z));
        assert!(plan.masks[1].contains(z));
        assert_eq!(plan.slot_of("tock"), Some(1));
        assert_eq!(plan.clock_set().len(), 2);
        assert_eq!(plan.vcd_specs().len(), 2);
    }

    #[test]
    fn override_rejects_mixed_and_multiclock_targets() {
        let specs = SpecSet::load(DOC).unwrap();
        let err = specs
            .clock_plan(&[TargetRef::Chart(0), TargetRef::Chart(2)], Some("sig"))
            .unwrap_err();
        assert!(err.to_string().contains("different declared clocks"), "{}", err);
        let err = specs
            .clock_plan(&[TargetRef::Multi(0)], Some("sig"))
            .unwrap_err();
        assert!(err.to_string().contains("multiclock spec `duo`"), "{}", err);
        // valid override renames the sampled signal, not the declared
        let plan = specs
            .clock_plan(&[TargetRef::Chart(0), TargetRef::Chart(1)], Some("sig"))
            .unwrap();
        assert_eq!(plan.declared(), &["clk".to_owned()]);
        assert_eq!(plan.vcd_specs()[0].name(), "sig");
    }

    #[test]
    fn multiclock_plan_follows_chart_order() {
        let specs = SpecSet::load(DOC).unwrap();
        let plan = specs.clock_plan(&[TargetRef::Multi(0)], None).unwrap();
        assert_eq!(plan.declared(), &["clk".to_owned(), "tock".to_owned()]);
    }
}
