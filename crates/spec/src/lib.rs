//! # cesc-spec — the unified spec-compilation front door
//!
//! The paper's synthesis flow is one pipeline — visual chart →
//! automaton → monitor — but consumers used to re-derive it ad hoc:
//! every `cesc` subcommand parsed the document, resolved its targets
//! and synthesized monitors on its own. This crate is the single front
//! door from **source text to executable artifacts**:
//!
//! * [`SpecSet::load`] parses and validates the document once;
//! * [`SpecSet::resolve`] finds chart / multiclock / `implies(...)`
//!   assertion targets by name (with the canonical "not found" listing
//!   of everything available);
//! * each target compiles **once**, on first use, into a cached
//!   artifact bundle — [`ChartSpec`] / [`MultiSpec`] / [`AssertSpec`]
//!   — that the batch engine, the `cesc-par` fleet planner, the
//!   `cesc-hdl`/`cesc-rtl` backends and the `cesc-sim` harness all
//!   consume;
//! * the **optimization pass pipeline** runs by default on every
//!   compile ([`SpecOptions::optimize`], the CLI's `--no-opt` escape):
//!   unreachable-state and dead-transition pruning with renumbering
//!   ([`cesc_core::optimize`]), guard-program deduplication and
//!   scoreboard-slot narrowing ([`cesc_core::CompileOptions`]). Each
//!   artifact carries a [`PassReport`] (`states 14→9, transitions
//!   31→22, …`) plus the raw *baseline* compilation, so differential
//!   oracles (RTL co-simulation) can hold the optimized artifact to
//!   the unoptimized engine's verdict.
//!
//! [`SpecSet::clock_plan`] additionally centralises the VCD sampling
//! plan (declared clock names, per-clock symbol masks, `--clock`
//! override validation) that every `cesc check` route shares.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::cell::OnceCell;
use std::fmt;

use cesc_chart::{parse_document, Cesc, Document, Scesc};
use cesc_core::{
    compile, infer_bounds, optimize, prove_implication, synthesize, synthesize_multiclock, Bound,
    BoundsOptions, BoundsReport, Compiled, CompileOptions, CompiledMonitor, CompiledMultiClock,
    Monitor, MultiClockMonitor, ProofReport, SynthOptions,
};
use cesc_expr::SymbolId;

mod clock;

pub use clock::ClockPlan;

/// Error from loading, resolving or compiling a spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The document failed to parse or validate.
    Parse(String),
    /// A target failed to synthesize or compile.
    Compile(String),
    /// A `--chart` name matched nothing; the message lists every
    /// available target of all three kinds.
    UnknownTarget(String),
    /// The selection is structurally invalid (empty document, non-
    /// assert composition named as a check target, multi-clock
    /// assertion, …).
    Invalid(String),
    /// A `--clock` override that cannot apply to the selected targets
    /// (usage error, not a pipeline failure).
    ClockOverride(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(m)
            | SpecError::Compile(m)
            | SpecError::UnknownTarget(m)
            | SpecError::Invalid(m)
            | SpecError::ClockOverride(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Knobs for [`SpecSet::load_with`].
#[derive(Debug, Clone, Default)]
pub struct SpecOptions {
    /// Run the optimization pass pipeline on every compiled target
    /// (the default; the CLI's `--no-opt` turns it off). Off, targets
    /// compile exactly as synthesized, with the raw table layout.
    pub optimize: bool,
    /// Build the bit-sliced 64-tick word plan for optimized targets
    /// (the default; the CLI's `--no-simd` turns it off). Only
    /// meaningful when `optimize` is on — raw compiles always stay
    /// scalar so the baseline oracle is engine-independent.
    pub simd: bool,
    /// Synthesis options forwarded to the `Tr` algorithm.
    pub synth: SynthOptions,
    /// Observability registry: the `parse` span and per-target
    /// `compile`/`optimize` spans accumulate here. Disabled (no-op)
    /// by default.
    pub obs: cesc_obs::Obs,
}

impl SpecOptions {
    /// The default configuration: optimization on.
    pub fn new() -> Self {
        SpecOptions {
            optimize: true,
            simd: true,
            synth: SynthOptions::default(),
            obs: cesc_obs::Obs::disabled(),
        }
    }

    /// The [`CompileOptions`] an optimized target compiles with:
    /// the full pass pipeline, bit-slicing per the `simd` knob.
    fn optimized_compile(&self) -> CompileOptions {
        CompileOptions {
            bit_slice: self.simd,
            ..CompileOptions::optimized()
        }
    }
}

/// What the pass pipeline did to one compiled target, measured on the
/// artifacts themselves: baseline (raw compile of the synthesized
/// monitor) vs optimized tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassReport {
    /// States `(before, after)`.
    pub states: (usize, usize),
    /// Transitions `(before, after)`.
    pub transitions: (usize, usize),
    /// Postfix guard-program pool size in ops `(before, after)` —
    /// shrinks under dead-arm pruning *and* guard CSE.
    pub guard_ops: (usize, usize),
    /// Scoreboard count-table slots `(before, after)` — shrinks under
    /// symbol narrowing.
    pub slots: (usize, usize),
    /// Modelled per-tick cost `(before, after)` — the weight the
    /// `cesc-par` shard planner balances.
    pub step_cost: (u64, u64),
}

impl PassReport {
    fn measure(baseline: &CompiledMonitor, optimized: &CompiledMonitor) -> Self {
        PassReport {
            states: (baseline.state_count(), optimized.state_count()),
            transitions: (baseline.transition_count(), optimized.transition_count()),
            guard_ops: (baseline.program_op_count(), optimized.program_op_count()),
            slots: (baseline.scoreboard_slots(), optimized.scoreboard_slots()),
            step_cost: (baseline.step_cost(), optimized.step_cost()),
        }
    }

    fn measure_multi(baseline: &CompiledMultiClock, optimized: &CompiledMultiClock) -> Self {
        let sum = |m: &CompiledMultiClock| {
            m.locals().iter().fold((0, 0, 0, 0), |acc, l| {
                (
                    acc.0 + l.state_count(),
                    acc.1 + l.transition_count(),
                    acc.2 + l.program_op_count(),
                    acc.3.max(l.scoreboard_slots()),
                )
            })
        };
        let b = sum(baseline);
        let o = sum(optimized);
        PassReport {
            states: (b.0, o.0),
            transitions: (b.1, o.1),
            guard_ops: (b.2, o.2),
            slots: (b.3, o.3),
            step_cost: (baseline.step_cost(), optimized.step_cost()),
        }
    }

    /// Whether any pass changed any table dimension.
    pub fn changed(&self) -> bool {
        self.states.0 != self.states.1
            || self.transitions.0 != self.transitions.1
            || self.guard_ops.0 != self.guard_ops.1
            || self.slots.0 != self.slots.1
    }
}

impl fmt::Display for PassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "states {}→{}, transitions {}→{}, guard ops {}→{}, scoreboard slots {}→{}, \
             step cost {}→{}",
            self.states.0,
            self.states.1,
            self.transitions.0,
            self.transitions.1,
            self.guard_ops.0,
            self.guard_ops.1,
            self.slots.0,
            self.slots.1,
            self.step_cost.0,
            self.step_cost.1
        )
    }
}

/// Compiled artifact bundle of one basic chart: the (possibly
/// optimized) automaton, its compacted batch tables, the raw baseline
/// compilation for differential oracles, and the pass report.
#[derive(Debug, Clone)]
pub struct ChartSpec {
    monitor: Monitor,
    synthesized: Monitor,
    compiled: CompiledMonitor,
    baseline: CompiledMonitor,
    report: Option<PassReport>,
    bounds: BoundsReport,
}

impl ChartSpec {
    /// The executable automaton (post-pipeline unless `--no-opt`) —
    /// what the HDL backends lower, so emitted Verilog drops dead
    /// guard arms.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// The compacted flat tables the batch engine executes and the
    /// `cesc-par` planner costs (post-opt `step_cost`).
    pub fn compiled(&self) -> &CompiledMonitor {
        &self.compiled
    }

    /// The *unoptimized* compilation of the synthesized monitor — the
    /// reference side of differential oracles (`cesc check --cosim`
    /// proves optimized RTL ≡ this engine).
    pub fn baseline(&self) -> &CompiledMonitor {
        &self.baseline
    }

    /// What the pass pipeline did, or `None` under `--no-opt`.
    pub fn report(&self) -> Option<&PassReport> {
        self.report.as_ref()
    }

    /// The monitor exactly as synthesized, before any optimization
    /// pass. Static analyses (`cesc-lint`) run on this form so their
    /// findings are identical with and without `--no-opt` — the
    /// optimizer renumbers states and drops arms, which would
    /// otherwise shift every finding's location.
    pub fn synthesized(&self) -> &Monitor {
        &self.synthesized
    }

    /// The counter-bounds analysis of the synthesized monitor
    /// (computed once at build time; sound for the optimized form
    /// too, since passes only remove behaviors).
    pub fn bounds(&self) -> &BoundsReport {
        &self.bounds
    }
}

/// Compiled artifact bundle of one `multiclock` spec.
#[derive(Debug, Clone)]
pub struct MultiSpec {
    monitor: MultiClockMonitor,
    synthesized: MultiClockMonitor,
    compiled: CompiledMultiClock,
    report: Option<PassReport>,
    local_bounds: Vec<BoundsReport>,
    coupled_events: Vec<SymbolId>,
}

impl MultiSpec {
    /// The executable multi-clock monitor (post-pipeline locals).
    pub fn monitor(&self) -> &MultiClockMonitor {
        &self.monitor
    }

    /// The compiled shared-scoreboard engine form.
    pub fn compiled(&self) -> &CompiledMultiClock {
        &self.compiled
    }

    /// Aggregate pass report over the locals, or `None` under
    /// `--no-opt`.
    pub fn report(&self) -> Option<&PassReport> {
        self.report.as_ref()
    }

    /// The multi-clock monitor exactly as synthesized, before any
    /// optimization pass — the form static analyses run on.
    pub fn synthesized(&self) -> &MultiClockMonitor {
        &self.synthesized
    }

    /// Per-local counter-bounds analyses (computed on the synthesized
    /// locals, with `Chk_evt` refinement off: through the shared
    /// scoreboard another domain may change a count between local
    /// ticks, so `Chk` guards prove nothing about local history).
    pub fn local_bounds(&self) -> &[BoundsReport] {
        &self.local_bounds
    }

    /// Events written (`Add_evt`/`Del_evt`) by more than one local
    /// monitor. A coupled event has no per-local bound — interleaved
    /// writers make any single-automaton fixpoint unsound — so its
    /// effective bound is unbounded.
    pub fn coupled_events(&self) -> &[SymbolId] {
        &self.coupled_events
    }

    /// The sound shared-scoreboard bound of event `e`: the writing
    /// local's inferred interval when exactly one local writes `e`,
    /// `[0, ∞]` when several do, `[0, 0]` when none does (`Chk`-only
    /// traffic never changes a count), `None` when no local touches
    /// `e` at all.
    pub fn shared_bound(&self, e: SymbolId) -> Option<Bound> {
        if self.coupled_events.contains(&e) {
            return Some(Bound { lo: 0, hi: None });
        }
        let mut touched = false;
        for (local, bounds) in self.synthesized.locals().iter().zip(&self.local_bounds) {
            if local.written_events().contains(&e) {
                return bounds.bound_for(e);
            }
            touched |= bounds.bound_for(e).is_some();
        }
        touched.then(|| Bound::exact(0))
    }
}

/// Compiled artifact bundle of one `implies(...)` assertion: the two
/// synthesized (and optimized) monitors plus the single clock domain
/// driving the checker.
#[derive(Debug, Clone)]
pub struct AssertSpec {
    name: String,
    clock: String,
    antecedent: Monitor,
    consequent: Monitor,
    synthesized_antecedent: Monitor,
    synthesized_consequent: Monitor,
    antecedent_bounds: BoundsReport,
    consequent_bounds: BoundsReport,
}

impl AssertSpec {
    /// The assertion's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The clock domain whose ticks drive the checker.
    pub fn clock(&self) -> &str {
        &self.clock
    }

    /// The antecedent monitor.
    pub fn antecedent(&self) -> &Monitor {
        &self.antecedent
    }

    /// The consequent monitor.
    pub fn consequent(&self) -> &Monitor {
        &self.consequent
    }

    /// The antecedent exactly as synthesized, before any optimization
    /// pass — the form static analyses run on, so their findings are
    /// identical with and without `--no-opt`.
    pub fn synthesized_antecedent(&self) -> &Monitor {
        &self.synthesized_antecedent
    }

    /// The consequent exactly as synthesized, before any optimization
    /// pass — the form static analyses run on.
    pub fn synthesized_consequent(&self) -> &Monitor {
        &self.synthesized_consequent
    }

    /// Counter-bounds analysis of the antecedent monitor.
    pub fn antecedent_bounds(&self) -> &BoundsReport {
        &self.antecedent_bounds
    }

    /// Counter-bounds analysis of the consequent monitor.
    pub fn consequent_bounds(&self) -> &BoundsReport {
        &self.consequent_bounds
    }
}

/// A resolved check/synth target: an index into the document's chart,
/// multiclock or composition list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetRef {
    /// Basic chart (index into [`Document::charts`]).
    Chart(usize),
    /// Multiclock spec (index into [`Document::multiclock`]).
    Multi(usize),
    /// `implies(...)` composition (index into
    /// [`Document::compositions`]).
    Assert(usize),
}

/// A parsed, validated document plus the compile-once artifact cache —
/// the object every `cesc` route and harness consumes.
///
/// # Examples
///
/// ```
/// use cesc_spec::{SpecSet, TargetRef};
///
/// let specs = SpecSet::load(
///     "scesc hs on clk { instances { M } events { req, ack } \
///      tick { M: req } tick { M: ack } }",
/// ).unwrap();
/// let TargetRef::Chart(i) = specs.resolve("hs").unwrap() else { unreachable!() };
/// let spec = specs.chart_spec(i).unwrap();
/// assert_eq!(spec.compiled().name(), "hs");
/// assert!(spec.report().is_some()); // pass pipeline ran by default
/// ```
#[derive(Debug)]
pub struct SpecSet {
    doc: Document,
    options: SpecOptions,
    charts: Vec<OnceCell<ChartSpec>>,
    multis: Vec<OnceCell<MultiSpec>>,
    asserts: Vec<OnceCell<AssertSpec>>,
    proofs: Vec<OnceCell<ProofReport>>,
}

/// Renders a target-name list, or `(none)`.
fn listed(items: Vec<&str>) -> String {
    if items.is_empty() {
        "(none)".to_owned()
    } else {
        items.join(", ")
    }
}

/// Whether a composition is checkable as an assertion (an
/// `implies(...)`).
pub fn assert_capable(c: &Cesc) -> bool {
    matches!(c, Cesc::Implication(_, _))
}

impl SpecSet {
    /// Parses and validates `source` with default options (pass
    /// pipeline on).
    pub fn load(source: &str) -> Result<Self, SpecError> {
        Self::load_with(source, SpecOptions::new())
    }

    /// Parses and validates `source` under explicit options.
    pub fn load_with(source: &str, options: SpecOptions) -> Result<Self, SpecError> {
        let doc = options
            .obs
            .time("parse", || parse_document(source))
            .map_err(|e| SpecError::Parse(e.to_string()))?;
        Ok(Self::from_document(doc, options))
    }

    /// Wraps an already-parsed document (the library entry point for
    /// harnesses that build documents programmatically).
    pub fn from_document(doc: Document, options: SpecOptions) -> Self {
        let charts = (0..doc.charts.len()).map(|_| OnceCell::new()).collect();
        let multis = (0..doc.multiclock.len()).map(|_| OnceCell::new()).collect();
        let asserts = (0..doc.compositions.len()).map(|_| OnceCell::new()).collect();
        let proofs = (0..doc.compositions.len()).map(|_| OnceCell::new()).collect();
        SpecSet {
            doc,
            options,
            charts,
            multis,
            asserts,
            proofs,
        }
    }

    /// The parsed document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The document's alphabet.
    pub fn alphabet(&self) -> &cesc_expr::Alphabet {
        &self.doc.alphabet
    }

    /// The options the set was loaded with.
    pub fn options(&self) -> &SpecOptions {
        &self.options
    }

    /// The display name of a resolved target.
    pub fn target_name(&self, target: TargetRef) -> &str {
        match target {
            TargetRef::Chart(i) => self.doc.charts[i].name(),
            TargetRef::Multi(i) => self.doc.multiclock[i].name(),
            TargetRef::Assert(i) => &self.doc.compositions[i].0,
        }
    }

    /// Resolves a basic chart by name — `None` picks the document's
    /// first chart (the `cesc render`/`synth` default). The error
    /// message lists the available charts.
    pub fn chart_index(&self, name: Option<&str>) -> Result<usize, SpecError> {
        match name {
            Some(name) => self
                .doc
                .charts
                .iter()
                .position(|c| c.name() == name)
                .ok_or_else(|| {
                    SpecError::UnknownTarget(format!(
                        "chart `{name}` not found; available: {}",
                        self.doc
                            .charts
                            .iter()
                            .map(Scesc::name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                }),
            None if self.doc.charts.is_empty() => Err(SpecError::Invalid(
                "document contains no charts".to_owned(),
            )),
            None => Ok(0),
        }
    }

    /// Resolves a check target by name: basic charts first, then
    /// `multiclock` specs, then `implies(...)` compositions. Unknown
    /// names list every available target of all three kinds; a
    /// composition that is not an implication is rejected.
    pub fn resolve(&self, name: &str) -> Result<TargetRef, SpecError> {
        let _span = self.options.obs.span("resolve");
        if let Some(i) = self.doc.charts.iter().position(|c| c.name() == name) {
            return Ok(TargetRef::Chart(i));
        }
        if let Some(i) = self.doc.multiclock.iter().position(|m| m.name() == name) {
            return Ok(TargetRef::Multi(i));
        }
        if let Some((i, (_, cesc))) = self
            .doc
            .compositions
            .iter()
            .enumerate()
            .find(|(_, (n, _))| n == name)
        {
            if assert_capable(cesc) {
                return Ok(TargetRef::Assert(i));
            }
            return Err(SpecError::Invalid(format!(
                "composition `{name}` is not an implies(...) chart; `check` verifies basic \
                 charts, multiclock specs and implication compositions"
            )));
        }
        Err(self.unknown_target(name))
    }

    /// The canonical "not found" error listing every available target.
    pub fn unknown_target(&self, name: &str) -> SpecError {
        let charts = listed(self.doc.charts.iter().map(Scesc::name).collect());
        let multis = listed(self.doc.multiclock.iter().map(|m| m.name()).collect());
        let asserts = listed(
            self.doc
                .compositions
                .iter()
                .filter(|(_, c)| assert_capable(c))
                .map(|(n, _)| n.as_str())
                .collect(),
        );
        SpecError::UnknownTarget(format!(
            "chart `{name}` not found; available charts: {charts}; multiclock specs: {multis}; \
             assert compositions: {asserts}"
        ))
    }

    /// Every checkable target in document order: basic charts, then
    /// multiclock specs, then `implies(...)` compositions — what
    /// `--all-charts` selects.
    pub fn checkable_targets(&self) -> Vec<TargetRef> {
        let mut targets: Vec<TargetRef> =
            (0..self.doc.charts.len()).map(TargetRef::Chart).collect();
        targets.extend((0..self.doc.multiclock.len()).map(TargetRef::Multi));
        targets.extend(
            self.doc
                .compositions
                .iter()
                .enumerate()
                .filter(|(_, (_, c))| assert_capable(c))
                .map(|(i, _)| TargetRef::Assert(i)),
        );
        targets
    }

    /// The compiled artifact bundle of basic chart `idx`, building it
    /// on first use (synthesize once, optimize once, compile once).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn chart_spec(&self, idx: usize) -> Result<&ChartSpec, SpecError> {
        if self.charts[idx].get().is_none() {
            let built = self.build_chart(idx)?;
            let _ = self.charts[idx].set(built);
        }
        Ok(self.charts[idx].get().expect("just built"))
    }

    fn build_chart(&self, idx: usize) -> Result<ChartSpec, SpecError> {
        let obs = &self.options.obs;
        let chart = &self.doc.charts[idx];
        let (monitor, baseline, bounds) = {
            let _span = obs.span("compile");
            let monitor = synthesize(chart, &self.options.synth)
                .map_err(|e| SpecError::Compile(e.to_string()))?;
            let baseline = monitor.compiled_with(&CompileOptions::raw());
            let bounds = infer_bounds(&monitor, &BoundsOptions::default());
            (monitor, baseline, bounds)
        };
        Ok(if self.options.optimize {
            let _span = obs.span("optimize");
            let (opt, _) = optimize(&monitor);
            let compiled = opt.compiled_with(&self.options.optimized_compile());
            let report = PassReport::measure(&baseline, &compiled);
            ChartSpec {
                monitor: opt,
                synthesized: monitor,
                compiled,
                baseline,
                report: Some(report),
                bounds,
            }
        } else {
            ChartSpec {
                monitor: monitor.clone(),
                synthesized: monitor,
                compiled: baseline.clone(),
                baseline,
                report: None,
                bounds,
            }
        })
    }

    /// The compiled artifact bundle of multiclock spec `idx`, building
    /// it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn multi_spec(&self, idx: usize) -> Result<&MultiSpec, SpecError> {
        if self.multis[idx].get().is_none() {
            let built = self.build_multi(idx)?;
            let _ = self.multis[idx].set(built);
        }
        Ok(self.multis[idx].get().expect("just built"))
    }

    fn build_multi(&self, idx: usize) -> Result<MultiSpec, SpecError> {
        let obs = &self.options.obs;
        let spec = &self.doc.multiclock[idx];
        let compile_span = obs.span("compile");
        let monitor = synthesize_multiclock(spec, &self.options.synth)
            .map_err(|e| SpecError::Compile(e.to_string()))?;
        // per-local bounds run with Chk refinement off (shared
        // scoreboard: other domains may write between local ticks)
        let local_opts = BoundsOptions {
            chk_refinement: false,
            ..BoundsOptions::default()
        };
        let local_bounds: Vec<BoundsReport> = monitor
            .locals()
            .iter()
            .map(|m| infer_bounds(m, &local_opts))
            .collect();
        let mut coupled_events: Vec<SymbolId> = Vec::new();
        let mut seen: Vec<SymbolId> = Vec::new();
        for local in monitor.locals() {
            for e in local.written_events() {
                if seen.contains(&e) {
                    if !coupled_events.contains(&e) {
                        coupled_events.push(e);
                    }
                } else {
                    seen.push(e);
                }
            }
        }
        Ok(if self.options.optimize {
            let baseline = CompiledMultiClock::with_options(&monitor, &CompileOptions::raw());
            drop(compile_span);
            let _span = obs.span("optimize");
            let locals: Vec<Monitor> = monitor
                .locals()
                .iter()
                .map(|m| optimize(m).0)
                .collect();
            let opt = MultiClockMonitor::from_locals(monitor.name(), locals);
            let compiled =
                CompiledMultiClock::with_options(&opt, &self.options.optimized_compile());
            let report = PassReport::measure_multi(&baseline, &compiled);
            MultiSpec {
                monitor: opt,
                synthesized: monitor,
                compiled,
                report: Some(report),
                local_bounds,
                coupled_events,
            }
        } else {
            let compiled = CompiledMultiClock::with_options(&monitor, &CompileOptions::raw());
            MultiSpec {
                monitor: monitor.clone(),
                synthesized: monitor,
                compiled,
                report: None,
                local_bounds,
                coupled_events,
            }
        })
    }

    /// The compiled assertion bundle of composition `idx`, building it
    /// on first use. Fails for non-`implies` compositions and
    /// multi-clock implications.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn assert_spec(&self, idx: usize) -> Result<&AssertSpec, SpecError> {
        if self.asserts[idx].get().is_none() {
            let built = self.build_assert(idx)?;
            let _ = self.asserts[idx].set(built);
        }
        Ok(self.asserts[idx].get().expect("just built"))
    }

    fn build_assert(&self, idx: usize) -> Result<AssertSpec, SpecError> {
        let (name, cesc) = &self.doc.compositions[idx];
        if !assert_capable(cesc) {
            return Err(SpecError::Invalid(format!(
                "composition `{name}` is not an implies(...) chart; `check` verifies basic \
                 charts, multiclock specs and implication compositions"
            )));
        }
        let clocks = cesc.clocks();
        let [clock] = clocks.as_slice() else {
            return Err(SpecError::Invalid(format!(
                "assert composition `{name}` spans clocks {}; implication checking is \
                 single-clock",
                clocks.join(", ")
            )));
        };
        let obs = &self.options.obs;
        let compile_span = obs.span("compile");
        let compiled = compile(cesc, &self.options.synth)
            .map_err(|e| SpecError::Compile(format!("assert `{name}`: {e}")))?;
        let Compiled::Implication(checker) = compiled else {
            unreachable!("assert_capable guarantees an implication compilation");
        };
        let bounds_opts = BoundsOptions::default();
        let antecedent_bounds = infer_bounds(checker.antecedent(), &bounds_opts);
        let consequent_bounds = infer_bounds(checker.consequent(), &bounds_opts);
        drop(compile_span);
        let synthesized_antecedent = checker.antecedent().clone();
        let synthesized_consequent = checker.consequent().clone();
        let (antecedent, consequent) = if self.options.optimize {
            let _span = obs.span("optimize");
            (
                optimize(checker.antecedent()).0,
                optimize(checker.consequent()).0,
            )
        } else {
            (checker.antecedent().clone(), checker.consequent().clone())
        };
        Ok(AssertSpec {
            name: name.clone(),
            clock: clock.clone(),
            antecedent,
            consequent,
            synthesized_antecedent,
            synthesized_consequent,
            antecedent_bounds,
            consequent_bounds,
        })
    }

    /// The static proof verdict of assert composition `idx` — PROVED
    /// or a concrete, engine-replayed counterexample — produced by the
    /// [`cesc_core::prove_implication`] product prover on first use
    /// and cached. The verdict is *semantic*: the optimization passes
    /// preserve step behavior, so the same report serves the optimized
    /// and `--no-opt` forms.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn proof(&self, idx: usize) -> Result<&ProofReport, SpecError> {
        if self.proofs[idx].get().is_none() {
            let spec = self.assert_spec(idx)?;
            let report = {
                let _span = self.options.obs.span("prove");
                prove_implication(spec.name(), spec.antecedent(), spec.consequent())
            };
            let _ = self.proofs[idx].set(report);
        }
        Ok(self.proofs[idx].get().expect("just built"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_core::analyze;

    const DOC: &str = r#"
        scesc hs on clk {
            instances { M, S }
            events { req, ack }
            tick { M: req }
            tick { S: ack }
            cause req -> ack;
        }
        scesc pulse on clk { instances { M } events { req, ack } tick { M: req } }
        scesc beat on tock { instances { S } events { tick_ev } tick { S: tick_ev } }
        multiclock pair { charts { pulse, beat } }
        cesc gate { implies(hs, pulse) }
        cesc chain { seq(hs, pulse) }
    "#;

    #[test]
    fn load_resolves_all_target_kinds() {
        let specs = SpecSet::load(DOC).unwrap();
        assert_eq!(specs.resolve("hs").unwrap(), TargetRef::Chart(0));
        assert_eq!(specs.resolve("pair").unwrap(), TargetRef::Multi(0));
        assert_eq!(specs.resolve("gate").unwrap(), TargetRef::Assert(0));
        let err = specs.resolve("ghost").unwrap_err();
        let shown = err.to_string();
        assert!(shown.contains("available charts: hs, pulse, beat"), "{shown}");
        assert!(shown.contains("multiclock specs: pair"), "{shown}");
        assert!(shown.contains("assert compositions: gate"), "{shown}");
        // `chain` is a composition but not assert-capable
        let err = specs.resolve("chain").unwrap_err();
        assert!(err.to_string().contains("not an implies"), "{}", err);
    }

    #[test]
    fn chart_index_picks_first_by_default() {
        let specs = SpecSet::load(DOC).unwrap();
        assert_eq!(specs.chart_index(None).unwrap(), 0);
        assert_eq!(specs.chart_index(Some("pulse")).unwrap(), 1);
        let err = specs.chart_index(Some("ghost")).unwrap_err();
        assert!(err.to_string().contains("available: hs, pulse, beat"), "{}", err);
        let empty = SpecSet::load("cesc only { implies(only, only) }");
        assert!(empty.is_err() || empty.unwrap().chart_index(None).is_err());
    }

    #[test]
    fn checkable_targets_cover_all_kinds_in_order() {
        let specs = SpecSet::load(DOC).unwrap();
        assert_eq!(
            specs.checkable_targets(),
            vec![
                TargetRef::Chart(0),
                TargetRef::Chart(1),
                TargetRef::Chart(2),
                TargetRef::Multi(0),
                TargetRef::Assert(0),
            ]
        );
        assert_eq!(specs.target_name(TargetRef::Assert(0)), "gate");
    }

    #[test]
    fn chart_spec_is_cached_and_optimized() {
        let specs = SpecSet::load(DOC).unwrap();
        let a = specs.chart_spec(0).unwrap() as *const ChartSpec;
        let b = specs.chart_spec(0).unwrap() as *const ChartSpec;
        assert_eq!(a, b, "compiled once, cached");
        let spec = specs.chart_spec(0).unwrap();
        assert!(analyze(spec.monitor()).is_clean());
        let report = spec.report().expect("pipeline ran");
        // clean chart: pruning is identity, narrowing still shrinks
        // the count table to the scoreboard symbols
        assert_eq!(report.states.0, report.states.1);
        assert!(report.slots.1 <= report.slots.0, "{report}");
        assert!(spec.compiled().step_cost() <= spec.baseline().step_cost());
    }

    #[test]
    fn no_opt_keeps_raw_tables() {
        let specs = SpecSet::load_with(
            DOC,
            SpecOptions {
                optimize: false,
                ..SpecOptions::new()
            },
        )
        .unwrap();
        let spec = specs.chart_spec(0).unwrap();
        assert!(spec.report().is_none());
        assert_eq!(
            spec.compiled().scoreboard_slots(),
            spec.baseline().scoreboard_slots()
        );
    }

    #[test]
    fn multi_and_assert_specs_compile() {
        let specs = SpecSet::load(DOC).unwrap();
        let multi = specs.multi_spec(0).unwrap();
        assert_eq!(multi.compiled().locals().len(), 2);
        assert!(multi.report().is_some());
        let assert_spec = specs.assert_spec(0).unwrap();
        assert_eq!(assert_spec.name(), "gate");
        assert_eq!(assert_spec.clock(), "clk");
        assert!(analyze(assert_spec.antecedent()).is_clean());
        // the non-assert composition rejects
        let err = specs.assert_spec(1).unwrap_err();
        assert!(err.to_string().contains("not an implies"), "{}", err);
    }

    #[test]
    fn proof_is_cached_and_semantic() {
        let specs = SpecSet::load(DOC).unwrap();
        let a = specs.proof(0).unwrap() as *const _;
        let b = specs.proof(0).unwrap() as *const _;
        assert_eq!(a, b, "proved once, cached");
        let report = specs.proof(0).unwrap();
        // same verdict without the optimization pipeline: the proof is
        // a property of the step semantics, which the passes preserve
        let raw = SpecSet::load_with(
            DOC,
            SpecOptions {
                optimize: false,
                ..SpecOptions::new()
            },
        )
        .unwrap();
        assert_eq!(report.proved(), raw.proof(0).unwrap().proved());
        // the non-assert composition rejects, same as assert_spec
        let err = specs.proof(1).unwrap_err();
        assert!(err.to_string().contains("not an implies"), "{}", err);
    }

    #[test]
    fn parse_errors_surface() {
        let err = SpecSet::load("scesc broken {").unwrap_err();
        assert!(matches!(err, SpecError::Parse(_)));
    }
}
