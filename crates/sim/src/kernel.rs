//! GALS simulation kernel.
//!
//! The paper's verification flow (Fig 4) runs monitors inside a
//! simulation environment; SoCs are "Globally Asynchronous Locally
//! Synchronous" (§2), so the kernel drives one or more [`Transactor`]s
//! per clock domain over the merged tick schedule of a
//! [`ClockSet`], producing a [`GlobalRun`] and streaming
//! [`GlobalStep`]s to observers as they happen.

use cesc_expr::{Alphabet, Valuation};
use cesc_trace::{ClockDomain, ClockId, ClockSet, GlobalRun, GlobalStep, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A device driving signal activity in one clock domain: each local
/// tick it contributes a valuation (multiple transactors on one domain
/// are OR-combined, like multiple drivers on distinct wires).
pub trait Transactor: std::fmt::Debug {
    /// Name of the clock domain this transactor is synchronous to.
    fn clock(&self) -> &str;
    /// The activity driven at local tick `tick`.
    fn tick(&mut self, tick: u64) -> Valuation;
}

/// Replays a pre-recorded trace, idle afterwards.
#[derive(Debug, Clone)]
pub struct ScriptedTransactor {
    clock: String,
    trace: Trace,
}

impl ScriptedTransactor {
    /// Creates a transactor replaying `trace` on `clock`.
    pub fn new(clock: &str, trace: Trace) -> Self {
        ScriptedTransactor {
            clock: clock.to_owned(),
            trace,
        }
    }
}

impl Transactor for ScriptedTransactor {
    fn clock(&self) -> &str {
        &self.clock
    }
    fn tick(&mut self, tick: u64) -> Valuation {
        self.trace
            .get(tick as usize)
            .unwrap_or_else(Valuation::empty)
    }
}

/// Repeats a fixed window separated by idle gaps — back-to-back
/// transactions.
#[derive(Debug, Clone)]
pub struct PeriodicTransactor {
    clock: String,
    window: Vec<Valuation>,
    gap: u64,
    start: u64,
}

impl PeriodicTransactor {
    /// Creates a transactor replaying `window` every `window.len() +
    /// gap` ticks, starting at local tick `start`.
    pub fn new(clock: &str, window: Vec<Valuation>, gap: u64, start: u64) -> Self {
        PeriodicTransactor {
            clock: clock.to_owned(),
            window,
            gap,
            start,
        }
    }
}

impl Transactor for PeriodicTransactor {
    fn clock(&self) -> &str {
        &self.clock
    }
    fn tick(&mut self, tick: u64) -> Valuation {
        if tick < self.start || self.window.is_empty() {
            return Valuation::empty();
        }
        let period = self.window.len() as u64 + self.gap;
        let phase = (tick - self.start) % period;
        if (phase as usize) < self.window.len() {
            self.window[phase as usize]
        } else {
            Valuation::empty()
        }
    }
}

/// Drives random noise over a set of symbols (deterministic per seed).
#[derive(Debug)]
pub struct NoiseTransactor {
    clock: String,
    symbols: Vec<cesc_expr::SymbolId>,
    density: f64,
    rng: StdRng,
}

impl NoiseTransactor {
    /// Creates a noise source over every symbol of `alphabet`.
    pub fn new(clock: &str, alphabet: &Alphabet, density: f64, seed: u64) -> Self {
        NoiseTransactor {
            clock: clock.to_owned(),
            symbols: alphabet.iter().map(|(id, _)| id).collect(),
            density,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Transactor for NoiseTransactor {
    fn clock(&self) -> &str {
        &self.clock
    }
    fn tick(&mut self, _tick: u64) -> Valuation {
        let mut v = Valuation::empty();
        for &s in &self.symbols {
            if self.rng.random_bool(self.density.clamp(0.0, 1.0)) {
                v.insert(s);
            }
        }
        v
    }
}

/// The GALS simulation: clock domains plus transactors.
///
/// # Examples
///
/// ```
/// use cesc_expr::{Alphabet, Valuation};
/// use cesc_sim::{ScriptedTransactor, Simulation};
/// use cesc_trace::{ClockDomain, Trace};
///
/// let mut ab = Alphabet::new();
/// let req = ab.event("req");
/// let mut sim = Simulation::new();
/// sim.add_clock(ClockDomain::new("clk", 1, 0));
/// sim.add_transactor(Box::new(ScriptedTransactor::new(
///     "clk",
///     Trace::from_elements([Valuation::of([req])]),
/// )));
/// let run = sim.run(3);
/// assert_eq!(run.len(), 3);
/// assert!(run.get(0).unwrap().ticks[0].1.contains(req));
/// ```
#[derive(Debug, Default)]
pub struct Simulation {
    clocks: ClockSet,
    transactors: Vec<Box<dyn Transactor>>,
    local_ticks: Vec<u64>,
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a clock domain.
    pub fn add_clock(&mut self, domain: ClockDomain) -> ClockId {
        self.clocks.add(domain)
    }

    /// The clock set.
    pub fn clocks(&self) -> &ClockSet {
        &self.clocks
    }

    /// Attaches a transactor (its clock must have been added).
    ///
    /// # Panics
    ///
    /// Panics if the transactor's clock name is unknown.
    pub fn add_transactor(&mut self, t: Box<dyn Transactor>) {
        assert!(
            self.clocks.lookup(t.clock()).is_some(),
            "unknown clock `{}` — add_clock first",
            t.clock()
        );
        self.transactors.push(t);
    }

    /// Runs for `global_steps` instants of the merged schedule,
    /// invoking `on_step` after each instant, and returns the recorded
    /// global run.
    pub fn run_with(
        &mut self,
        global_steps: usize,
        mut on_step: impl FnMut(&ClockSet, &GlobalStep),
    ) -> GlobalRun {
        self.local_ticks = vec![0; self.clocks.len()];
        let mut run = GlobalRun::new();
        let schedule: Vec<_> = self.clocks.schedule().take(global_steps).collect();
        for instant in schedule {
            let mut ticks = Vec::new();
            for clock_id in instant.ticking {
                let local = self.local_ticks[clock_id.index()];
                self.local_ticks[clock_id.index()] += 1;
                let clock_name = self.clocks.domain(clock_id).name().to_owned();
                let mut v = Valuation::empty();
                for t in &mut self.transactors {
                    if t.clock() == clock_name {
                        v = v | t.tick(local);
                    }
                }
                ticks.push((clock_id, v));
            }
            let step = GlobalStep {
                time: instant.time,
                ticks,
            };
            on_step(&self.clocks, &step);
            run.push(step);
        }
        run
    }

    /// Runs for `global_steps` instants with no observer.
    pub fn run(&mut self, global_steps: usize) -> GlobalRun {
        self.run_with(global_steps, |_, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alphabet() -> (Alphabet, cesc_expr::SymbolId, cesc_expr::SymbolId) {
        let mut ab = Alphabet::new();
        let a = ab.event("a");
        let b = ab.event("b");
        (ab, a, b)
    }

    #[test]
    fn scripted_replays_then_idles() {
        let (_, a, _) = alphabet();
        let mut t = ScriptedTransactor::new("clk", Trace::from_elements([Valuation::of([a])]));
        assert!(t.tick(0).contains(a));
        assert!(t.tick(1).is_empty());
    }

    #[test]
    fn periodic_transactor_cycle() {
        let (_, a, b) = alphabet();
        let mut t =
            PeriodicTransactor::new("clk", vec![Valuation::of([a]), Valuation::of([b])], 1, 2);
        assert!(t.tick(0).is_empty()); // before start
        assert!(t.tick(2).contains(a));
        assert!(t.tick(3).contains(b));
        assert!(t.tick(4).is_empty()); // gap
        assert!(t.tick(5).contains(a)); // next period
    }

    #[test]
    fn noise_is_deterministic() {
        let (ab, _, _) = alphabet();
        let mut t1 = NoiseTransactor::new("clk", &ab, 0.5, 9);
        let mut t2 = NoiseTransactor::new("clk", &ab, 0.5, 9);
        for i in 0..50 {
            assert_eq!(t1.tick(i), t2.tick(i));
        }
    }

    #[test]
    fn multi_domain_simulation_produces_global_run() {
        let (_, a, b) = alphabet();
        let mut sim = Simulation::new();
        sim.add_clock(ClockDomain::new("fast", 1, 0));
        sim.add_clock(ClockDomain::new("slow", 2, 0));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "fast",
            vec![Valuation::of([a])],
            0,
            0,
        )));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "slow",
            vec![Valuation::of([b])],
            0,
            0,
        )));
        let run = sim.run(4);
        assert_eq!(run.len(), 4);
        let fast = sim.clocks().lookup("fast").unwrap();
        let slow = sim.clocks().lookup("slow").unwrap();
        assert_eq!(run.project(fast).len(), 4);
        assert_eq!(run.project(slow).len(), 2);
        assert!(run.project(fast).iter().all(|v| v.contains(a)));
        assert!(run.project(slow).iter().all(|v| v.contains(b)));
    }

    #[test]
    fn transactors_on_same_domain_are_ored() {
        let (_, a, b) = alphabet();
        let mut sim = Simulation::new();
        sim.add_clock(ClockDomain::new("clk", 1, 0));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk",
            vec![Valuation::of([a])],
            0,
            0,
        )));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk",
            vec![Valuation::of([b])],
            0,
            0,
        )));
        let run = sim.run(1);
        let v = run.get(0).unwrap().ticks[0].1;
        assert!(v.contains(a) && v.contains(b));
    }

    #[test]
    #[should_panic(expected = "unknown clock")]
    fn unknown_clock_panics() {
        let mut sim = Simulation::new();
        sim.add_transactor(Box::new(ScriptedTransactor::new("ghost", Trace::new())));
    }

    #[test]
    fn observer_sees_every_step() {
        let (_, a, _) = alphabet();
        let mut sim = Simulation::new();
        sim.add_clock(ClockDomain::new("clk", 1, 0));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk",
            vec![Valuation::of([a])],
            0,
            0,
        )));
        let mut seen = 0;
        sim.run_with(5, |_, step| {
            assert_eq!(step.ticks.len(), 1);
            seen += 1;
        });
        assert_eq!(seen, 5);
    }
}
