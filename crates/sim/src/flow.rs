//! The automated verification flow — Figure 4 with the grey boxes.
//!
//! ```text
//! informal specification
//!   → CESC-based verification plan   (the document text)
//!   → automated synthesis of monitors (cesc-core)
//!   → simulation environment          (this crate)
//!   → Verified / Failed
//! ```
//!
//! [`run_flow`] performs the whole pipeline from document text to
//! verdicts in one call — the cycle-time argument of the paper made
//! executable.

use std::collections::BTreeMap;
use std::fmt;

use cesc_chart::{parse_document, ParseChartError};
use cesc_core::{synthesize, Monitor, SynthError, SynthOptions, Verdict};
use cesc_trace::{write_vcd, ClockDomain, GlobalRun, VcdWriteOptions};

use crate::harness::OnlineHarness;
use crate::kernel::{Simulation, Transactor};

/// Configuration of one flow run.
#[derive(Debug)]
pub struct FlowConfig {
    /// CESC document source (charts to verify).
    pub document: String,
    /// Names of the charts to synthesize monitors for (empty = all).
    pub charts: Vec<String>,
    /// Clock domains of the simulated design.
    pub clocks: Vec<ClockDomain>,
    /// Transactors modelling the design under test.
    pub transactors: Vec<Box<dyn Transactor>>,
    /// Number of merged-schedule steps to simulate.
    pub global_steps: usize,
    /// Synthesis options.
    pub synth: SynthOptions,
    /// When set, dump the named clock domain's trace as VCD into the
    /// report (what an RTL simulator would have produced).
    pub dump_vcd_for: Option<String>,
}

/// Error from [`run_flow`].
#[derive(Debug)]
pub enum FlowError {
    /// The document failed to parse or validate.
    Parse(ParseChartError),
    /// A chart failed synthesis.
    Synth(SynthError),
    /// A requested chart name is absent from the document.
    UnknownChart {
        /// The missing name.
        name: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Parse(e) => write!(f, "{e}"),
            FlowError::Synth(e) => write!(f, "{e}"),
            FlowError::UnknownChart { name } => write!(f, "unknown chart `{name}`"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<ParseChartError> for FlowError {
    fn from(e: ParseChartError) -> Self {
        FlowError::Parse(e)
    }
}

impl From<SynthError> for FlowError {
    fn from(e: SynthError) -> Self {
        FlowError::Synth(e)
    }
}

/// Result of the automated flow.
#[derive(Debug)]
pub struct FlowReport {
    /// Synthesized monitors, by chart name.
    pub monitors: Vec<Monitor>,
    /// Completion (match) times per monitor, by chart name.
    pub matches: BTreeMap<String, Vec<u64>>,
    /// Verdict per chart: `Passed` if its scenario was observed.
    pub verdicts: BTreeMap<String, Verdict>,
    /// The recorded global run (for VCD export or debugging).
    pub run: GlobalRun,
    /// VCD text of the requested clock domain, if configured.
    pub vcd: Option<String>,
}

impl FlowReport {
    /// Whether every monitored scenario was observed.
    pub fn all_passed(&self) -> bool {
        self.verdicts.values().all(|v| *v == Verdict::Passed)
    }
}

/// Runs the full automated verification flow.
///
/// # Errors
///
/// [`FlowError::Parse`] on bad document text, [`FlowError::Synth`] on
/// unsynthesizable charts, [`FlowError::UnknownChart`] on a bad chart
/// name in the config.
pub fn run_flow(mut config: FlowConfig) -> Result<FlowReport, FlowError> {
    // 1. verification plan: parse and validate the document
    let doc = parse_document(&config.document)?;

    // 2. automated monitor synthesis
    let chart_names: Vec<String> = if config.charts.is_empty() {
        doc.charts.iter().map(|c| c.name().to_owned()).collect()
    } else {
        config.charts.clone()
    };
    let mut monitors = Vec::new();
    for name in &chart_names {
        let chart = doc
            .chart(name)
            .ok_or_else(|| FlowError::UnknownChart { name: name.clone() })?;
        monitors.push(synthesize(chart, &config.synth)?);
    }

    // 3. simulation with online monitors
    let mut sim = Simulation::new();
    for c in config.clocks.drain(..) {
        sim.add_clock(c);
    }
    for t in config.transactors.drain(..) {
        sim.add_transactor(t);
    }
    let clocks = sim.clocks().clone();
    let mut harness = OnlineHarness::new();
    for m in &monitors {
        harness.attach(&clocks, m);
    }
    let run = sim.run_with(config.global_steps, |c, s| harness.observe(c, s));

    // 4. verdicts
    let mut matches = BTreeMap::new();
    let mut verdicts = BTreeMap::new();
    for (i, name) in chart_names.iter().enumerate() {
        let hits = harness.hits(i).to_vec();
        verdicts.insert(
            name.clone(),
            if hits.is_empty() {
                Verdict::Idle
            } else {
                Verdict::Passed
            },
        );
        matches.insert(name.clone(), hits);
    }

    let vcd = config.dump_vcd_for.as_ref().and_then(|clock_name| {
        let clock = clocks.lookup(clock_name)?;
        let trace = run.project(clock);
        Some(write_vcd(&trace, &doc.alphabet, &VcdWriteOptions::default()))
    });

    Ok(FlowReport {
        monitors,
        matches,
        verdicts,
        run,
        vcd,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::PeriodicTransactor;
    use cesc_expr::{Alphabet, Valuation};

    const DOC: &str = r#"
        scesc hs on clk {
            instances { M, S }
            events { req, ack }
            tick { M: req }
            tick { S: ack }
            cause req -> ack;
        }
    "#;

    fn alphabet() -> Alphabet {
        cesc_chart::parse_document(DOC).unwrap().alphabet
    }

    #[test]
    fn flow_passes_on_compliant_design() {
        let ab = alphabet();
        let req = ab.lookup("req").unwrap();
        let ack = ab.lookup("ack").unwrap();
        let report = run_flow(FlowConfig {
            document: DOC.to_owned(),
            charts: vec![],
            clocks: vec![ClockDomain::new("clk", 1, 0)],
            transactors: vec![Box::new(PeriodicTransactor::new(
                "clk",
                vec![Valuation::of([req]), Valuation::of([ack])],
                2,
                0,
            ))],
            global_steps: 20,
            synth: SynthOptions::default(),
            dump_vcd_for: Some("clk".to_owned()),
        })
        .unwrap();
        assert!(report.all_passed());
        assert!(report.vcd.as_deref().unwrap().contains("$var wire 1"));
        assert!(!report.matches["hs"].is_empty());
        assert_eq!(report.monitors.len(), 1);
        assert_eq!(report.run.len(), 20);
    }

    #[test]
    fn flow_fails_on_broken_design() {
        let ab = alphabet();
        let req = ab.lookup("req").unwrap();
        // design never acks
        let report = run_flow(FlowConfig {
            document: DOC.to_owned(),
            charts: vec!["hs".to_owned()],
            clocks: vec![ClockDomain::new("clk", 1, 0)],
            transactors: vec![Box::new(PeriodicTransactor::new(
                "clk",
                vec![Valuation::of([req])],
                3,
                0,
            ))],
            global_steps: 20,
            synth: SynthOptions::default(),
            dump_vcd_for: None,
        })
        .unwrap();
        assert!(!report.all_passed());
        assert!(report.vcd.is_none());
        assert_eq!(report.verdicts["hs"], Verdict::Idle);
    }

    #[test]
    fn unknown_chart_is_an_error() {
        let err = run_flow(FlowConfig {
            document: DOC.to_owned(),
            charts: vec!["ghost".to_owned()],
            clocks: vec![ClockDomain::new("clk", 1, 0)],
            transactors: vec![],
            global_steps: 1,
            synth: SynthOptions::default(),
            dump_vcd_for: None,
        })
        .unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn parse_errors_propagate() {
        let err = run_flow(FlowConfig {
            document: "scesc broken {".to_owned(),
            charts: vec![],
            clocks: vec![],
            transactors: vec![],
            global_steps: 0,
            synth: SynthOptions::default(),
            dump_vcd_for: None,
        })
        .unwrap_err();
        assert!(matches!(err, FlowError::Parse(_)));
    }
}
