//! # cesc-sim — GALS simulation kernel and online monitoring
//!
//! The "simulation environment" box of the paper's Figure 4 flow:
//!
//! * [`Simulation`] — a multi-clock (GALS) kernel driving
//!   [`Transactor`]s over the merged tick schedule;
//! * [`ScriptedTransactor`] / [`PeriodicTransactor`] /
//!   [`NoiseTransactor`] — generic traffic sources (protocol-accurate
//!   transactors live in `cesc-protocols`);
//! * [`OnlineHarness`] — monitors stepped inline with the simulation;
//! * [`run_decoupled`] — monitors on their own thread, fed over a
//!   channel;
//! * [`run_decoupled_parallel`] — the monitor fleet sharded across
//!   worker threads via `cesc-par`'s cost-balanced planner;
//! * [`run_flow`] — the complete automated pipeline: parse → validate →
//!   synthesize → simulate → verdict.
//!
//! # Example
//!
//! ```
//! use cesc_core::SynthOptions;
//! use cesc_sim::{run_flow, FlowConfig, PeriodicTransactor};
//! use cesc_trace::ClockDomain;
//! use cesc_expr::{Alphabet, Valuation};
//!
//! let doc = "scesc ping on clk { instances { M } events { p } tick { M: p } }";
//! let mut ab = Alphabet::new();
//! let p = ab.event("p");
//! let report = run_flow(FlowConfig {
//!     document: doc.to_owned(),
//!     charts: vec![],
//!     clocks: vec![ClockDomain::new("clk", 1, 0)],
//!     transactors: vec![Box::new(PeriodicTransactor::new(
//!         "clk", vec![Valuation::of([p])], 4, 0,
//!     ))],
//!     global_steps: 10,
//!     synth: SynthOptions::default(),
//!     dump_vcd_for: None,
//! }).unwrap();
//! assert!(report.all_passed());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod flow;
mod harness;
mod kernel;

pub use flow::{run_flow, FlowConfig, FlowError, FlowReport};
pub use harness::{
    run_decoupled, run_decoupled_batched, run_decoupled_batched_plan, run_decoupled_parallel,
    BatchHarness, OnlineHarness, HARNESS_CHUNK,
};
pub use kernel::{NoiseTransactor, PeriodicTransactor, ScriptedTransactor, Simulation, Transactor};
