//! Online monitoring harnesses.
//!
//! Connects synthesized monitors to a running [`Simulation`]: either
//! *inline* (monitors stepped in the simulation loop) or *decoupled*
//! (simulation thread streams [`GlobalStep`]s over a channel to a
//! monitor thread — how checkers attach to a live simulator in
//! practice).

use cesc_core::{Monitor, MonitorBank, MonitorExec, MultiClockMonitor};
use cesc_trace::{ClockSet, GlobalStep};
use crossbeam::channel;

/// Number of [`GlobalStep`]s per chunk on the batched decoupled
/// channel ([`run_decoupled_batched`]).
pub const HARNESS_CHUNK: usize = 1024;

/// Inline harness: single-clock monitors plus optional multi-clock
/// monitors, all stepped synchronously with the simulation.
#[derive(Debug)]
pub struct OnlineHarness<'m> {
    single: Vec<(usize, MonitorExec<'m>)>, // (clock index in ClockSet order, exec)
    single_hits: Vec<Vec<u64>>,
    multi: Vec<cesc_core::MultiClockExec<'m>>,
    multi_hits: Vec<Vec<u64>>,
}

impl<'m> OnlineHarness<'m> {
    /// Creates an empty harness.
    pub fn new() -> Self {
        OnlineHarness {
            single: Vec::new(),
            single_hits: Vec::new(),
            multi: Vec::new(),
            multi_hits: Vec::new(),
        }
    }

    /// Attaches a single-clock monitor; its [`Monitor::clock`] must name
    /// a domain of `clocks`.
    ///
    /// # Panics
    ///
    /// Panics if the monitor's clock is not in `clocks`.
    pub fn attach(&mut self, clocks: &ClockSet, monitor: &'m Monitor) -> usize {
        let clock = clocks
            .lookup(monitor.clock())
            .unwrap_or_else(|| panic!("monitor clock `{}` not in clock set", monitor.clock()));
        self.single.push((clock.index(), MonitorExec::new(monitor)));
        self.single_hits.push(Vec::new());
        self.single.len() - 1
    }

    /// Attaches a multi-clock monitor.
    pub fn attach_multiclock(&mut self, monitor: &'m MultiClockMonitor) -> usize {
        self.multi.push(monitor.executor());
        self.multi_hits.push(Vec::new());
        self.multi.len() - 1
    }

    /// Feeds one global step to every attached monitor.
    pub fn observe(&mut self, clocks: &ClockSet, step: &GlobalStep) {
        for (i, (clock_idx, exec)) in self.single.iter_mut().enumerate() {
            if let Some(v) = step
                .ticks
                .iter()
                .find(|(c, _)| c.index() == *clock_idx)
                .map(|&(_, v)| v)
            {
                if exec.step(v).matched {
                    self.single_hits[i].push(step.time);
                }
            }
        }
        for (i, exec) in self.multi.iter_mut().enumerate() {
            if exec.step_global(clocks, step) {
                self.multi_hits[i].push(step.time);
            }
        }
    }

    /// Feeds a chunk of global steps to every attached monitor.
    pub fn observe_batch(&mut self, clocks: &ClockSet, steps: &[GlobalStep]) {
        for step in steps {
            self.observe(clocks, step);
        }
    }

    /// Global times at which single-clock monitor `idx` completed.
    pub fn hits(&self, idx: usize) -> &[u64] {
        &self.single_hits[idx]
    }

    /// Global times at which multi-clock monitor `idx` completed.
    pub fn multiclock_hits(&self, idx: usize) -> &[u64] {
        &self.multi_hits[idx]
    }
}

impl Default for OnlineHarness<'_> {
    fn default() -> Self {
        Self::new()
    }
}

/// Batched single-clock harness: monitors are compiled once and
/// grouped into one [`MonitorBank`] per clock domain, so a chunk of
/// global steps drives every monitor through the flat batch engine —
/// the production configuration for high-rate simulation feeds.
///
/// Hits are recorded as *global times* (like [`OnlineHarness`]), not
/// local tick indices. Multi-clock monitors ride the same chunks
/// through the compiled shared-scoreboard engine
/// ([`cesc_core::CompiledMultiClock`]) — attach them with
/// [`BatchHarness::attach_multiclock`], so one verification plan may
/// mix single- and multi-clock charts.
///
/// # Examples
///
/// ```
/// use cesc_chart::parse_document;
/// use cesc_core::{synthesize, SynthOptions};
/// use cesc_expr::Valuation;
/// use cesc_sim::{BatchHarness, PeriodicTransactor, Simulation};
/// use cesc_trace::ClockDomain;
///
/// let doc = parse_document(
///     "scesc p on clk { instances { M } events { x } tick { M: x } }",
/// ).unwrap();
/// let m = synthesize(doc.chart("p").unwrap(), &SynthOptions::default()).unwrap();
/// let x = doc.alphabet.lookup("x").unwrap();
///
/// let mut sim = Simulation::new();
/// sim.add_clock(ClockDomain::new("clk", 1, 0));
/// sim.add_transactor(Box::new(PeriodicTransactor::new(
///     "clk", vec![Valuation::of([x])], 1, 0,
/// )));
/// let clocks = sim.clocks().clone();
/// let mut harness = BatchHarness::new();
/// let idx = harness.attach(&clocks, &m);
/// let run = sim.run(6);
/// let steps: Vec<_> = run.iter().cloned().collect();
/// harness.observe_batch(&clocks, &steps);
/// assert_eq!(harness.hits(idx), &[0, 2, 4]);
/// ```
#[derive(Debug, Default)]
pub struct BatchHarness {
    /// The mixed plan: single- and multi-clock members, fed globally.
    /// Attach order equals bank index in each slot space, so the
    /// harness is a thin simulation-facing veneer over
    /// [`MonitorBank::feed_global`].
    bank: MonitorBank,
}

impl BatchHarness {
    /// Creates an empty harness.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles and attaches a single-clock monitor; its
    /// [`Monitor::clock`] must name a domain of `clocks`. Returns the
    /// monitor's index for [`BatchHarness::hits`].
    ///
    /// # Panics
    ///
    /// Panics if the monitor's clock is not in `clocks`.
    pub fn attach(&mut self, clocks: &ClockSet, monitor: &Monitor) -> usize {
        assert!(
            clocks.lookup(monitor.clock()).is_some(),
            "monitor clock `{}` not in clock set",
            monitor.clock()
        );
        self.bank.add(monitor)
    }

    /// Attaches an already-compiled single-clock monitor — the path
    /// for artifacts that went through the `cesc-spec` pass pipeline
    /// (see [`BatchHarness::attach_spec`]).
    ///
    /// # Panics
    ///
    /// Panics if the monitor's clock is not in `clocks`.
    pub fn attach_compiled(
        &mut self,
        clocks: &ClockSet,
        compiled: cesc_core::CompiledMonitor,
    ) -> usize {
        assert!(
            clocks.lookup(compiled.clock()).is_some(),
            "monitor clock `{}` not in clock set",
            compiled.clock()
        );
        self.bank.add_compiled(compiled)
    }

    /// Attaches the cached compiled artifact of a
    /// [`cesc_spec::ChartSpec`], so a simulation harness runs exactly
    /// the optimized tables `cesc check` executes.
    ///
    /// # Panics
    ///
    /// Panics if the chart's clock is not in `clocks`.
    pub fn attach_spec(&mut self, clocks: &ClockSet, spec: &cesc_spec::ChartSpec) -> usize {
        self.attach_compiled(clocks, spec.compiled().clone())
    }

    /// Attaches an already-compiled multi-clock monitor (the
    /// `cesc-spec` counterpart of
    /// [`BatchHarness::attach_multiclock`]).
    ///
    /// # Panics
    ///
    /// Panics if any local monitor's clock is not in `clocks`.
    pub fn attach_compiled_multiclock(
        &mut self,
        clocks: &ClockSet,
        compiled: cesc_core::CompiledMultiClock,
    ) -> usize {
        for local in compiled.locals() {
            assert!(
                clocks.lookup(local.clock()).is_some(),
                "multi-clock local `{}`'s clock `{}` not in clock set",
                local.name(),
                local.clock()
            );
        }
        self.bank.add_compiled_multiclock(compiled)
    }

    /// Compiles and attaches a multi-clock monitor; its locals bind to
    /// the domains of `clocks` by clock name on the first feed.
    /// Returns the monitor's index for
    /// [`BatchHarness::multiclock_hits`] (a slot space separate from
    /// single-clock indices).
    ///
    /// # Panics
    ///
    /// Panics if any local monitor's clock is not in `clocks` — an
    /// unbound local never advances, which would silently make the
    /// full spec unmatchable.
    pub fn attach_multiclock(&mut self, clocks: &ClockSet, monitor: &MultiClockMonitor) -> usize {
        for local in monitor.locals() {
            assert!(
                clocks.lookup(local.clock()).is_some(),
                "multi-clock local `{}`'s clock `{}` not in clock set",
                local.name(),
                local.clock()
            );
        }
        self.bank.add_multiclock(monitor)
    }

    /// Number of attached single-clock monitors.
    pub fn len(&self) -> usize {
        self.bank.len()
    }

    /// Whether no monitor of either kind is attached.
    pub fn is_empty(&self) -> bool {
        self.bank.is_empty()
    }

    /// Feeds a chunk of global steps through
    /// [`MonitorBank::feed_global`]: each distinct domain's ticks are
    /// projected out of the chunk once, every monitor of that domain
    /// runs monitor-major over the projection (tables staying hot),
    /// and multi-clock members run the batched shared-scoreboard
    /// engine. Detections are logged at the originating step's global
    /// time.
    pub fn observe_batch(&mut self, clocks: &ClockSet, steps: &[GlobalStep]) {
        self.bank.feed_global(clocks, steps);
    }

    /// Global times at which monitor `idx` completed.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn hits(&self, idx: usize) -> &[u64] {
        self.bank.hits(idx)
    }

    /// Global times at which multi-clock monitor `idx` completed its
    /// full specification.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn multiclock_hits(&self, idx: usize) -> &[u64] {
        self.bank.multiclock_hits(idx)
    }
}

/// Runs monitors on a dedicated thread, receiving steps over a channel
/// from the simulation thread — the decoupled deployment of Fig 4's
/// "simulation environment" box.
///
/// Returns the completion times of each attached monitor once the
/// stream closes.
///
/// # Examples
///
/// ```
/// use cesc_chart::parse_document;
/// use cesc_core::{synthesize, SynthOptions};
/// use cesc_expr::Valuation;
/// use cesc_sim::{run_decoupled, PeriodicTransactor, Simulation};
/// use cesc_trace::ClockDomain;
///
/// let doc = parse_document(
///     "scesc p on clk { instances { M } events { x } tick { M: x } }",
/// ).unwrap();
/// let m = synthesize(doc.chart("p").unwrap(), &SynthOptions::default()).unwrap();
/// let x = doc.alphabet.lookup("x").unwrap();
///
/// let mut sim = Simulation::new();
/// sim.add_clock(ClockDomain::new("clk", 1, 0));
/// sim.add_transactor(Box::new(PeriodicTransactor::new(
///     "clk", vec![Valuation::of([x])], 1, 0,
/// )));
/// let hits = run_decoupled(&mut sim, 6, &[&m]);
/// assert_eq!(hits[0], vec![0, 2, 4]);
/// ```
pub fn run_decoupled(
    sim: &mut crate::kernel::Simulation,
    global_steps: usize,
    monitors: &[&Monitor],
) -> Vec<Vec<u64>> {
    let (tx, rx) = channel::bounded::<(GlobalStep, ())>(1024);
    let clocks = sim.clocks().clone();

    std::thread::scope(|scope| {
        let monitor_thread = scope.spawn(move || {
            let mut harness = OnlineHarness::new();
            for m in monitors {
                harness.attach(&clocks, m);
            }
            while let Ok((step, ())) = rx.recv() {
                harness.observe(&clocks, &step);
            }
            (0..monitors.len())
                .map(|i| harness.hits(i).to_vec())
                .collect::<Vec<_>>()
        });

        sim.run_with(global_steps, |_, step| {
            tx.send((step.clone(), ())).expect("monitor thread alive");
        });
        drop(tx);
        monitor_thread.join().expect("monitor thread panicked")
    })
}

/// Batched variant of [`run_decoupled`]: the simulation thread sends
/// [`HARNESS_CHUNK`]-sized chunks of steps over the channel and the
/// monitor thread drives a [`BatchHarness`], so per-message overhead
/// and per-step guard interpretation are both amortised.
///
/// Produces exactly the hit times [`run_decoupled`] would for the
/// same simulation (property: chunking never changes verdicts).
pub fn run_decoupled_batched(
    sim: &mut crate::kernel::Simulation,
    global_steps: usize,
    monitors: &[&Monitor],
) -> Vec<Vec<u64>> {
    run_decoupled_batched_plan(sim, global_steps, monitors, &[]).0
}

/// Mixed-plan variant of [`run_decoupled_batched`]: single-clock *and*
/// multi-clock monitors share the chunked channel and one
/// [`BatchHarness`] on the monitor thread. Returns `(single_hits,
/// multiclock_hits)` in the argument orders.
///
/// Verdicts equal the step-wise [`run_decoupled`] /
/// [`OnlineHarness`] combination on the same simulation.
pub fn run_decoupled_batched_plan(
    sim: &mut crate::kernel::Simulation,
    global_steps: usize,
    monitors: &[&Monitor],
    multis: &[&MultiClockMonitor],
) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
    let (tx, rx) = channel::bounded::<Vec<GlobalStep>>(64);
    let clocks = sim.clocks().clone();

    std::thread::scope(|scope| {
        let monitor_clocks = clocks.clone();
        let monitor_thread = scope.spawn(move || {
            let mut harness = BatchHarness::new();
            for m in monitors {
                harness.attach(&monitor_clocks, m);
            }
            for mm in multis {
                harness.attach_multiclock(&monitor_clocks, mm);
            }
            while let Ok(chunk) = rx.recv() {
                harness.observe_batch(&monitor_clocks, &chunk);
            }
            (
                (0..monitors.len())
                    .map(|i| harness.hits(i).to_vec())
                    .collect::<Vec<_>>(),
                (0..multis.len())
                    .map(|i| harness.multiclock_hits(i).to_vec())
                    .collect::<Vec<_>>(),
            )
        });

        let mut pending: Vec<GlobalStep> = Vec::with_capacity(HARNESS_CHUNK);
        sim.run_with(global_steps, |_, step| {
            pending.push(step.clone());
            if pending.len() >= HARNESS_CHUNK {
                tx.send(std::mem::take(&mut pending))
                    .expect("monitor thread alive");
            }
        });
        if !pending.is_empty() {
            tx.send(pending).expect("monitor thread alive");
        }
        drop(tx);
        monitor_thread.join().expect("monitor thread panicked")
    })
}

/// Sharded-parallel variant of [`run_decoupled_batched_plan`]: the
/// simulation thread streams [`HARNESS_CHUNK`]-sized chunks into a
/// `cesc-par` fleet, whose shard planner partitions the monitors
/// across `jobs` worker threads (cost-balanced, scoreboard-coupled
/// members co-located). Each worker owns its shard's complete mutable
/// state, so the monitor hot path runs without cross-shard locking;
/// per-shard results merge at join.
///
/// Returns `(single_hits, multiclock_hits)` in the argument orders —
/// bit-identical to [`run_decoupled_batched_plan`] (and therefore to
/// the step-wise [`run_decoupled`]) on the same simulation, for any
/// `jobs` (property-tested in the workspace `batch_equivalence`
/// suite). `jobs == 0` or `1` still runs the fleet machinery on a
/// single worker.
pub fn run_decoupled_parallel(
    sim: &mut crate::kernel::Simulation,
    global_steps: usize,
    monitors: &[&Monitor],
    multis: &[&MultiClockMonitor],
    jobs: usize,
) -> (Vec<Vec<u64>>, Vec<Vec<u64>>) {
    let clocks = sim.clocks().clone();
    let mut fleet = cesc_par::Fleet::new();
    for m in monitors {
        assert!(
            clocks.lookup(m.clock()).is_some(),
            "monitor clock `{}` not in clock set",
            m.clock()
        );
        fleet.add(m);
    }
    for mm in multis {
        for local in mm.locals() {
            assert!(
                clocks.lookup(local.clock()).is_some(),
                "multi-clock local `{}`'s clock `{}` not in clock set",
                local.name(),
                local.clock()
            );
        }
        fleet.add_multiclock(mm);
    }
    let plan = cesc_par::plan_shards(&fleet, jobs);
    let opts = cesc_par::ParOptions::default(); // keep_all_hits: exact logs
    let (report, ()) = cesc_par::run_sharded(&fleet, &plan, Some(&clocks), &opts, |feeder| {
        let mut pending: Vec<GlobalStep> = Vec::with_capacity(HARNESS_CHUNK);
        sim.run_with(global_steps, |_, step| {
            pending.push(step.clone());
            if pending.len() >= HARNESS_CHUNK {
                feeder.feed_global(&pending);
                pending.clear();
            }
        });
        feeder.feed_global(&pending);
    });
    (
        report
            .singles
            .into_iter()
            .map(|r| r.log.all().expect("keep_all_hits").to_vec())
            .collect(),
        report
            .multis
            .into_iter()
            .map(|r| r.log.all().expect("keep_all_hits").to_vec())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{PeriodicTransactor, Simulation};
    use cesc_chart::parse_document;
    use cesc_core::{synthesize, synthesize_multiclock, SynthOptions};
    use cesc_expr::Valuation;
    use cesc_trace::ClockDomain;

    fn handshake_doc() -> cesc_chart::Document {
        parse_document(
            r#"
            scesc hs on clk {
                instances { M, S }
                events { req, ack }
                tick { M: req }
                tick { S: ack }
                cause req -> ack;
            }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn inline_harness_detects_periodic_traffic() {
        let doc = handshake_doc();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        let req = doc.alphabet.lookup("req").unwrap();
        let ack = doc.alphabet.lookup("ack").unwrap();

        let mut sim = Simulation::new();
        sim.add_clock(ClockDomain::new("clk", 1, 0));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk",
            vec![Valuation::of([req]), Valuation::of([ack])],
            1,
            0,
        )));
        let clocks_owned = sim.clocks().clone();
        let mut harness = OnlineHarness::new();
        let idx = harness.attach(&clocks_owned, &m);
        sim.run_with(9, |clocks, step| harness.observe(clocks, step));
        // windows complete at t=1, 4, 7
        assert_eq!(harness.hits(idx), &[1, 4, 7]);
    }

    #[test]
    fn decoupled_harness_agrees_with_inline() {
        let doc = handshake_doc();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        let req = doc.alphabet.lookup("req").unwrap();
        let ack = doc.alphabet.lookup("ack").unwrap();

        let build_sim = || {
            let mut sim = Simulation::new();
            sim.add_clock(ClockDomain::new("clk", 1, 0));
            sim.add_transactor(Box::new(PeriodicTransactor::new(
                "clk",
                vec![Valuation::of([req]), Valuation::of([ack])],
                2,
                1,
            )));
            sim
        };

        let mut sim = build_sim();
        let clocks = sim.clocks().clone();
        let mut harness = OnlineHarness::new();
        harness.attach(&clocks, &m);
        sim.run_with(20, |c, s| harness.observe(c, s));
        let inline_hits = harness.hits(0).to_vec();

        let mut sim2 = build_sim();
        let decoupled_hits = run_decoupled(&mut sim2, 20, &[&m]);
        assert_eq!(decoupled_hits[0], inline_hits);
        assert!(!inline_hits.is_empty());
    }

    #[test]
    fn batch_harness_agrees_with_online_harness() {
        let doc = handshake_doc();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        let req = doc.alphabet.lookup("req").unwrap();
        let ack = doc.alphabet.lookup("ack").unwrap();

        let build_sim = || {
            let mut sim = Simulation::new();
            sim.add_clock(ClockDomain::new("clk", 1, 0));
            sim.add_transactor(Box::new(PeriodicTransactor::new(
                "clk",
                vec![Valuation::of([req]), Valuation::of([ack])],
                1,
                0,
            )));
            sim
        };

        let mut sim = build_sim();
        let clocks = sim.clocks().clone();
        let mut online = OnlineHarness::new();
        online.attach(&clocks, &m);
        let run = sim.run(30);
        let steps: Vec<GlobalStep> = run.iter().cloned().collect();
        online.observe_batch(&clocks, &steps);

        let mut batch = BatchHarness::new();
        let idx = batch.attach(&clocks, &m);
        assert_eq!(batch.len(), 1);
        assert!(!batch.is_empty());
        // feed in uneven chunks: state must carry across chunk borders
        for chunk in steps.chunks(7) {
            batch.observe_batch(&clocks, chunk);
        }
        assert_eq!(batch.hits(idx), online.hits(0));
        assert!(!batch.hits(idx).is_empty());
    }

    #[test]
    fn batch_harness_multiple_domains() {
        let doc = parse_document(
            r#"
            scesc fastp on fast { instances { A } events { go } tick { A: go } }
            scesc slowp on slow { instances { B } events { done } tick { B: done } }
        "#,
        )
        .unwrap();
        let mf = synthesize(doc.chart("fastp").unwrap(), &SynthOptions::default()).unwrap();
        let ms = synthesize(doc.chart("slowp").unwrap(), &SynthOptions::default()).unwrap();
        let go = doc.alphabet.lookup("go").unwrap();
        let done = doc.alphabet.lookup("done").unwrap();

        let mut sim = Simulation::new();
        sim.add_clock(ClockDomain::new("fast", 1, 0));
        sim.add_clock(ClockDomain::new("slow", 2, 0));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "fast",
            vec![Valuation::of([go])],
            0,
            0,
        )));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "slow",
            vec![Valuation::of([done])],
            0,
            0,
        )));
        let clocks = sim.clocks().clone();
        let mut online = OnlineHarness::new();
        online.attach(&clocks, &mf);
        online.attach(&clocks, &ms);
        let mut batch = BatchHarness::new();
        let bf = batch.attach(&clocks, &mf);
        let bs = batch.attach(&clocks, &ms);

        let run = sim.run(12);
        let steps: Vec<GlobalStep> = run.iter().cloned().collect();
        online.observe_batch(&clocks, &steps);
        batch.observe_batch(&clocks, &steps);
        assert_eq!(batch.hits(bf), online.hits(0));
        assert_eq!(batch.hits(bs), online.hits(1));
        assert!(!batch.hits(bs).is_empty());
    }

    #[test]
    fn decoupled_batched_agrees_with_decoupled() {
        let doc = handshake_doc();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        let req = doc.alphabet.lookup("req").unwrap();
        let ack = doc.alphabet.lookup("ack").unwrap();

        let build_sim = || {
            let mut sim = Simulation::new();
            sim.add_clock(ClockDomain::new("clk", 1, 0));
            sim.add_transactor(Box::new(PeriodicTransactor::new(
                "clk",
                vec![Valuation::of([req]), Valuation::of([ack])],
                2,
                1,
            )));
            sim
        };

        let mut sim1 = build_sim();
        let reference = run_decoupled(&mut sim1, 40, &[&m]);
        let mut sim2 = build_sim();
        let batched = run_decoupled_batched(&mut sim2, 40, &[&m]);
        assert_eq!(batched, reference);
        assert!(!batched[0].is_empty());
    }

    /// Two-domain spec with cross causality plus a single-clock chart:
    /// the mixed-plan workloads below pin batch == step-wise.
    fn mixed_plan_doc() -> cesc_chart::Document {
        parse_document(
            r#"
            scesc m1 on clk1 { instances { A } events { go } tick { A: go } }
            scesc m2 on clk2 { instances { B } events { done } tick { B: done } }
            scesc pulse on clk1 { instances { A } events { go } tick { A: go } }
            multiclock pair { charts { m1, m2 } cause go -> done; }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn batch_harness_multiclock_agrees_with_online() {
        let doc = mixed_plan_doc();
        let mm = synthesize_multiclock(doc.multiclock_spec("pair").unwrap(), &SynthOptions::default())
            .unwrap();
        let pulse = synthesize(doc.chart("pulse").unwrap(), &SynthOptions::default()).unwrap();
        let go = doc.alphabet.lookup("go").unwrap();
        let done = doc.alphabet.lookup("done").unwrap();

        let mut sim = Simulation::new();
        sim.add_clock(ClockDomain::new("clk1", 2, 0));
        sim.add_clock(ClockDomain::new("clk2", 3, 1));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk1",
            vec![Valuation::of([go])],
            4,
            0,
        )));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk2",
            vec![Valuation::of([done])],
            4,
            1,
        )));
        let clocks = sim.clocks().clone();
        let run = sim.run(60);
        let steps: Vec<GlobalStep> = run.iter().cloned().collect();

        let mut online = OnlineHarness::new();
        let oi = online.attach_multiclock(&mm);
        let op = online.attach(&clocks, &pulse);
        online.observe_batch(&clocks, &steps);

        let mut batch = BatchHarness::new();
        let bi = batch.attach_multiclock(&clocks, &mm);
        let bp = batch.attach(&clocks, &pulse);
        assert!(!batch.is_empty());
        // uneven chunking: state must carry across chunk borders
        for chunk in steps.chunks(7) {
            batch.observe_batch(&clocks, chunk);
        }
        assert_eq!(batch.multiclock_hits(bi), online.multiclock_hits(oi));
        assert_eq!(batch.hits(bp), online.hits(op));
        assert!(!batch.multiclock_hits(bi).is_empty());
    }

    #[test]
    #[should_panic(expected = "not in clock set")]
    fn attach_multiclock_rejects_unknown_clock() {
        let doc = mixed_plan_doc();
        let mm = synthesize_multiclock(doc.multiclock_spec("pair").unwrap(), &SynthOptions::default())
            .unwrap();
        let mut clocks = ClockSet::new();
        clocks.add(ClockDomain::new("clk1", 1, 0)); // clk2 missing
        BatchHarness::new().attach_multiclock(&clocks, &mm);
    }

    #[test]
    fn decoupled_batched_plan_agrees_with_stepwise() {
        let doc = mixed_plan_doc();
        let mm = synthesize_multiclock(doc.multiclock_spec("pair").unwrap(), &SynthOptions::default())
            .unwrap();
        let pulse = synthesize(doc.chart("pulse").unwrap(), &SynthOptions::default()).unwrap();
        let go = doc.alphabet.lookup("go").unwrap();
        let done = doc.alphabet.lookup("done").unwrap();

        let build_sim = || {
            let mut sim = Simulation::new();
            sim.add_clock(ClockDomain::new("clk1", 2, 0));
            sim.add_clock(ClockDomain::new("clk2", 3, 1));
            sim.add_transactor(Box::new(PeriodicTransactor::new(
                "clk1",
                vec![Valuation::of([go])],
                3,
                0,
            )));
            sim.add_transactor(Box::new(PeriodicTransactor::new(
                "clk2",
                vec![Valuation::of([done])],
                3,
                1,
            )));
            sim
        };

        let mut sim = build_sim();
        let clocks = sim.clocks().clone();
        let mut online = OnlineHarness::new();
        let oi = online.attach_multiclock(&mm);
        online.attach(&clocks, &pulse);
        sim.run_with(50, |c, s| online.observe(c, s));

        let mut sim2 = build_sim();
        let (single, multi) = run_decoupled_batched_plan(&mut sim2, 50, &[&pulse], &[&mm]);
        assert_eq!(multi[0], online.multiclock_hits(oi));
        assert_eq!(single[0], online.hits(0));
        assert!(!multi[0].is_empty());
    }

    #[test]
    fn decoupled_parallel_agrees_with_batched_plan_for_any_jobs() {
        let doc = mixed_plan_doc();
        let mm = synthesize_multiclock(doc.multiclock_spec("pair").unwrap(), &SynthOptions::default())
            .unwrap();
        let pulse = synthesize(doc.chart("pulse").unwrap(), &SynthOptions::default()).unwrap();
        let go = doc.alphabet.lookup("go").unwrap();
        let done = doc.alphabet.lookup("done").unwrap();

        let build_sim = || {
            let mut sim = Simulation::new();
            sim.add_clock(ClockDomain::new("clk1", 2, 0));
            sim.add_clock(ClockDomain::new("clk2", 3, 1));
            sim.add_transactor(Box::new(PeriodicTransactor::new(
                "clk1",
                vec![Valuation::of([go])],
                3,
                0,
            )));
            sim.add_transactor(Box::new(PeriodicTransactor::new(
                "clk2",
                vec![Valuation::of([done])],
                3,
                1,
            )));
            sim
        };

        let mut sim = build_sim();
        let reference = run_decoupled_batched_plan(&mut sim, 50, &[&pulse], &[&mm]);
        assert!(!reference.1[0].is_empty());
        for jobs in [0, 1, 2, 4] {
            let mut sim = build_sim();
            let parallel = run_decoupled_parallel(&mut sim, 50, &[&pulse], &[&mm], jobs);
            assert_eq!(parallel, reference, "jobs={jobs}");
        }
    }

    #[test]
    #[should_panic(expected = "not in clock set")]
    fn decoupled_parallel_rejects_unknown_clock() {
        let doc = mixed_plan_doc();
        let pulse = synthesize(doc.chart("pulse").unwrap(), &SynthOptions::default()).unwrap();
        let mut sim = Simulation::new();
        sim.add_clock(ClockDomain::new("other", 1, 0));
        run_decoupled_parallel(&mut sim, 1, &[&pulse], &[], 2);
    }

    #[test]
    fn attach_spec_runs_optimized_tables_with_identical_hits() {
        // the cesc-spec compiled artifact (optimized tables) must see
        // exactly the hits the plain attach path records
        let src = r#"
            scesc hs on clk {
                instances { M, S }
                events { req, ack }
                tick { M: req }
                tick { S: ack }
                cause req -> ack;
            }
        "#;
        let specs = cesc_spec::SpecSet::load(src).unwrap();
        let m = synthesize(
            specs.document().chart("hs").unwrap(),
            &SynthOptions::default(),
        )
        .unwrap();
        let req = specs.alphabet().lookup("req").unwrap();
        let ack = specs.alphabet().lookup("ack").unwrap();

        let mut sim = Simulation::new();
        sim.add_clock(ClockDomain::new("clk", 1, 0));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk",
            vec![Valuation::of([req]), Valuation::of([ack])],
            2,
            0,
        )));
        let clocks = sim.clocks().clone();
        let run = sim.run(40);
        let steps: Vec<GlobalStep> = run.iter().cloned().collect();

        let mut plain = BatchHarness::new();
        let pi = plain.attach(&clocks, &m);
        plain.observe_batch(&clocks, &steps);

        let mut via_spec = BatchHarness::new();
        let si = via_spec.attach_spec(&clocks, specs.chart_spec(0).unwrap());
        for chunk in steps.chunks(3) {
            via_spec.observe_batch(&clocks, chunk);
        }
        assert_eq!(via_spec.hits(si), plain.hits(pi));
        assert!(!via_spec.hits(si).is_empty());
    }

    #[test]
    fn multiclock_monitor_in_harness() {
        let doc = parse_document(
            r#"
            scesc m1 on clk1 { instances { A } events { go } tick { A: go } }
            scesc m2 on clk2 { instances { B } events { done } tick { B: done } }
            multiclock pair { charts { m1, m2 } cause go -> done; }
        "#,
        )
        .unwrap();
        let mm = synthesize_multiclock(doc.multiclock_spec("pair").unwrap(), &SynthOptions::default())
            .unwrap();
        let go = doc.alphabet.lookup("go").unwrap();
        let done = doc.alphabet.lookup("done").unwrap();

        let mut sim = Simulation::new();
        sim.add_clock(ClockDomain::new("clk1", 2, 0));
        sim.add_clock(ClockDomain::new("clk2", 3, 1));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk1",
            vec![Valuation::of([go])],
            9,
            0,
        )));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk2",
            vec![Valuation::of([done])],
            9,
            0,
        )));
        let mut harness = OnlineHarness::new();
        let idx = harness.attach_multiclock(&mm);
        sim.run_with(10, |c, s| harness.observe(c, s));
        // go at t0 (clk1 tick0), done at t1 (clk2 tick0) → pair at t1
        assert!(!harness.multiclock_hits(idx).is_empty());
        assert_eq!(harness.multiclock_hits(idx)[0], 1);
    }
}
