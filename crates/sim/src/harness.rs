//! Online monitoring harnesses.
//!
//! Connects synthesized monitors to a running [`Simulation`]: either
//! *inline* (monitors stepped in the simulation loop) or *decoupled*
//! (simulation thread streams [`GlobalStep`]s over a channel to a
//! monitor thread — how checkers attach to a live simulator in
//! practice).

use cesc_core::{Monitor, MonitorBank, MonitorExec, MultiClockMonitor};
use cesc_trace::{ClockSet, GlobalStep};
use crossbeam::channel;

/// Number of [`GlobalStep`]s per chunk on the batched decoupled
/// channel ([`run_decoupled_batched`]).
pub const HARNESS_CHUNK: usize = 1024;

/// Inline harness: single-clock monitors plus optional multi-clock
/// monitors, all stepped synchronously with the simulation.
#[derive(Debug)]
pub struct OnlineHarness<'m> {
    single: Vec<(usize, MonitorExec<'m>)>, // (clock index in ClockSet order, exec)
    single_hits: Vec<Vec<u64>>,
    multi: Vec<cesc_core::MultiClockExec<'m>>,
    multi_hits: Vec<Vec<u64>>,
}

impl<'m> OnlineHarness<'m> {
    /// Creates an empty harness.
    pub fn new() -> Self {
        OnlineHarness {
            single: Vec::new(),
            single_hits: Vec::new(),
            multi: Vec::new(),
            multi_hits: Vec::new(),
        }
    }

    /// Attaches a single-clock monitor; its [`Monitor::clock`] must name
    /// a domain of `clocks`.
    ///
    /// # Panics
    ///
    /// Panics if the monitor's clock is not in `clocks`.
    pub fn attach(&mut self, clocks: &ClockSet, monitor: &'m Monitor) -> usize {
        let clock = clocks
            .lookup(monitor.clock())
            .unwrap_or_else(|| panic!("monitor clock `{}` not in clock set", monitor.clock()));
        self.single.push((clock.index(), MonitorExec::new(monitor)));
        self.single_hits.push(Vec::new());
        self.single.len() - 1
    }

    /// Attaches a multi-clock monitor.
    pub fn attach_multiclock(&mut self, monitor: &'m MultiClockMonitor) -> usize {
        self.multi.push(monitor.executor());
        self.multi_hits.push(Vec::new());
        self.multi.len() - 1
    }

    /// Feeds one global step to every attached monitor.
    pub fn observe(&mut self, clocks: &ClockSet, step: &GlobalStep) {
        for (i, (clock_idx, exec)) in self.single.iter_mut().enumerate() {
            if let Some(v) = step
                .ticks
                .iter()
                .find(|(c, _)| c.index() == *clock_idx)
                .map(|&(_, v)| v)
            {
                if exec.step(v).matched {
                    self.single_hits[i].push(step.time);
                }
            }
        }
        for (i, exec) in self.multi.iter_mut().enumerate() {
            if exec.step_global(clocks, step) {
                self.multi_hits[i].push(step.time);
            }
        }
    }

    /// Feeds a chunk of global steps to every attached monitor.
    pub fn observe_batch(&mut self, clocks: &ClockSet, steps: &[GlobalStep]) {
        for step in steps {
            self.observe(clocks, step);
        }
    }

    /// Global times at which single-clock monitor `idx` completed.
    pub fn hits(&self, idx: usize) -> &[u64] {
        &self.single_hits[idx]
    }

    /// Global times at which multi-clock monitor `idx` completed.
    pub fn multiclock_hits(&self, idx: usize) -> &[u64] {
        &self.multi_hits[idx]
    }
}

impl Default for OnlineHarness<'_> {
    fn default() -> Self {
        Self::new()
    }
}

/// Batched single-clock harness: monitors are compiled once and
/// grouped into one [`MonitorBank`] per clock domain, so a chunk of
/// global steps drives every monitor through the flat batch engine —
/// the production configuration for high-rate simulation feeds.
///
/// Hits are recorded as *global times* (like [`OnlineHarness`]), not
/// local tick indices. Multi-clock monitors need the shared-scoreboard
/// step-wise path; attach those to an [`OnlineHarness`] instead.
///
/// # Examples
///
/// ```
/// use cesc_chart::parse_document;
/// use cesc_core::{synthesize, SynthOptions};
/// use cesc_expr::Valuation;
/// use cesc_sim::{BatchHarness, PeriodicTransactor, Simulation};
/// use cesc_trace::ClockDomain;
///
/// let doc = parse_document(
///     "scesc p on clk { instances { M } events { x } tick { M: x } }",
/// ).unwrap();
/// let m = synthesize(doc.chart("p").unwrap(), &SynthOptions::default()).unwrap();
/// let x = doc.alphabet.lookup("x").unwrap();
///
/// let mut sim = Simulation::new();
/// sim.add_clock(ClockDomain::new("clk", 1, 0));
/// sim.add_transactor(Box::new(PeriodicTransactor::new(
///     "clk", vec![Valuation::of([x])], 1, 0,
/// )));
/// let clocks = sim.clocks().clone();
/// let mut harness = BatchHarness::new();
/// let idx = harness.attach(&clocks, &m);
/// let run = sim.run(6);
/// let steps: Vec<_> = run.iter().cloned().collect();
/// harness.observe_batch(&clocks, &steps);
/// assert_eq!(harness.hits(idx), &[0, 2, 4]);
/// ```
#[derive(Debug, Default)]
pub struct BatchHarness {
    /// One bank per clock domain.
    banks: Vec<DomainBank>,
    /// Global times per attached monitor, attach order.
    hits: Vec<Vec<u64>>,
    /// Reused projection buffers (one domain's valuations / times for
    /// the current chunk).
    vals: Vec<cesc_expr::Valuation>,
    times: Vec<u64>,
}

/// One clock domain's monitors plus the slot → attach-order map.
#[derive(Debug)]
struct DomainBank {
    clock: cesc_trace::ClockId,
    bank: MonitorBank,
    /// bank slot → index into [`BatchHarness::hits`] (attach order).
    attach_order: Vec<usize>,
}

impl BatchHarness {
    /// Creates an empty harness.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles and attaches a single-clock monitor; its
    /// [`Monitor::clock`] must name a domain of `clocks`. Returns the
    /// monitor's index for [`BatchHarness::hits`].
    ///
    /// # Panics
    ///
    /// Panics if the monitor's clock is not in `clocks`.
    pub fn attach(&mut self, clocks: &ClockSet, monitor: &Monitor) -> usize {
        let clock = clocks
            .lookup(monitor.clock())
            .unwrap_or_else(|| panic!("monitor clock `{}` not in clock set", monitor.clock()));
        let bank = match self.banks.iter_mut().find(|b| b.clock == clock) {
            Some(b) => b,
            None => {
                self.banks.push(DomainBank {
                    clock,
                    bank: MonitorBank::new(),
                    attach_order: Vec::new(),
                });
                self.banks.last_mut().expect("just pushed")
            }
        };
        let idx = self.hits.len();
        bank.bank.add(monitor);
        bank.attach_order.push(idx);
        self.hits.push(Vec::new());
        idx
    }

    /// Number of attached monitors.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Whether no monitor is attached.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// Feeds a chunk of global steps: each domain's ticks are
    /// projected out of the chunk into a contiguous buffer, then the
    /// domain's bank runs monitor-major over it (each monitor's
    /// tables stay hot for the whole chunk). Detections are logged at
    /// the originating step's global time.
    pub fn observe_batch(&mut self, _clocks: &ClockSet, steps: &[GlobalStep]) {
        let BatchHarness {
            banks,
            hits,
            vals,
            times,
        } = self;
        for DomainBank {
            clock,
            bank,
            attach_order,
        } in banks.iter_mut()
        {
            vals.clear();
            times.clear();
            for step in steps {
                if let Some(v) = step.tick_of(*clock) {
                    vals.push(v);
                    times.push(step.time);
                }
            }
            bank.feed_with(vals, |slot, off| {
                hits[attach_order[slot]].push(times[off]);
            });
        }
    }

    /// Global times at which monitor `idx` completed.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn hits(&self, idx: usize) -> &[u64] {
        &self.hits[idx]
    }
}

/// Runs monitors on a dedicated thread, receiving steps over a channel
/// from the simulation thread — the decoupled deployment of Fig 4's
/// "simulation environment" box.
///
/// Returns the completion times of each attached monitor once the
/// stream closes.
///
/// # Examples
///
/// ```
/// use cesc_chart::parse_document;
/// use cesc_core::{synthesize, SynthOptions};
/// use cesc_expr::Valuation;
/// use cesc_sim::{run_decoupled, PeriodicTransactor, Simulation};
/// use cesc_trace::ClockDomain;
///
/// let doc = parse_document(
///     "scesc p on clk { instances { M } events { x } tick { M: x } }",
/// ).unwrap();
/// let m = synthesize(doc.chart("p").unwrap(), &SynthOptions::default()).unwrap();
/// let x = doc.alphabet.lookup("x").unwrap();
///
/// let mut sim = Simulation::new();
/// sim.add_clock(ClockDomain::new("clk", 1, 0));
/// sim.add_transactor(Box::new(PeriodicTransactor::new(
///     "clk", vec![Valuation::of([x])], 1, 0,
/// )));
/// let hits = run_decoupled(&mut sim, 6, &[&m]);
/// assert_eq!(hits[0], vec![0, 2, 4]);
/// ```
pub fn run_decoupled(
    sim: &mut crate::kernel::Simulation,
    global_steps: usize,
    monitors: &[&Monitor],
) -> Vec<Vec<u64>> {
    let (tx, rx) = channel::bounded::<(GlobalStep, ())>(1024);
    let clocks = sim.clocks().clone();

    std::thread::scope(|scope| {
        let monitor_thread = scope.spawn(move || {
            let mut harness = OnlineHarness::new();
            for m in monitors {
                harness.attach(&clocks, m);
            }
            while let Ok((step, ())) = rx.recv() {
                harness.observe(&clocks, &step);
            }
            (0..monitors.len())
                .map(|i| harness.hits(i).to_vec())
                .collect::<Vec<_>>()
        });

        sim.run_with(global_steps, |_, step| {
            tx.send((step.clone(), ())).expect("monitor thread alive");
        });
        drop(tx);
        monitor_thread.join().expect("monitor thread panicked")
    })
}

/// Batched variant of [`run_decoupled`]: the simulation thread sends
/// [`HARNESS_CHUNK`]-sized chunks of steps over the channel and the
/// monitor thread drives a [`BatchHarness`], so per-message overhead
/// and per-step guard interpretation are both amortised.
///
/// Produces exactly the hit times [`run_decoupled`] would for the
/// same simulation (property: chunking never changes verdicts).
pub fn run_decoupled_batched(
    sim: &mut crate::kernel::Simulation,
    global_steps: usize,
    monitors: &[&Monitor],
) -> Vec<Vec<u64>> {
    let (tx, rx) = channel::bounded::<Vec<GlobalStep>>(64);
    let clocks = sim.clocks().clone();

    std::thread::scope(|scope| {
        let monitor_clocks = clocks.clone();
        let monitor_thread = scope.spawn(move || {
            let mut harness = BatchHarness::new();
            for m in monitors {
                harness.attach(&monitor_clocks, m);
            }
            while let Ok(chunk) = rx.recv() {
                harness.observe_batch(&monitor_clocks, &chunk);
            }
            (0..monitors.len())
                .map(|i| harness.hits(i).to_vec())
                .collect::<Vec<_>>()
        });

        let mut pending: Vec<GlobalStep> = Vec::with_capacity(HARNESS_CHUNK);
        sim.run_with(global_steps, |_, step| {
            pending.push(step.clone());
            if pending.len() >= HARNESS_CHUNK {
                tx.send(std::mem::take(&mut pending))
                    .expect("monitor thread alive");
            }
        });
        if !pending.is_empty() {
            tx.send(pending).expect("monitor thread alive");
        }
        drop(tx);
        monitor_thread.join().expect("monitor thread panicked")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{PeriodicTransactor, Simulation};
    use cesc_chart::parse_document;
    use cesc_core::{synthesize, synthesize_multiclock, SynthOptions};
    use cesc_expr::Valuation;
    use cesc_trace::ClockDomain;

    fn handshake_doc() -> cesc_chart::Document {
        parse_document(
            r#"
            scesc hs on clk {
                instances { M, S }
                events { req, ack }
                tick { M: req }
                tick { S: ack }
                cause req -> ack;
            }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn inline_harness_detects_periodic_traffic() {
        let doc = handshake_doc();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        let req = doc.alphabet.lookup("req").unwrap();
        let ack = doc.alphabet.lookup("ack").unwrap();

        let mut sim = Simulation::new();
        let clocks_owned;
        sim.add_clock(ClockDomain::new("clk", 1, 0));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk",
            vec![Valuation::of([req]), Valuation::of([ack])],
            1,
            0,
        )));
        clocks_owned = sim.clocks().clone();
        let mut harness = OnlineHarness::new();
        let idx = harness.attach(&clocks_owned, &m);
        sim.run_with(9, |clocks, step| harness.observe(clocks, step));
        // windows complete at t=1, 4, 7
        assert_eq!(harness.hits(idx), &[1, 4, 7]);
    }

    #[test]
    fn decoupled_harness_agrees_with_inline() {
        let doc = handshake_doc();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        let req = doc.alphabet.lookup("req").unwrap();
        let ack = doc.alphabet.lookup("ack").unwrap();

        let build_sim = || {
            let mut sim = Simulation::new();
            sim.add_clock(ClockDomain::new("clk", 1, 0));
            sim.add_transactor(Box::new(PeriodicTransactor::new(
                "clk",
                vec![Valuation::of([req]), Valuation::of([ack])],
                2,
                1,
            )));
            sim
        };

        let mut sim = build_sim();
        let clocks = sim.clocks().clone();
        let mut harness = OnlineHarness::new();
        harness.attach(&clocks, &m);
        sim.run_with(20, |c, s| harness.observe(c, s));
        let inline_hits = harness.hits(0).to_vec();

        let mut sim2 = build_sim();
        let decoupled_hits = run_decoupled(&mut sim2, 20, &[&m]);
        assert_eq!(decoupled_hits[0], inline_hits);
        assert!(!inline_hits.is_empty());
    }

    #[test]
    fn batch_harness_agrees_with_online_harness() {
        let doc = handshake_doc();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        let req = doc.alphabet.lookup("req").unwrap();
        let ack = doc.alphabet.lookup("ack").unwrap();

        let build_sim = || {
            let mut sim = Simulation::new();
            sim.add_clock(ClockDomain::new("clk", 1, 0));
            sim.add_transactor(Box::new(PeriodicTransactor::new(
                "clk",
                vec![Valuation::of([req]), Valuation::of([ack])],
                1,
                0,
            )));
            sim
        };

        let mut sim = build_sim();
        let clocks = sim.clocks().clone();
        let mut online = OnlineHarness::new();
        online.attach(&clocks, &m);
        let run = sim.run(30);
        let steps: Vec<GlobalStep> = run.iter().cloned().collect();
        online.observe_batch(&clocks, &steps);

        let mut batch = BatchHarness::new();
        let idx = batch.attach(&clocks, &m);
        assert_eq!(batch.len(), 1);
        assert!(!batch.is_empty());
        // feed in uneven chunks: state must carry across chunk borders
        for chunk in steps.chunks(7) {
            batch.observe_batch(&clocks, chunk);
        }
        assert_eq!(batch.hits(idx), online.hits(0));
        assert!(!batch.hits(idx).is_empty());
    }

    #[test]
    fn batch_harness_multiple_domains() {
        let doc = parse_document(
            r#"
            scesc fastp on fast { instances { A } events { go } tick { A: go } }
            scesc slowp on slow { instances { B } events { done } tick { B: done } }
        "#,
        )
        .unwrap();
        let mf = synthesize(doc.chart("fastp").unwrap(), &SynthOptions::default()).unwrap();
        let ms = synthesize(doc.chart("slowp").unwrap(), &SynthOptions::default()).unwrap();
        let go = doc.alphabet.lookup("go").unwrap();
        let done = doc.alphabet.lookup("done").unwrap();

        let mut sim = Simulation::new();
        sim.add_clock(ClockDomain::new("fast", 1, 0));
        sim.add_clock(ClockDomain::new("slow", 2, 0));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "fast",
            vec![Valuation::of([go])],
            0,
            0,
        )));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "slow",
            vec![Valuation::of([done])],
            0,
            0,
        )));
        let clocks = sim.clocks().clone();
        let mut online = OnlineHarness::new();
        online.attach(&clocks, &mf);
        online.attach(&clocks, &ms);
        let mut batch = BatchHarness::new();
        let bf = batch.attach(&clocks, &mf);
        let bs = batch.attach(&clocks, &ms);

        let run = sim.run(12);
        let steps: Vec<GlobalStep> = run.iter().cloned().collect();
        online.observe_batch(&clocks, &steps);
        batch.observe_batch(&clocks, &steps);
        assert_eq!(batch.hits(bf), online.hits(0));
        assert_eq!(batch.hits(bs), online.hits(1));
        assert!(!batch.hits(bs).is_empty());
    }

    #[test]
    fn decoupled_batched_agrees_with_decoupled() {
        let doc = handshake_doc();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        let req = doc.alphabet.lookup("req").unwrap();
        let ack = doc.alphabet.lookup("ack").unwrap();

        let build_sim = || {
            let mut sim = Simulation::new();
            sim.add_clock(ClockDomain::new("clk", 1, 0));
            sim.add_transactor(Box::new(PeriodicTransactor::new(
                "clk",
                vec![Valuation::of([req]), Valuation::of([ack])],
                2,
                1,
            )));
            sim
        };

        let mut sim1 = build_sim();
        let reference = run_decoupled(&mut sim1, 40, &[&m]);
        let mut sim2 = build_sim();
        let batched = run_decoupled_batched(&mut sim2, 40, &[&m]);
        assert_eq!(batched, reference);
        assert!(!batched[0].is_empty());
    }

    #[test]
    fn multiclock_monitor_in_harness() {
        let doc = parse_document(
            r#"
            scesc m1 on clk1 { instances { A } events { go } tick { A: go } }
            scesc m2 on clk2 { instances { B } events { done } tick { B: done } }
            multiclock pair { charts { m1, m2 } cause go -> done; }
        "#,
        )
        .unwrap();
        let mm = synthesize_multiclock(doc.multiclock_spec("pair").unwrap(), &SynthOptions::default())
            .unwrap();
        let go = doc.alphabet.lookup("go").unwrap();
        let done = doc.alphabet.lookup("done").unwrap();

        let mut sim = Simulation::new();
        sim.add_clock(ClockDomain::new("clk1", 2, 0));
        sim.add_clock(ClockDomain::new("clk2", 3, 1));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk1",
            vec![Valuation::of([go])],
            9,
            0,
        )));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk2",
            vec![Valuation::of([done])],
            9,
            0,
        )));
        let mut harness = OnlineHarness::new();
        let idx = harness.attach_multiclock(&mm);
        sim.run_with(10, |c, s| harness.observe(c, s));
        // go at t0 (clk1 tick0), done at t1 (clk2 tick0) → pair at t1
        assert!(!harness.multiclock_hits(idx).is_empty());
        assert_eq!(harness.multiclock_hits(idx)[0], 1);
    }
}
