//! Online monitoring harnesses.
//!
//! Connects synthesized monitors to a running [`Simulation`]: either
//! *inline* (monitors stepped in the simulation loop) or *decoupled*
//! (simulation thread streams [`GlobalStep`]s over a channel to a
//! monitor thread — how checkers attach to a live simulator in
//! practice).

use cesc_core::{Monitor, MonitorExec, MultiClockMonitor};
use cesc_trace::{ClockSet, GlobalStep};
use crossbeam::channel;

/// Inline harness: single-clock monitors plus optional multi-clock
/// monitors, all stepped synchronously with the simulation.
#[derive(Debug)]
pub struct OnlineHarness<'m> {
    single: Vec<(usize, MonitorExec<'m>)>, // (clock index in ClockSet order, exec)
    single_hits: Vec<Vec<u64>>,
    multi: Vec<cesc_core::MultiClockExec<'m>>,
    multi_hits: Vec<Vec<u64>>,
}

impl<'m> OnlineHarness<'m> {
    /// Creates an empty harness.
    pub fn new() -> Self {
        OnlineHarness {
            single: Vec::new(),
            single_hits: Vec::new(),
            multi: Vec::new(),
            multi_hits: Vec::new(),
        }
    }

    /// Attaches a single-clock monitor; its [`Monitor::clock`] must name
    /// a domain of `clocks`.
    ///
    /// # Panics
    ///
    /// Panics if the monitor's clock is not in `clocks`.
    pub fn attach(&mut self, clocks: &ClockSet, monitor: &'m Monitor) -> usize {
        let clock = clocks
            .lookup(monitor.clock())
            .unwrap_or_else(|| panic!("monitor clock `{}` not in clock set", monitor.clock()));
        self.single.push((clock.index(), MonitorExec::new(monitor)));
        self.single_hits.push(Vec::new());
        self.single.len() - 1
    }

    /// Attaches a multi-clock monitor.
    pub fn attach_multiclock(&mut self, monitor: &'m MultiClockMonitor) -> usize {
        self.multi.push(monitor.executor());
        self.multi_hits.push(Vec::new());
        self.multi.len() - 1
    }

    /// Feeds one global step to every attached monitor.
    pub fn observe(&mut self, clocks: &ClockSet, step: &GlobalStep) {
        for (i, (clock_idx, exec)) in self.single.iter_mut().enumerate() {
            if let Some(v) = step
                .ticks
                .iter()
                .find(|(c, _)| c.index() == *clock_idx)
                .map(|&(_, v)| v)
            {
                if exec.step(v).matched {
                    self.single_hits[i].push(step.time);
                }
            }
        }
        for (i, exec) in self.multi.iter_mut().enumerate() {
            if exec.step_global(clocks, step) {
                self.multi_hits[i].push(step.time);
            }
        }
    }

    /// Global times at which single-clock monitor `idx` completed.
    pub fn hits(&self, idx: usize) -> &[u64] {
        &self.single_hits[idx]
    }

    /// Global times at which multi-clock monitor `idx` completed.
    pub fn multiclock_hits(&self, idx: usize) -> &[u64] {
        &self.multi_hits[idx]
    }
}

impl Default for OnlineHarness<'_> {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs monitors on a dedicated thread, receiving steps over a channel
/// from the simulation thread — the decoupled deployment of Fig 4's
/// "simulation environment" box.
///
/// Returns the completion times of each attached monitor once the
/// stream closes.
///
/// # Examples
///
/// ```
/// use cesc_chart::parse_document;
/// use cesc_core::{synthesize, SynthOptions};
/// use cesc_expr::Valuation;
/// use cesc_sim::{run_decoupled, PeriodicTransactor, Simulation};
/// use cesc_trace::ClockDomain;
///
/// let doc = parse_document(
///     "scesc p on clk { instances { M } events { x } tick { M: x } }",
/// ).unwrap();
/// let m = synthesize(doc.chart("p").unwrap(), &SynthOptions::default()).unwrap();
/// let x = doc.alphabet.lookup("x").unwrap();
///
/// let mut sim = Simulation::new();
/// sim.add_clock(ClockDomain::new("clk", 1, 0));
/// sim.add_transactor(Box::new(PeriodicTransactor::new(
///     "clk", vec![Valuation::of([x])], 1, 0,
/// )));
/// let hits = run_decoupled(&mut sim, 6, &[&m]);
/// assert_eq!(hits[0], vec![0, 2, 4]);
/// ```
pub fn run_decoupled(
    sim: &mut crate::kernel::Simulation,
    global_steps: usize,
    monitors: &[&Monitor],
) -> Vec<Vec<u64>> {
    let (tx, rx) = channel::bounded::<(GlobalStep, ())>(1024);
    let clocks = sim.clocks().clone();

    std::thread::scope(|scope| {
        let monitor_thread = scope.spawn(move || {
            let mut harness = OnlineHarness::new();
            for m in monitors {
                harness.attach(&clocks, m);
            }
            while let Ok((step, ())) = rx.recv() {
                harness.observe(&clocks, &step);
            }
            (0..monitors.len())
                .map(|i| harness.hits(i).to_vec())
                .collect::<Vec<_>>()
        });

        sim.run_with(global_steps, |_, step| {
            tx.send((step.clone(), ())).expect("monitor thread alive");
        });
        drop(tx);
        monitor_thread.join().expect("monitor thread panicked")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{PeriodicTransactor, Simulation};
    use cesc_chart::parse_document;
    use cesc_core::{synthesize, synthesize_multiclock, SynthOptions};
    use cesc_expr::Valuation;
    use cesc_trace::ClockDomain;

    fn handshake_doc() -> cesc_chart::Document {
        parse_document(
            r#"
            scesc hs on clk {
                instances { M, S }
                events { req, ack }
                tick { M: req }
                tick { S: ack }
                cause req -> ack;
            }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn inline_harness_detects_periodic_traffic() {
        let doc = handshake_doc();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        let req = doc.alphabet.lookup("req").unwrap();
        let ack = doc.alphabet.lookup("ack").unwrap();

        let mut sim = Simulation::new();
        let clocks_owned;
        sim.add_clock(ClockDomain::new("clk", 1, 0));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk",
            vec![Valuation::of([req]), Valuation::of([ack])],
            1,
            0,
        )));
        clocks_owned = sim.clocks().clone();
        let mut harness = OnlineHarness::new();
        let idx = harness.attach(&clocks_owned, &m);
        sim.run_with(9, |clocks, step| harness.observe(clocks, step));
        // windows complete at t=1, 4, 7
        assert_eq!(harness.hits(idx), &[1, 4, 7]);
    }

    #[test]
    fn decoupled_harness_agrees_with_inline() {
        let doc = handshake_doc();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        let req = doc.alphabet.lookup("req").unwrap();
        let ack = doc.alphabet.lookup("ack").unwrap();

        let build_sim = || {
            let mut sim = Simulation::new();
            sim.add_clock(ClockDomain::new("clk", 1, 0));
            sim.add_transactor(Box::new(PeriodicTransactor::new(
                "clk",
                vec![Valuation::of([req]), Valuation::of([ack])],
                2,
                1,
            )));
            sim
        };

        let mut sim = build_sim();
        let clocks = sim.clocks().clone();
        let mut harness = OnlineHarness::new();
        harness.attach(&clocks, &m);
        sim.run_with(20, |c, s| harness.observe(c, s));
        let inline_hits = harness.hits(0).to_vec();

        let mut sim2 = build_sim();
        let decoupled_hits = run_decoupled(&mut sim2, 20, &[&m]);
        assert_eq!(decoupled_hits[0], inline_hits);
        assert!(!inline_hits.is_empty());
    }

    #[test]
    fn multiclock_monitor_in_harness() {
        let doc = parse_document(
            r#"
            scesc m1 on clk1 { instances { A } events { go } tick { A: go } }
            scesc m2 on clk2 { instances { B } events { done } tick { B: done } }
            multiclock pair { charts { m1, m2 } cause go -> done; }
        "#,
        )
        .unwrap();
        let mm = synthesize_multiclock(doc.multiclock_spec("pair").unwrap(), &SynthOptions::default())
            .unwrap();
        let go = doc.alphabet.lookup("go").unwrap();
        let done = doc.alphabet.lookup("done").unwrap();

        let mut sim = Simulation::new();
        sim.add_clock(ClockDomain::new("clk1", 2, 0));
        sim.add_clock(ClockDomain::new("clk2", 3, 1));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk1",
            vec![Valuation::of([go])],
            9,
            0,
        )));
        sim.add_transactor(Box::new(PeriodicTransactor::new(
            "clk2",
            vec![Valuation::of([done])],
            9,
            0,
        )));
        let mut harness = OnlineHarness::new();
        let idx = harness.attach_multiclock(&mm);
        sim.run_with(10, |c, s| harness.observe(c, s));
        // go at t0 (clk1 tick0), done at t1 (clk2 tick0) → pair at t1
        assert!(!harness.multiclock_hits(idx).is_empty());
        assert_eq!(harness.multiclock_hits(idx)[0], 1);
    }
}
