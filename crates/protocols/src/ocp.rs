//! Open Core Protocol (OCP-IP) scenarios — the paper's §6 case study.
//!
//! * [`simple_read_doc`] — the simple read transaction of OCP v1.0
//!   p. 44, Figure 6 of the paper: request phase (`MCmd_rd`, `Addr`,
//!   `SCmd_accept`) followed by the response phase (`SResp`, `SData`),
//!   with the request/response causality arrow;
//! * [`burst_read_doc`] — the pipelined 4-beat burst read of OCP v1.0
//!   p. 49, Figure 7: four request beats (`Burst4..Burst1` count-down)
//!   overlapping four response beats two cycles behind, with
//!   occurrence-qualified causality arrows that reproduce the paper's
//!   scoreboard actions `act1..act8`.

use cesc_chart::{parse_document, Document};
use cesc_expr::{Alphabet, Valuation};

/// Figure 6: the OCP simple read chart, as a parsed document.
pub fn simple_read_doc() -> Document {
    parse_document(SIMPLE_READ_SRC).expect("built-in OCP simple read chart is well-formed")
}

/// Concrete textual source of the Figure 6 chart.
pub const SIMPLE_READ_SRC: &str = r#"
scesc ocp_simple_read on clk {
    instances { Master, Slave }
    events { MCmd_rd, Addr, SCmd_accept, SResp, SData }
    tick { Master: MCmd_rd, Addr; Slave: SCmd_accept }
    tick { Slave: SResp, SData }
    cause MCmd_rd -> SResp;
}
"#;

/// Figure 7: the OCP pipelined 4-beat burst read chart.
pub fn burst_read_doc() -> Document {
    parse_document(BURST_READ_SRC).expect("built-in OCP burst read chart is well-formed")
}

/// Concrete textual source of the Figure 7 chart.
///
/// Request beats carry the burst count-down (`Burst4..Burst1`); the
/// third request beat overlaps the first response beat. The
/// occurrence-qualified arrows make each response beat check the
/// matching request beat, reproducing the paper's `act1..act8`.
pub const BURST_READ_SRC: &str = r#"
scesc ocp_burst_read on clk {
    instances { Master, Slave }
    events { MCmdRd, Burst4, Burst3, Burst2, Burst1,
             Addr, SCmd_accept, SResp, SData }
    tick { Master: MCmdRd, Burst4, Addr; Slave: SCmd_accept }
    tick { Master: MCmdRd, Burst3, Addr }
    tick { Master: MCmdRd, Burst2, Addr; Slave: SResp, SData }
    tick { Master: MCmdRd, Burst1, Addr; Slave: SResp, SData }
    tick { Slave: SResp, SData }
    tick { Slave: SResp, SData }
    cause MCmdRd@0 -> SResp@2;
    cause MCmdRd@1 -> SResp@3;
    cause MCmdRd@2 -> SResp@4;
    cause MCmdRd@3 -> SResp@5;
    cause Burst4@0 -> SResp@2;
    cause Burst3@1 -> SResp@3;
    cause Burst2@2 -> SResp@4;
    cause Burst1@3 -> SResp@5;
}
"#;

/// Figure-6-companion: the OCP simple *write* transaction (request
/// carries the write command and data; the slave accepts in the same
/// cycle — no response phase for posted writes).
pub fn simple_write_doc() -> Document {
    parse_document(SIMPLE_WRITE_SRC).expect("built-in OCP simple write chart is well-formed")
}

/// Concrete textual source of the simple write chart.
pub const SIMPLE_WRITE_SRC: &str = r#"
scesc ocp_simple_write on clk {
    instances { Master, Slave }
    events { MCmd_wr, Addr, MData, SCmd_accept }
    tick { Master: MCmd_wr, Addr, MData; Slave: SCmd_accept }
}
"#;

/// A read request with wait states: the slave withholds
/// `SCmd_accept` for two cycles before accepting (OCP allows
/// arbitrary request-phase extension); response follows.
pub fn read_with_wait_states_doc() -> Document {
    parse_document(READ_WAIT_SRC).expect("built-in OCP wait-state chart is well-formed")
}

/// Concrete textual source of the wait-state read chart.
pub const READ_WAIT_SRC: &str = r#"
scesc ocp_read_wait on clk {
    instances { Master, Slave }
    events { MCmd_rd, Addr, SCmd_accept, SResp, SData }
    tick { Master: MCmd_rd, Addr; Slave: !SCmd_accept }
    tick { Master: MCmd_rd, Addr; Slave: !SCmd_accept }
    tick { Master: MCmd_rd, Addr; Slave: SCmd_accept }
    tick { Slave: SResp, SData }
    cause MCmd_rd@2 -> SResp@3;
}
"#;

/// The canonical compliant waveform of one simple write.
pub fn simple_write_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("OCP symbol interned");
    vec![Valuation::of([
        ev("MCmd_wr"),
        ev("Addr"),
        ev("MData"),
        ev("SCmd_accept"),
    ])]
}

/// The canonical compliant waveform of one wait-state read.
pub fn read_with_wait_states_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("OCP symbol interned");
    let req = Valuation::of([ev("MCmd_rd"), ev("Addr")]);
    vec![
        req,
        req,
        req.with(ev("SCmd_accept")),
        Valuation::of([ev("SResp"), ev("SData")]),
    ]
}

/// The canonical compliant waveform of one simple read transaction
/// (one valuation per cycle), per OCP v1.0 p. 44.
pub fn simple_read_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("OCP symbol interned");
    vec![
        Valuation::of([ev("MCmd_rd"), ev("Addr"), ev("SCmd_accept")]),
        Valuation::of([ev("SResp"), ev("SData")]),
    ]
}

/// The canonical compliant waveform of one pipelined 4-beat burst read,
/// per OCP v1.0 p. 49.
pub fn burst_read_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("OCP symbol interned");
    vec![
        Valuation::of([ev("MCmdRd"), ev("Burst4"), ev("Addr"), ev("SCmd_accept")]),
        Valuation::of([ev("MCmdRd"), ev("Burst3"), ev("Addr")]),
        Valuation::of([ev("MCmdRd"), ev("Burst2"), ev("Addr"), ev("SResp"), ev("SData")]),
        Valuation::of([ev("MCmdRd"), ev("Burst1"), ev("Addr"), ev("SResp"), ev("SData")]),
        Valuation::of([ev("SResp"), ev("SData")]),
        Valuation::of([ev("SResp"), ev("SData")]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_core::{synthesize, SynthOptions};
    use cesc_semantics::{contains_scenario, window_matches};
    use cesc_trace::Trace;

    #[test]
    fn fig6_chart_shape() {
        let doc = simple_read_doc();
        let c = doc.chart("ocp_simple_read").unwrap();
        assert_eq!(c.tick_count(), 2);
        assert_eq!(c.instances(), ["Master", "Slave"]);
        assert_eq!(c.arrows().len(), 1);
    }

    #[test]
    fn fig6_window_is_compliant() {
        let doc = simple_read_doc();
        let c = doc.chart("ocp_simple_read").unwrap();
        let w = simple_read_window(&doc.alphabet);
        assert!(window_matches(c, &w));
    }

    #[test]
    fn fig6_monitor_is_three_states() {
        let doc = simple_read_doc();
        let m = synthesize(doc.chart("ocp_simple_read").unwrap(), &SynthOptions::default())
            .unwrap();
        assert_eq!(m.state_count(), 3);
        let report = m.scan(simple_read_window(&doc.alphabet));
        assert_eq!(report.matches, vec![1]);
    }

    #[test]
    fn fig7_chart_shape() {
        let doc = burst_read_doc();
        let c = doc.chart("ocp_burst_read").unwrap();
        assert_eq!(c.tick_count(), 6);
        assert_eq!(c.arrows().len(), 8);
    }

    #[test]
    fn fig7_monitor_is_seven_states() {
        let doc = burst_read_doc();
        let m = synthesize(doc.chart("ocp_burst_read").unwrap(), &SynthOptions::default())
            .unwrap();
        assert_eq!(m.state_count(), 7);
        let report = m.scan(burst_read_window(&doc.alphabet));
        assert_eq!(report.matches, vec![5]);
        assert_eq!(report.underflows, 0);
    }

    #[test]
    fn fig7_response_without_request_rejected() {
        let doc = burst_read_doc();
        let c = doc.chart("ocp_burst_read").unwrap();
        let m = synthesize(c, &SynthOptions::default()).unwrap();
        // replay only the tail (responses) — Chk_evt guards must block
        let w = burst_read_window(&doc.alphabet);
        let tail = Trace::from_elements(w[2..].iter().copied());
        let report = m.scan(&tail);
        assert!(!report.detected());
        // yet the pure pattern suffix WOULD match without causality —
        // confirm via the oracle on a chart stripped of arrows
        let stripped = cesc_chart::parse_document(
            &BURST_READ_SRC
                .lines()
                .filter(|l| !l.trim_start().starts_with("cause"))
                .collect::<Vec<_>>()
                .join("\n"),
        )
        .unwrap();
        let _ = contains_scenario(stripped.chart("ocp_burst_read").unwrap(), &tail);
    }

    #[test]
    fn simple_write_single_cycle() {
        let doc = simple_write_doc();
        let c = doc.chart("ocp_simple_write").unwrap();
        let m = synthesize(c, &SynthOptions::default()).unwrap();
        assert_eq!(m.state_count(), 2);
        let w = simple_write_window(&doc.alphabet);
        assert!(window_matches(c, &w));
        assert_eq!(m.scan(w).matches, vec![0]);
    }

    #[test]
    fn wait_states_respected() {
        let doc = read_with_wait_states_doc();
        let c = doc.chart("ocp_read_wait").unwrap();
        let m = synthesize(c, &SynthOptions::default()).unwrap();
        assert_eq!(m.state_count(), 5);
        let w = read_with_wait_states_window(&doc.alphabet);
        assert!(window_matches(c, &w));
        let report = m.scan(w.clone());
        assert_eq!(report.matches, vec![3]);

        // accepting too early (SCmd_accept in cycle 0) violates the
        // chart's explicit absence constraint
        let acc = doc.alphabet.lookup("SCmd_accept").unwrap();
        let mut early = w;
        early[0].insert(acc);
        assert!(!m.scan(Trace::from_elements(early)).detected());
    }

    #[test]
    fn fig7_back_to_back_bursts() {
        let doc = burst_read_doc();
        let m = synthesize(doc.chart("ocp_burst_read").unwrap(), &SynthOptions::default())
            .unwrap();
        let w = burst_read_window(&doc.alphabet);
        let mut trace = Trace::new();
        for _ in 0..3 {
            trace.extend(w.iter().copied());
            trace.extend([Valuation::empty(); 2]);
        }
        let report = m.scan(&trace);
        assert_eq!(report.matches.len(), 3);
    }
}
