//! Wishbone (classic cycle) scenarios — `cyc`/`stb` frame the bus
//! cycle, the slave terminates each beat with `ack`, and
//! `dat_ok`/`dat_valid` stand for the data payload checks.
//!
//! * [`read_doc`] — a classic single read with one slave wait cycle
//!   (`ack` explicitly absent) before the acknowledged beat;
//! * [`write_doc`] — the same shape with `we` and the write data held
//!   through the cycle;
//! * [`block_read_doc`] — a 2-beat block read: `stb` held for two
//!   acknowledged beats, with a per-beat causality arrow.

use cesc_chart::{parse_document, Document};
use cesc_expr::{Alphabet, Valuation};

/// The Wishbone classic single read, as a parsed document.
pub fn read_doc() -> Document {
    parse_document(READ_SRC).expect("built-in Wishbone read chart is well-formed")
}

/// Concrete textual source of the read chart.
pub const READ_SRC: &str = r#"
scesc wb_read on wb_clk {
    instances { Master, Slave }
    events { cyc, stb, ack, dat_ok }
    tick { Master: cyc, stb; Slave: !ack }
    tick { Master: cyc, stb; Slave: ack, dat_ok }
    cause stb@0 -> ack;
}
"#;

/// The Wishbone classic single write, as a parsed document.
pub fn write_doc() -> Document {
    parse_document(WRITE_SRC).expect("built-in Wishbone write chart is well-formed")
}

/// Concrete textual source of the write chart.
pub const WRITE_SRC: &str = r#"
scesc wb_write on wb_clk {
    instances { Master, Slave }
    events { cyc, stb, we, dat_valid, ack }
    tick { Master: cyc, stb, we, dat_valid; Slave: !ack }
    tick { Master: cyc, stb, we, dat_valid; Slave: ack }
    cause stb@0 -> ack;
}
"#;

/// The 2-beat block read, as a parsed document.
pub fn block_read_doc() -> Document {
    parse_document(BLOCK_READ_SRC).expect("built-in Wishbone block read chart is well-formed")
}

/// Concrete textual source of the block read chart. Each beat is
/// acknowledged in its own cycle; the arrow ties the opening strobe to
/// the final acknowledge so a truncated block is caught.
pub const BLOCK_READ_SRC: &str = r#"
scesc wb_block_read on wb_clk {
    instances { Master, Slave }
    events { cyc, stb, ack, dat_ok }
    tick { Master: cyc, stb; Slave: ack, dat_ok }
    tick { Master: cyc, stb; Slave: ack, dat_ok }
    cause stb@0 -> ack@1;
}
"#;

/// The canonical compliant waveform of one single read.
pub fn read_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("Wishbone symbol interned");
    vec![
        Valuation::of([ev("cyc"), ev("stb")]),
        Valuation::of([ev("cyc"), ev("stb"), ev("ack"), ev("dat_ok")]),
    ]
}

/// The canonical compliant waveform of one single write.
pub fn write_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("Wishbone symbol interned");
    let req = Valuation::of([ev("cyc"), ev("stb"), ev("we"), ev("dat_valid")]);
    vec![req, req.with(ev("ack"))]
}

/// The canonical compliant waveform of one 2-beat block read.
pub fn block_read_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("Wishbone symbol interned");
    let beat = Valuation::of([ev("cyc"), ev("stb"), ev("ack"), ev("dat_ok")]);
    vec![beat, beat]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{inject, Fault};
    use crate::traffic::{transaction_stream, TrafficConfig};
    use cesc_core::{synthesize, SynthOptions};
    use cesc_semantics::window_matches;

    #[test]
    fn read_chart_shape() {
        let doc = read_doc();
        let c = doc.chart("wb_read").unwrap();
        assert_eq!(c.tick_count(), 2);
        assert_eq!(c.instances(), ["Master", "Slave"]);
        assert!(window_matches(c, &read_window(&doc.alphabet)));
    }

    #[test]
    fn premature_ack_is_rejected() {
        let doc = read_doc();
        let m = synthesize(doc.chart("wb_read").unwrap(), &SynthOptions::default()).unwrap();
        let mut w = read_window(&doc.alphabet);
        assert_eq!(m.scan(w.clone()).matches, vec![1]);
        // acking in the wait cycle violates the `!ack` constraint
        let ack = doc.alphabet.lookup("ack").unwrap();
        w[0].insert(ack);
        assert!(!m.scan(w).detected());
    }

    #[test]
    fn write_traffic_is_compliant() {
        let doc = write_doc();
        let w = write_window(&doc.alphabet);
        let cfg = TrafficConfig {
            transactions: 4,
            gap: 3,
            ..Default::default()
        };
        let t = transaction_stream(&doc.alphabet, &w, &cfg);
        let m = synthesize(doc.chart("wb_write").unwrap(), &SynthOptions::default()).unwrap();
        assert_eq!(m.scan(&t).matches.len(), 4);
    }

    #[test]
    fn truncated_block_is_caught() {
        let doc = block_read_doc();
        let c = doc.chart("wb_block_read").unwrap();
        let m = synthesize(c, &SynthOptions::default()).unwrap();
        let w = block_read_window(&doc.alphabet);
        assert!(window_matches(c, &w));
        let t = cesc_trace::Trace::from_elements(w);
        assert!(m.scan(&t).detected());

        // dropping the second-beat ack truncates the block
        let ack = doc.alphabet.lookup("ack").unwrap();
        let mutated = inject(
            &t,
            Fault::DropEvent {
                event: ack,
                occurrence: 1,
            },
        );
        assert!(!m.scan(&mutated).detected());
    }
}
