//! # cesc-protocols — OCP and AMBA case studies, traffic and faults
//!
//! The paper's §6 evaluation substrate, rebuilt:
//!
//! * [`ocp`] — OCP-IP simple read (Figure 6) and pipelined 4-beat burst
//!   read (Figure 7) charts with their canonical waveforms;
//! * [`amba`] — the AMBA AHB CLI transaction of Figure 8;
//! * [`readproto`] — the single- and multi-clock read protocols of
//!   Figures 1 and 2;
//! * [`traffic`] — compliant transaction streams (count / gap / noise
//!   sweeps) and simulation transactors;
//! * [`faults`] — drop / delay / spurious / reorder fault injection,
//!   producing the non-compliant traces a buggy DUT would emit.
//!
//! # Example
//!
//! ```
//! use cesc_core::{synthesize, SynthOptions};
//! use cesc_protocols::{ocp, traffic::{transaction_stream, TrafficConfig}};
//!
//! let doc = ocp::simple_read_doc();
//! let monitor = synthesize(doc.chart("ocp_simple_read").unwrap(), &SynthOptions::default())
//!     .unwrap();
//! let window = ocp::simple_read_window(&doc.alphabet);
//! let trace = transaction_stream(&doc.alphabet, &window, &TrafficConfig::default());
//! assert_eq!(monitor.scan(&trace).matches.len(), 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod amba;
pub mod faults;
pub mod ocp;
pub mod readproto;
pub mod traffic;
