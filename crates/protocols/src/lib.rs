//! # cesc-protocols — bus-protocol case studies, traffic and faults
//!
//! The paper's §6 evaluation substrate, rebuilt and extended:
//!
//! * [`ocp`] — OCP-IP simple read (Figure 6) and pipelined 4-beat burst
//!   read (Figure 7) charts with their canonical waveforms;
//! * [`amba`] — the AMBA AHB CLI transaction of Figure 8;
//! * [`axi4`] — AMBA AXI4-Lite single-beat read/write with wait
//!   states;
//! * [`apb`] — AMBA APB setup/access transfers with wait states;
//! * [`wishbone`] — Wishbone classic single and block cycles;
//! * [`readproto`] — the single- and multi-clock read protocols of
//!   Figures 1 and 2;
//! * [`traffic`] — compliant transaction streams (count / gap / noise
//!   sweeps) and simulation transactors;
//! * [`faults`] — drop / delay / spurious / reorder fault injection,
//!   producing the non-compliant traces a buggy DUT would emit.
//!
//! # Example
//!
//! ```
//! use cesc_core::{synthesize, SynthOptions};
//! use cesc_protocols::{ocp, traffic::{transaction_stream, TrafficConfig}};
//!
//! let doc = ocp::simple_read_doc();
//! let monitor = synthesize(doc.chart("ocp_simple_read").unwrap(), &SynthOptions::default())
//!     .unwrap();
//! let window = ocp::simple_read_window(&doc.alphabet);
//! let trace = transaction_stream(&doc.alphabet, &window, &TrafficConfig::default());
//! assert_eq!(monitor.scan(&trace).matches.len(), 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod amba;
pub mod apb;
pub mod axi4;
pub mod faults;
pub mod ocp;
pub mod readproto;
pub mod traffic;
pub mod wishbone;

use cesc_expr::{Alphabet, Valuation};

/// One named bus scenario from the AXI4-Lite / APB / Wishbone
/// libraries: the chart name, its declared clock, its textual source,
/// and the canonical compliant window builder — the registry the fuzz
/// campaigns and fleet benches sweep over.
#[derive(Debug, Clone, Copy)]
pub struct BusScenario {
    /// The chart's name (the `--chart` target).
    pub chart: &'static str,
    /// The chart's declared clock.
    pub clock: &'static str,
    /// The chart's textual CESC source.
    pub src: &'static str,
    /// Builds the canonical compliant waveform against any alphabet
    /// that interned the chart's events.
    pub window: fn(&Alphabet) -> Vec<Valuation>,
}

/// Every scenario of the three bus libraries, in document order of
/// [`bus_library_src`].
pub fn bus_scenarios() -> Vec<BusScenario> {
    vec![
        BusScenario {
            chart: "axi4_lite_read",
            clock: "aclk",
            src: axi4::READ_SRC,
            window: axi4::read_window,
        },
        BusScenario {
            chart: "axi4_lite_write",
            clock: "aclk",
            src: axi4::WRITE_SRC,
            window: axi4::write_window,
        },
        BusScenario {
            chart: "axi4_lite_read_wait",
            clock: "aclk",
            src: axi4::READ_WAIT_SRC,
            window: axi4::read_wait_window,
        },
        BusScenario {
            chart: "apb_read",
            clock: "pclk",
            src: apb::READ_SRC,
            window: apb::read_window,
        },
        BusScenario {
            chart: "apb_write",
            clock: "pclk",
            src: apb::WRITE_SRC,
            window: apb::write_window,
        },
        BusScenario {
            chart: "apb_read_wait",
            clock: "pclk",
            src: apb::READ_WAIT_SRC,
            window: apb::read_wait_window,
        },
        BusScenario {
            chart: "wb_read",
            clock: "wb_clk",
            src: wishbone::READ_SRC,
            window: wishbone::read_window,
        },
        BusScenario {
            chart: "wb_write",
            clock: "wb_clk",
            src: wishbone::WRITE_SRC,
            window: wishbone::write_window,
        },
        BusScenario {
            chart: "wb_block_read",
            clock: "wb_clk",
            src: wishbone::BLOCK_READ_SRC,
            window: wishbone::block_read_window,
        },
    ]
}

/// The library's `implies(...)` asserts: each wait-state / multi-beat
/// variant implies its single-beat base scenario, per bus. All three
/// antecedents carry `cause` arrows, so under the scoreboard-free
/// implication-checker semantics the antecedent can never complete and
/// `cesc prove` discharges each assert as PROVED (vacuous) — the
/// asserts exist to keep the prover, the fleet checker and the lint
/// semantic layer exercised on realistic compositions.
pub const BUS_ASSERTS_SRC: &str = "\
cesc axi4_lite_wait_gate { implies(axi4_lite_read_wait, axi4_lite_read) }\n\
cesc apb_wait_gate { implies(apb_read_wait, apb_read) }\n\
cesc wb_block_gate { implies(wb_block_read, wb_read) }\n";

/// The three bus libraries concatenated into one multi-chart document
/// — what `cesc check --all-charts` and the SpecSet coverage tests
/// load — followed by the [`BUS_ASSERTS_SRC`] `implies(...)` asserts.
/// Charts on the same bus share their event symbols; the combined
/// alphabet stays well under the 128-symbol budget.
///
/// The document carries a `// lint: allow(unbounded-counter)`
/// annotation: every bus chart re-`Add`s its request event on slides
/// and exits its accept state without a `Del`, so the request counts
/// are genuinely unbounded under default synthesis. That is a *true*
/// L010 finding — it is exactly the saturate-then-drain divergence the
/// RTL co-simulation oracle reproduces on pathological traffic — and
/// it is accepted here because the engine scoreboard is unbounded and
/// the emitted RTL counters saturate (never wrap), keeping `Chk_evt`
/// conservative.
pub fn bus_library_src() -> String {
    let charts = bus_scenarios()
        .iter()
        .map(|s| s.src)
        .collect::<Vec<_>>()
        .join("\n");
    format!(
        "// Bus protocol library: AXI4-Lite, APB, Wishbone.\n\
         // lint: allow(unbounded-counter) — request counts grow without bound under\n\
         // default synthesis (re-Add on slide, no Del on accept); saturating RTL\n\
         // counters keep Chk_evt conservative, so the charts ship as-is.\n\
         {charts}\n{BUS_ASSERTS_SRC}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_chart::parse_document;
    use cesc_core::{synthesize, SynthOptions};
    use cesc_semantics::window_matches;

    #[test]
    fn bus_library_parses_as_one_document() {
        let doc = parse_document(&bus_library_src()).unwrap();
        assert_eq!(doc.charts.len(), bus_scenarios().len());
        assert_eq!(doc.compositions.len(), 3, "one implies(...) assert per bus");
        assert!(doc.alphabet.len() <= 128);
    }

    #[test]
    fn every_scenario_window_is_compliant_in_the_combined_doc() {
        let doc = parse_document(&bus_library_src()).unwrap();
        for s in bus_scenarios() {
            let chart = doc.chart(s.chart).unwrap();
            assert_eq!(chart.clock(), s.clock, "{}", s.chart);
            let w = (s.window)(&doc.alphabet);
            assert!(window_matches(chart, &w), "{} window rejected", s.chart);
            let m = synthesize(chart, &SynthOptions::default()).unwrap();
            assert!(m.scan(w).detected(), "{} monitor missed its window", s.chart);
        }
    }
}
