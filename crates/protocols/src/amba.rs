//! AMBA AHB Cycle-Level-Interface scenarios — Figure 8 of the paper
//! (AHB CLI spec p. 23: a master/bus write transaction sequence).
//!
//! The chart's ten events map to the CLI calls the figure numbers 1–10:
//! `init_transaction`, `master_complete`, `get_slave`, `write`,
//! `control_info`, `master_set_data`, `master_complete` (again),
//! `bus_set_data`, `bus_response`, `master_response`. Arrows
//! `init_transaction → master_set_data` and `master_set_data →
//! master_response` give the monitor its `Add_evt(1)` / `Add_evt(6)` /
//! `Chk_evt` bookkeeping exactly as printed.

use cesc_chart::{parse_document, Document};
use cesc_expr::{Alphabet, Valuation};

/// Figure 8: the AMBA AHB CLI transaction chart, as a parsed document.
pub fn ahb_transaction_doc() -> Document {
    parse_document(AHB_TRANSACTION_SRC).expect("built-in AHB chart is well-formed")
}

/// Concrete textual source of the Figure 8 chart.
pub const AHB_TRANSACTION_SRC: &str = r#"
scesc ahb_transaction on clk {
    instances { Master, Bus }
    events { init_transaction, master_complete, get_slave, write, control_info,
             master_set_data, bus_set_data, bus_response, master_response }
    tick { Master: init_transaction, master_complete;
           Bus: get_slave, write, control_info }
    tick { Master: master_set_data, master_complete;
           Bus: bus_set_data, bus_response }
    tick { Master: master_response }
    cause init_transaction -> master_set_data;
    cause master_set_data -> master_response;
}
"#;

/// The canonical compliant waveform of one AHB CLI write transaction.
pub fn ahb_transaction_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("AHB symbol interned");
    vec![
        Valuation::of([
            ev("init_transaction"),
            ev("master_complete"),
            ev("get_slave"),
            ev("write"),
            ev("control_info"),
        ]),
        Valuation::of([
            ev("master_set_data"),
            ev("master_complete"),
            ev("bus_set_data"),
            ev("bus_response"),
        ]),
        Valuation::of([ev("master_response")]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_core::{synthesize, Action, StateId, SynthOptions};
    use cesc_semantics::window_matches;
    use cesc_trace::Trace;

    #[test]
    fn fig8_chart_shape() {
        let doc = ahb_transaction_doc();
        let c = doc.chart("ahb_transaction").unwrap();
        assert_eq!(c.tick_count(), 3);
        assert_eq!(c.instances(), ["Master", "Bus"]);
        assert_eq!(c.arrows().len(), 2);
    }

    #[test]
    fn fig8_monitor_is_four_states() {
        let doc = ahb_transaction_doc();
        let m = synthesize(doc.chart("ahb_transaction").unwrap(), &SynthOptions::default())
            .unwrap();
        assert_eq!(m.state_count(), 4);
        // transition 0→1 carries Add_evt(init_transaction) — the paper's
        // `a / Add_evt(1)`
        let init = doc.alphabet.lookup("init_transaction").unwrap();
        let msd = doc.alphabet.lookup("master_set_data").unwrap();
        let t01 = &m.transitions_from(StateId::from_index(0))[0];
        assert!(t01
            .actions
            .iter()
            .any(|a| matches!(a, Action::AddEvt(es) if es.contains(&init))));
        // 1→2 carries Add_evt(master_set_data) and Chk_evt(init) —
        // `b / Add_evt(6)` with `Chk_evt(1)`
        let t12 = m
            .transitions_from(StateId::from_index(1))
            .iter()
            .find(|t| t.target == StateId::from_index(2))
            .unwrap();
        assert!(t12.guard.chk_targets().contains(init));
        assert!(t12
            .actions
            .iter()
            .any(|a| matches!(a, Action::AddEvt(es) if es.contains(&msd))));
        // 2→3 guarded by Chk_evt(master_set_data) — `d = (10 ∧ Chk(6))`
        let t23 = m
            .transitions_from(StateId::from_index(2))
            .iter()
            .find(|t| t.target == StateId::from_index(3))
            .unwrap();
        assert!(t23.guard.chk_targets().contains(msd));
    }

    #[test]
    fn fig8_backward_transitions_delete_both_events() {
        let doc = ahb_transaction_doc();
        let m = synthesize(doc.chart("ahb_transaction").unwrap(), &SynthOptions::default())
            .unwrap();
        let init = doc.alphabet.lookup("init_transaction").unwrap();
        let msd = doc.alphabet.lookup("master_set_data").unwrap();
        // the paper's `e / (Del_evt(1), Del_evt(6))` from state 2
        let back = m
            .transitions_from(StateId::from_index(2))
            .iter()
            .find(|t| t.target == StateId::from_index(0))
            .unwrap();
        let dels: Vec<_> = back
            .actions
            .iter()
            .filter_map(|a| match a {
                Action::DelEvt(es) => Some(es.clone()),
                _ => None,
            })
            .flatten()
            .collect();
        assert!(dels.contains(&init));
        assert!(dels.contains(&msd));
    }

    #[test]
    fn fig8_detects_compliant_transaction() {
        let doc = ahb_transaction_doc();
        let c = doc.chart("ahb_transaction").unwrap();
        let m = synthesize(c, &SynthOptions::default()).unwrap();
        let w = ahb_transaction_window(&doc.alphabet);
        assert!(window_matches(c, &w));
        let report = m.scan(w);
        assert_eq!(report.matches, vec![2]);
        assert_eq!(report.underflows, 0);
    }

    #[test]
    fn fig8_missing_data_phase_rejected() {
        let doc = ahb_transaction_doc();
        let m = synthesize(doc.chart("ahb_transaction").unwrap(), &SynthOptions::default())
            .unwrap();
        let mut w = ahb_transaction_window(&doc.alphabet);
        // drop master_set_data from the data phase
        let msd = doc.alphabet.lookup("master_set_data").unwrap();
        w[1].remove(msd);
        let report = m.scan(Trace::from_elements(w));
        assert!(!report.detected());
    }
}
