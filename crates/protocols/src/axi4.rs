//! AMBA AXI4-Lite scenarios — single-beat read and write transactions
//! over the five AXI4-Lite channels, reduced to the event-per-wire
//! abstraction the charts use (a `*valid`/`*ready` pair occurring in
//! the same tick is a completed handshake; `rdata_ok`/`bresp_okay`
//! stand for the data/response payload checks a DUT scoreboard would
//! perform).
//!
//! * [`read_doc`] — AR handshake followed by the R-channel beat, with
//!   the address/data causality arrow;
//! * [`write_doc`] — combined AW+W handshake followed by the B-channel
//!   response, with both request arrows feeding the response;
//! * [`read_wait_doc`] — a slave wait state on the R channel: `rvalid`
//!   is explicitly absent for one cycle while the master holds
//!   `rready` high.

use cesc_chart::{parse_document, Document};
use cesc_expr::{Alphabet, Valuation};

/// The AXI4-Lite single-beat read transaction, as a parsed document.
pub fn read_doc() -> Document {
    parse_document(READ_SRC).expect("built-in AXI4-Lite read chart is well-formed")
}

/// Concrete textual source of the read chart.
pub const READ_SRC: &str = r#"
scesc axi4_lite_read on aclk {
    instances { Master, Slave }
    events { arvalid, arready, rvalid, rready, rdata_ok }
    tick { Master: arvalid; Slave: arready }
    tick { Slave: rvalid, rdata_ok; Master: rready }
    cause arvalid -> rvalid;
}
"#;

/// The AXI4-Lite single-beat write transaction, as a parsed document.
pub fn write_doc() -> Document {
    parse_document(WRITE_SRC).expect("built-in AXI4-Lite write chart is well-formed")
}

/// Concrete textual source of the write chart. AXI4-Lite permits the
/// AW and W handshakes in the same cycle; the B response follows, and
/// both request channels must causally precede it.
pub const WRITE_SRC: &str = r#"
scesc axi4_lite_write on aclk {
    instances { Master, Slave }
    events { awvalid, awready, wvalid, wready, bvalid, bready, bresp_okay }
    tick { Master: awvalid, wvalid; Slave: awready, wready }
    tick { Slave: bvalid, bresp_okay; Master: bready }
    cause awvalid -> bvalid;
    cause wvalid -> bvalid;
}
"#;

/// A read with one slave wait state on the R channel.
pub fn read_wait_doc() -> Document {
    parse_document(READ_WAIT_SRC).expect("built-in AXI4-Lite wait-state chart is well-formed")
}

/// Concrete textual source of the wait-state read chart.
pub const READ_WAIT_SRC: &str = r#"
scesc axi4_lite_read_wait on aclk {
    instances { Master, Slave }
    events { arvalid, arready, rvalid, rready, rdata_ok }
    tick { Master: arvalid; Slave: arready }
    tick { Master: rready; Slave: !rvalid }
    tick { Master: rready; Slave: rvalid, rdata_ok }
    cause arvalid@0 -> rvalid@2;
}
"#;

/// The canonical compliant waveform of one read transaction.
pub fn read_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("AXI4-Lite symbol interned");
    vec![
        Valuation::of([ev("arvalid"), ev("arready")]),
        Valuation::of([ev("rvalid"), ev("rdata_ok"), ev("rready")]),
    ]
}

/// The canonical compliant waveform of one write transaction.
pub fn write_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("AXI4-Lite symbol interned");
    vec![
        Valuation::of([ev("awvalid"), ev("wvalid"), ev("awready"), ev("wready")]),
        Valuation::of([ev("bvalid"), ev("bresp_okay"), ev("bready")]),
    ]
}

/// The canonical compliant waveform of one wait-state read.
pub fn read_wait_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("AXI4-Lite symbol interned");
    vec![
        Valuation::of([ev("arvalid"), ev("arready")]),
        Valuation::of([ev("rready")]),
        Valuation::of([ev("rready"), ev("rvalid"), ev("rdata_ok")]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{fault_set, inject};
    use crate::traffic::{transaction_stream, TrafficConfig};
    use cesc_core::{synthesize, SynthOptions};
    use cesc_semantics::window_matches;

    #[test]
    fn read_chart_shape() {
        let doc = read_doc();
        let c = doc.chart("axi4_lite_read").unwrap();
        assert_eq!(c.tick_count(), 2);
        assert_eq!(c.instances(), ["Master", "Slave"]);
        assert_eq!(c.arrows().len(), 1);
        assert!(window_matches(c, &read_window(&doc.alphabet)));
    }

    #[test]
    fn write_chart_detects_transaction() {
        let doc = write_doc();
        let c = doc.chart("axi4_lite_write").unwrap();
        let m = synthesize(c, &SynthOptions::default()).unwrap();
        assert_eq!(m.state_count(), c.tick_count() + 1);
        let report = m.scan(write_window(&doc.alphabet));
        assert_eq!(report.matches, vec![1]);
        assert_eq!(report.underflows, 0);
    }

    #[test]
    fn wait_state_absence_is_enforced() {
        let doc = read_wait_doc();
        let c = doc.chart("axi4_lite_read_wait").unwrap();
        let m = synthesize(c, &SynthOptions::default()).unwrap();
        let w = read_wait_window(&doc.alphabet);
        assert!(window_matches(c, &w));
        assert_eq!(m.scan(w.clone()).matches, vec![2]);

        // answering in the wait cycle violates the explicit `!rvalid`
        let rvalid = doc.alphabet.lookup("rvalid").unwrap();
        let mut early = w;
        early[1].insert(rvalid);
        assert!(!m.scan(early).detected());
    }

    #[test]
    fn traffic_stream_is_compliant() {
        let doc = read_doc();
        let w = read_window(&doc.alphabet);
        let cfg = TrafficConfig {
            transactions: 6,
            gap: 2,
            ..Default::default()
        };
        let t = transaction_stream(&doc.alphabet, &w, &cfg);
        let m = synthesize(doc.chart("axi4_lite_read").unwrap(), &SynthOptions::default())
            .unwrap();
        assert_eq!(m.scan(&t).matches.len(), 6);
    }

    #[test]
    fn dropped_response_is_caught() {
        let doc = read_doc();
        let w = read_window(&doc.alphabet);
        let cfg = TrafficConfig {
            transactions: 1,
            gap: 0,
            ..Default::default()
        };
        let t = transaction_stream(&doc.alphabet, &w, &cfg);
        let rvalid = doc.alphabet.lookup("rvalid").unwrap();
        let m = synthesize(doc.chart("axi4_lite_read").unwrap(), &SynthOptions::default())
            .unwrap();
        let drops: Vec<_> = fault_set(&t, &[rvalid])
            .into_iter()
            .filter(|f| matches!(f, crate::faults::Fault::DropEvent { .. }))
            .collect();
        assert!(!drops.is_empty());
        for f in drops {
            let mutated = inject(&t, f);
            assert_ne!(mutated, t);
            assert!(!m.scan(&mutated).detected(), "fault {f:?} went undetected");
        }
    }
}
