//! AMBA APB scenarios — the two-phase (setup → access) peripheral bus,
//! in the event-per-wire abstraction: `psel`/`penable` drive the state
//! machine, `pready` completes the access phase, and
//! `prdata_ok`/`pwdata_ok` stand for the payload checks.
//!
//! * [`read_doc`] — setup cycle (`psel`, `penable` absent) then a
//!   zero-wait access cycle completed by `pready`;
//! * [`write_doc`] — the same two phases with `pwrite` and the write
//!   payload asserted throughout;
//! * [`read_wait_doc`] — a slave wait state: the access phase extends
//!   one cycle with `pready` explicitly absent.

use cesc_chart::{parse_document, Document};
use cesc_expr::{Alphabet, Valuation};

/// The APB read transfer, as a parsed document.
pub fn read_doc() -> Document {
    parse_document(READ_SRC).expect("built-in APB read chart is well-formed")
}

/// Concrete textual source of the read chart. The setup cycle requires
/// `penable` *absent* — asserting it early is the classic APB bug.
pub const READ_SRC: &str = r#"
scesc apb_read on pclk {
    instances { Master, Slave }
    events { psel, penable, pready, prdata_ok }
    tick { Master: psel, !penable }
    tick { Master: psel, penable; Slave: pready, prdata_ok }
    cause psel@0 -> pready;
}
"#;

/// The APB write transfer, as a parsed document.
pub fn write_doc() -> Document {
    parse_document(WRITE_SRC).expect("built-in APB write chart is well-formed")
}

/// Concrete textual source of the write chart.
pub const WRITE_SRC: &str = r#"
scesc apb_write on pclk {
    instances { Master, Slave }
    events { psel, penable, pwrite, pwdata_ok, pready }
    tick { Master: psel, pwrite, pwdata_ok, !penable }
    tick { Master: psel, pwrite, pwdata_ok, penable; Slave: pready }
    cause psel@0 -> pready;
}
"#;

/// A read with one slave wait state in the access phase.
pub fn read_wait_doc() -> Document {
    parse_document(READ_WAIT_SRC).expect("built-in APB wait-state chart is well-formed")
}

/// Concrete textual source of the wait-state read chart.
pub const READ_WAIT_SRC: &str = r#"
scesc apb_read_wait on pclk {
    instances { Master, Slave }
    events { psel, penable, pready, prdata_ok }
    tick { Master: psel, !penable }
    tick { Master: psel, penable; Slave: !pready }
    tick { Master: psel, penable; Slave: pready, prdata_ok }
    cause psel@0 -> pready;
}
"#;

/// The canonical compliant waveform of one read transfer.
pub fn read_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("APB symbol interned");
    vec![
        Valuation::of([ev("psel")]),
        Valuation::of([ev("psel"), ev("penable"), ev("pready"), ev("prdata_ok")]),
    ]
}

/// The canonical compliant waveform of one write transfer.
pub fn write_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("APB symbol interned");
    vec![
        Valuation::of([ev("psel"), ev("pwrite"), ev("pwdata_ok")]),
        Valuation::of([
            ev("psel"),
            ev("pwrite"),
            ev("pwdata_ok"),
            ev("penable"),
            ev("pready"),
        ]),
    ]
}

/// The canonical compliant waveform of one wait-state read.
pub fn read_wait_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("APB symbol interned");
    vec![
        Valuation::of([ev("psel")]),
        Valuation::of([ev("psel"), ev("penable")]),
        Valuation::of([ev("psel"), ev("penable"), ev("pready"), ev("prdata_ok")]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{inject, Fault};
    use crate::traffic::{transaction_stream, TrafficConfig};
    use cesc_core::{synthesize, SynthOptions};
    use cesc_semantics::window_matches;

    #[test]
    fn read_chart_shape() {
        let doc = read_doc();
        let c = doc.chart("apb_read").unwrap();
        assert_eq!(c.tick_count(), 2);
        assert_eq!(c.arrows().len(), 1);
        assert!(window_matches(c, &read_window(&doc.alphabet)));
    }

    #[test]
    fn early_penable_is_rejected() {
        let doc = read_doc();
        let m = synthesize(doc.chart("apb_read").unwrap(), &SynthOptions::default()).unwrap();
        let mut w = read_window(&doc.alphabet);
        assert_eq!(m.scan(w.clone()).matches, vec![1]);
        // penable during setup violates the chart's `!penable`
        let penable = doc.alphabet.lookup("penable").unwrap();
        w[0].insert(penable);
        assert!(!m.scan(w).detected());
    }

    #[test]
    fn write_traffic_is_compliant() {
        let doc = write_doc();
        let w = write_window(&doc.alphabet);
        let cfg = TrafficConfig {
            transactions: 5,
            gap: 1,
            ..Default::default()
        };
        let t = transaction_stream(&doc.alphabet, &w, &cfg);
        let m = synthesize(doc.chart("apb_write").unwrap(), &SynthOptions::default()).unwrap();
        assert_eq!(m.scan(&t).matches.len(), 5);
    }

    #[test]
    fn wait_state_window_matches_and_fault_is_caught() {
        let doc = read_wait_doc();
        let c = doc.chart("apb_read_wait").unwrap();
        let m = synthesize(c, &SynthOptions::default()).unwrap();
        let w = read_wait_window(&doc.alphabet);
        assert!(window_matches(c, &w));
        let t = cesc_trace::Trace::from_elements(w);
        assert!(m.scan(&t).detected());

        // dropping the completing pready leaves the access phase open
        let pready = doc.alphabet.lookup("pready").unwrap();
        let mutated = inject(
            &t,
            Fault::DropEvent {
                event: pready,
                occurrence: 0,
            },
        );
        assert!(!m.scan(&mutated).detected());
    }
}
