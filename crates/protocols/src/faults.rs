//! Fault injection: turning compliant traffic into the non-compliant
//! traffic a buggy DUT would produce.
//!
//! The paper motivates synthesized monitors by the error-proneness of
//! manual checkers; these injectors are how the test-suite and the
//! `causality_ablation` benchmark demonstrate that the synthesized
//! monitors (and specifically their scoreboard causality checks) catch
//! realistic protocol bugs: dropped events, delayed responses,
//! responses without requests, reordered phases.

use cesc_expr::{SymbolId, Valuation};
use cesc_trace::Trace;

/// A protocol fault to inject into a compliant trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Remove the `occurrence`-th occurrence of `event` (0-based).
    DropEvent {
        /// The event to drop.
        event: SymbolId,
        /// Which occurrence (0-based).
        occurrence: usize,
    },
    /// Move the `occurrence`-th occurrence of `event` `by` ticks later
    /// (clamped to the trace end).
    DelayEvent {
        /// The event to delay.
        event: SymbolId,
        /// Which occurrence (0-based).
        occurrence: usize,
        /// Delay in ticks.
        by: usize,
    },
    /// Inject a spurious occurrence of `event` at `tick`.
    SpuriousEvent {
        /// The event to inject.
        event: SymbolId,
        /// Where to inject it.
        tick: usize,
    },
    /// Swap the contents of two ticks (phase reordering).
    SwapTicks {
        /// First tick.
        a: usize,
        /// Second tick.
        b: usize,
    },
}

/// Applies a fault to a copy of `trace`.
///
/// Injectors are best-effort: faults referencing occurrences or ticks
/// beyond the trace leave it unchanged (callers assert on the monitor
/// verdict, not on the mutation).
pub fn inject(trace: &Trace, fault: Fault) -> Trace {
    let mut elems: Vec<Valuation> = trace.iter().collect();
    match fault {
        Fault::DropEvent { event, occurrence } => {
            if let Some(tick) = nth_occurrence(trace, event, occurrence) {
                elems[tick].remove(event);
            }
        }
        Fault::DelayEvent {
            event,
            occurrence,
            by,
        } => {
            if let Some(tick) = nth_occurrence(trace, event, occurrence) {
                elems[tick].remove(event);
                let target = (tick + by).min(elems.len().saturating_sub(1));
                elems[target].insert(event);
            }
        }
        Fault::SpuriousEvent { event, tick } => {
            if tick < elems.len() {
                elems[tick].insert(event);
            }
        }
        Fault::SwapTicks { a, b } => {
            if a < elems.len() && b < elems.len() {
                elems.swap(a, b);
            }
        }
    }
    Trace::from_elements(elems)
}

fn nth_occurrence(trace: &Trace, event: SymbolId, occurrence: usize) -> Option<usize> {
    trace.ticks_where(event).into_iter().nth(occurrence)
}

/// All single-event fault variants for a given trace: every occurrence
/// of every listed event dropped, delayed by one, or duplicated one
/// tick early — the mutation set used by exhaustive fault-coverage
/// tests.
pub fn fault_set(trace: &Trace, events: &[SymbolId]) -> Vec<Fault> {
    let mut faults = Vec::new();
    for &e in events {
        for (occ, &tick) in trace.ticks_where(e).iter().enumerate() {
            faults.push(Fault::DropEvent {
                event: e,
                occurrence: occ,
            });
            faults.push(Fault::DelayEvent {
                event: e,
                occurrence: occ,
                by: 1,
            });
            if tick > 0 {
                faults.push(Fault::SpuriousEvent {
                    event: e,
                    tick: tick - 1,
                });
            }
        }
    }
    faults
}

/// Every *effective* single-fault mutation of a compliant trace,
/// paired with the fault that produced it — [`fault_set`] with the
/// out-of-range no-ops filtered out, so callers can assert every
/// returned variant actually perturbed the traffic. This is the
/// mutation sweep the bus fuzz campaigns replay through `cesc check`.
pub fn fault_variants(trace: &Trace, events: &[SymbolId]) -> Vec<(Fault, Trace)> {
    fault_set(trace, events)
        .into_iter()
        .map(|f| (f, inject(trace, f)))
        .filter(|(_, mutated)| mutated != trace)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_expr::Alphabet;

    fn setup() -> (Alphabet, SymbolId, SymbolId, Trace) {
        let mut ab = Alphabet::new();
        let a = ab.event("a");
        let b = ab.event("b");
        let t = Trace::from_elements([
            Valuation::of([a]),
            Valuation::of([b]),
            Valuation::of([a, b]),
        ]);
        (ab, a, b, t)
    }

    #[test]
    fn drop_removes_right_occurrence() {
        let (_, a, _, t) = setup();
        let t2 = inject(&t, Fault::DropEvent { event: a, occurrence: 1 });
        assert!(t2[0].contains(a));
        assert!(!t2[2].contains(a));
    }

    #[test]
    fn delay_moves_event() {
        let (_, a, b, t) = setup();
        let t2 = inject(
            &t,
            Fault::DelayEvent {
                event: a,
                occurrence: 0,
                by: 1,
            },
        );
        assert!(!t2[0].contains(a));
        assert!(t2[1].contains(a) && t2[1].contains(b));
    }

    #[test]
    fn delay_clamps_to_end() {
        let (_, a, _, t) = setup();
        let t2 = inject(
            &t,
            Fault::DelayEvent {
                event: a,
                occurrence: 1,
                by: 100,
            },
        );
        assert!(t2[2].contains(a)); // clamped in place
    }

    #[test]
    fn spurious_and_swap() {
        let (_, a, b, t) = setup();
        let t2 = inject(&t, Fault::SpuriousEvent { event: b, tick: 0 });
        assert!(t2[0].contains(b));
        let t3 = inject(&t, Fault::SwapTicks { a: 0, b: 1 });
        assert!(t3[0].contains(b) && !t3[0].contains(a));
        assert!(t3[1].contains(a));
    }

    #[test]
    fn out_of_range_faults_are_noops() {
        let (_, a, _, t) = setup();
        assert_eq!(inject(&t, Fault::DropEvent { event: a, occurrence: 9 }), t);
        assert_eq!(inject(&t, Fault::SpuriousEvent { event: a, tick: 99 }), t);
        assert_eq!(inject(&t, Fault::SwapTicks { a: 0, b: 99 }), t);
    }

    #[test]
    fn fault_variants_are_all_effective() {
        let (_, a, b, t) = setup();
        for (f, mutated) in fault_variants(&t, &[a, b]) {
            assert_ne!(mutated, t, "{f:?} should have perturbed the trace");
        }
    }

    #[test]
    fn fault_set_enumerates_mutations() {
        let (_, a, b, t) = setup();
        let faults = fault_set(&t, &[a, b]);
        // a: 2 occurrences × (drop, delay) + spurious@1 (tick2>0) = 5
        // b: 2 occurrences × 2 + spurious@0? b occurs at 1,2 → spurious at 0 and 1 = 6
        assert!(faults.len() >= 10);
        assert!(faults.contains(&Fault::DropEvent { event: a, occurrence: 0 }));
    }
}
