//! The read-protocol scenarios of Figures 1 and 2.
//!
//! Figure 1: a typical read protocol within one clock domain — master
//! drives `req1/rd1/addr1`, the slave-side controller mirrors them as
//! `req2/rd2/addr2`, then signals `rdy1` (environment `rdy_done`) and
//! `data1` (environment `data_done`).
//!
//! Figure 2: the same protocol split across two clock domains, with the
//! S_CNT/M_CNT controllers bridging them; cross-domain causality ties
//! the `clk1` request to the `clk2` request and the `clk2` data back to
//! the `clk1` data — the scenario the paper's distributed
//! scoreboard-synchronised monitors exist for.

use cesc_chart::{parse_document, Document};
use cesc_expr::{Alphabet, Valuation};

/// Figure 1: the single-clock read protocol, as a parsed document.
pub fn single_clock_doc() -> Document {
    parse_document(SINGLE_CLOCK_SRC).expect("built-in Fig 1 chart is well-formed")
}

/// Concrete textual source of the Figure 1 chart.
pub const SINGLE_CLOCK_SRC: &str = r#"
scesc read_protocol on clk1 {
    instances { Master, S_CNT }
    events { req1, rd1, addr1, req2, rd2, addr2, rdy1, data1, rdy_done, data_done }
    tick { Master: req1, rd1, addr1; S_CNT: req2, rd2, addr2 }
    tick { S_CNT: rdy1; env: rdy_done }
    tick { S_CNT: data1; env: data_done }
    cause req1 -> rdy1;
    cause rdy1 -> data1;
}
"#;

/// Figure 2: the multi-clock read protocol (charts `m1` on `clk1`,
/// `m2` on `clk2`, spec `read_multiclock` with cross-domain arrows).
pub fn multi_clock_doc() -> Document {
    parse_document(MULTI_CLOCK_SRC).expect("built-in Fig 2 spec is well-formed")
}

/// Concrete textual source of the Figure 2 specification.
pub const MULTI_CLOCK_SRC: &str = r#"
scesc m1 on clk1 {
    instances { Master, S_CNT }
    events { req1, rd1, addr1, req2, rd2, addr2, rdy1, data1, rdy_done, data_done }
    tick { Master: req1, rd1, addr1; S_CNT: req2, rd2, addr2 }
    tick { S_CNT: rdy1; env: rdy_done }
    tick { S_CNT: data1; env: data_done }
    cause req1 -> rdy1;
    cause rdy1 -> data1;
}
scesc m2 on clk2 {
    instances { M_CNT, Slave }
    events { req3, rd3, addr3, rdy2, rdy3, data2, data3 }
    tick { M_CNT: req3, rd3, addr3 }
    tick { Slave: rdy3; M_CNT: rdy2 }
    tick { Slave: data3; M_CNT: data2 }
    cause req3 -> rdy3;
}
multiclock read_multiclock {
    charts { m1, m2 }
    cause req2 -> req3;
    cause rdy2 -> rdy1;
    cause data2 -> data1;
}
"#;

/// The canonical compliant waveform for the Figure 1 chart.
pub fn single_clock_window(alphabet: &Alphabet) -> Vec<Valuation> {
    let ev = |n: &str| alphabet.lookup(n).expect("read-protocol symbol interned");
    vec![
        Valuation::of([
            ev("req1"),
            ev("rd1"),
            ev("addr1"),
            ev("req2"),
            ev("rd2"),
            ev("addr2"),
        ]),
        Valuation::of([ev("rdy1"), ev("rdy_done")]),
        Valuation::of([ev("data1"), ev("data_done")]),
    ]
}

/// Canonical compliant per-domain waveforms for the Figure 2 spec:
/// `(clk1 trace, clk2 trace)`. Feasible whenever `clk2` completes its
/// window between `clk1`'s first and last tick (e.g. clk1 period 5,
/// clk2 period 2 phase 1).
pub fn multi_clock_windows(alphabet: &Alphabet) -> (Vec<Valuation>, Vec<Valuation>) {
    let ev = |n: &str| alphabet.lookup(n).expect("read-protocol symbol interned");
    let clk1 = vec![
        Valuation::of([
            ev("req1"),
            ev("rd1"),
            ev("addr1"),
            ev("req2"),
            ev("rd2"),
            ev("addr2"),
        ]),
        Valuation::of([ev("rdy1"), ev("rdy_done")]),
        Valuation::of([ev("data1"), ev("data_done")]),
    ];
    let clk2 = vec![
        Valuation::of([ev("req3"), ev("rd3"), ev("addr3")]),
        Valuation::of([ev("rdy3"), ev("rdy2")]),
        Valuation::of([ev("data3"), ev("data2")]),
    ];
    (clk1, clk2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_core::{synthesize, synthesize_multiclock, SynthOptions};
    use cesc_semantics::{multiclock_contains, window_matches};
    use cesc_trace::{ClockDomain, ClockSet, GlobalRun, Trace};

    #[test]
    fn fig1_monitor_detects_protocol() {
        let doc = single_clock_doc();
        let c = doc.chart("read_protocol").unwrap();
        let m = synthesize(c, &SynthOptions::default()).unwrap();
        assert_eq!(m.state_count(), 4);
        let w = single_clock_window(&doc.alphabet);
        assert!(window_matches(c, &w));
        let report = m.scan(w);
        assert_eq!(report.matches, vec![2]);
    }

    #[test]
    fn fig1_missing_ready_rejected() {
        let doc = single_clock_doc();
        let m = synthesize(doc.chart("read_protocol").unwrap(), &SynthOptions::default())
            .unwrap();
        let mut w = single_clock_window(&doc.alphabet);
        let rdy1 = doc.alphabet.lookup("rdy1").unwrap();
        w[1].remove(rdy1);
        assert!(!m.scan(Trace::from_elements(w)).detected());
    }

    #[test]
    fn fig2_multiclock_monitor_matches_ordered_run() {
        let doc = multi_clock_doc();
        let spec = doc.multiclock_spec("read_multiclock").unwrap();
        let mm = synthesize_multiclock(spec, &SynthOptions::default()).unwrap();
        assert_eq!(mm.locals().len(), 2);

        let mut clocks = ClockSet::new();
        let c1 = clocks.add(ClockDomain::new("clk1", 5, 0)); // 0,5,10
        let c2 = clocks.add(ClockDomain::new("clk2", 2, 1)); // 1,3,5,7,9

        let (w1, w2) = multi_clock_windows(&doc.alphabet);
        let mut t2 = w2.clone();
        t2.extend([Valuation::empty(), Valuation::empty()]); // pad to 5 ticks
        let run = GlobalRun::interleave(
            &clocks,
            &[
                (c1, Trace::from_elements(w1)),
                (c2, Trace::from_elements(t2)),
            ],
        )
        .unwrap();
        // oracle agrees the run exhibits the spec
        assert!(multiclock_contains(spec, &clocks, &run));
        let hits = mm.scan(&clocks, &run);
        assert_eq!(hits, vec![10]);
    }

    #[test]
    fn fig2_data_before_remote_data_rejected() {
        let doc = multi_clock_doc();
        let spec = doc.multiclock_spec("read_multiclock").unwrap();
        let mm = synthesize_multiclock(spec, &SynthOptions::default()).unwrap();

        let mut clocks = ClockSet::new();
        let c1 = clocks.add(ClockDomain::new("clk1", 2, 0)); // 0,2,4 — too fast
        let c2 = clocks.add(ClockDomain::new("clk2", 3, 1)); // 1,4,7

        let (w1, w2) = multi_clock_windows(&doc.alphabet);
        // clk1 finishes data1 at t4 but data2 only lands at t7
        let run = GlobalRun::interleave(
            &clocks,
            &[
                (c1, Trace::from_elements(w1)),
                (c2, Trace::from_elements(w2)),
            ],
        );
        // interleave may need padding; tolerate both shapes
        if let Ok(run) = run {
            assert!(!multiclock_contains(spec, &clocks, &run));
            assert!(mm.scan(&clocks, &run).is_empty());
        }
    }
}
