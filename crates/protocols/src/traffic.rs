//! Protocol traffic generation: compliant transaction streams with
//! configurable load, idle gaps and background noise — the workloads
//! every benchmark sweeps over.

use cesc_chart::Scesc;
use cesc_expr::{Alphabet, Valuation};
use cesc_semantics::witness_window;
use cesc_sim::{PeriodicTransactor, Transactor};
use cesc_trace::{Trace, TraceGen};

/// Traffic shape: how many transactions, how far apart, over how much
/// background noise.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of back-to-back transactions.
    pub transactions: usize,
    /// Idle ticks between transactions.
    pub gap: usize,
    /// Per-symbol probability of background noise on *unrelated*
    /// symbols (symbols the window never uses).
    pub noise_density: f64,
    /// RNG seed for the noise.
    pub seed: u64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            transactions: 10,
            gap: 3,
            noise_density: 0.0,
            seed: 0xCE5C,
        }
    }
}

/// A compliant transaction stream built from a canonical `window`
/// (e.g. [`crate::ocp::simple_read_window`]), with noise restricted to
/// symbols outside the window so compliance is preserved.
pub fn transaction_stream(
    alphabet: &Alphabet,
    window: &[Valuation],
    cfg: &TrafficConfig,
) -> Trace {
    let len = cfg.transactions * (window.len() + cfg.gap);
    let mut used = Valuation::empty();
    for &v in window {
        used = used | v;
    }
    let noise_symbols: Vec<_> = alphabet
        .iter()
        .map(|(id, _)| id)
        .filter(|id| !used.contains(*id))
        .collect();
    let mut noise_gen = TraceGen::with_symbols(cfg.seed, noise_symbols);
    let mut t = Trace::with_capacity(len);
    for _ in 0..cfg.transactions {
        for &v in window {
            t.push(v | noise_gen.valuation(cfg.noise_density));
        }
        for _ in 0..cfg.gap {
            t.push(noise_gen.valuation(cfg.noise_density));
        }
    }
    t
}

/// A compliant stream for an arbitrary chart, using its minimal witness
/// window.
///
/// # Errors
///
/// Returns the underlying [`cesc_semantics::UnsatisfiableChart`] when
/// the chart has a contradictory grid line.
pub fn chart_traffic(
    chart: &Scesc,
    alphabet: &Alphabet,
    cfg: &TrafficConfig,
) -> Result<Trace, cesc_semantics::UnsatisfiableChart> {
    let window = witness_window(chart)?;
    Ok(transaction_stream(alphabet, &window, cfg))
}

/// A simulation transactor replaying the transaction stream shape
/// (window + gap) forever on the given clock.
pub fn transactor_for(clock: &str, window: Vec<Valuation>, gap: u64) -> Box<dyn Transactor> {
    Box::new(PeriodicTransactor::new(clock, window, gap, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ocp;
    use cesc_core::{synthesize, SynthOptions};

    #[test]
    fn stream_length_and_content() {
        let doc = ocp::simple_read_doc();
        let w = ocp::simple_read_window(&doc.alphabet);
        let cfg = TrafficConfig {
            transactions: 4,
            gap: 2,
            ..Default::default()
        };
        let t = transaction_stream(&doc.alphabet, &w, &cfg);
        assert_eq!(t.len(), 4 * (2 + 2));
        // every transaction detected
        let m = synthesize(doc.chart("ocp_simple_read").unwrap(), &SynthOptions::default())
            .unwrap();
        assert_eq!(m.scan(&t).matches.len(), 4);
    }

    #[test]
    fn noise_does_not_break_compliance() {
        let doc = ocp::burst_read_doc();
        let w = ocp::burst_read_window(&doc.alphabet);
        let cfg = TrafficConfig {
            transactions: 5,
            gap: 4,
            noise_density: 0.8,
            seed: 7,
        };
        let t = transaction_stream(&doc.alphabet, &w, &cfg);
        let m = synthesize(doc.chart("ocp_burst_read").unwrap(), &SynthOptions::default())
            .unwrap();
        // noise only touches symbols outside the burst window — but the
        // burst window uses ALL chart symbols, so traffic is clean and
        // all 5 bursts are detected
        assert_eq!(m.scan(&t).matches.len(), 5);
    }

    #[test]
    fn chart_traffic_uses_witness() {
        let doc = ocp::simple_read_doc();
        let chart = doc.chart("ocp_simple_read").unwrap();
        let cfg = TrafficConfig {
            transactions: 3,
            gap: 1,
            ..Default::default()
        };
        let t = chart_traffic(chart, &doc.alphabet, &cfg).unwrap();
        let m = synthesize(chart, &SynthOptions::default()).unwrap();
        assert_eq!(m.scan(&t).matches.len(), 3);
    }

    #[test]
    fn transactor_replays_stream_shape() {
        let doc = ocp::simple_read_doc();
        let w = ocp::simple_read_window(&doc.alphabet);
        let mut t = transactor_for("clk", w.clone(), 1);
        assert_eq!(t.tick(0), w[0]);
        assert_eq!(t.tick(1), w[1]);
        assert!(t.tick(2).is_empty());
        assert_eq!(t.tick(3), w[0]);
    }
}
