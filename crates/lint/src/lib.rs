//! # cesc-lint — static analysis of synthesized monitors
//!
//! The paper's flow reviews verification plans *before* simulation;
//! this crate is that review, mechanized. It runs the
//! [`cesc_core::bounds`] interval fixpoint over every compiled target
//! of a [`SpecSet`] and turns the results into structured findings:
//!
//! | id   | rule                | severity | meaning |
//! |------|---------------------|----------|---------|
//! | L001 | `vacuity`           | error    | accept state unreachable under satisfiable guards — the chart can never match |
//! | L002 | `dead-state`        | warning  | non-accept state unreachable under the refined transition relation |
//! | L003 | `dead-arm`          | note     | transition arm that can never fire (shadowed or contradicted by counter bounds) |
//! | L010 | `unbounded-counter` | warning  | a scoreboard count grows without bound — any fixed-width RTL counter can saturate and diverge from the engine |
//! | L011 | `saturation-risk`   | warning  | a finite bound exceeds an explicitly configured counter ceiling |
//! | L020 | `underflow`         | error    | a `Del_evt` fires with a provably-zero count whenever its arm is taken |
//! | L030 | `shadowing`         | note     | two satisfiable same-kind arms overlap with different outcomes; priority order silently decides |
//! | L100 | `unsatisfiable-guard` | note   | an arm's own guard is semantically unsatisfiable — upgrades L003's syntactic dead-arm |
//! | L101 | `contradictory-overlap` | note | a forward and a backward arm of one state are jointly satisfiable — the match/slide-back choice is ambiguous, priority decides |
//! | L102 | `semantic-unreachable` | warning | a state is unreachable once unsatisfiable effective guards are pruned — strictly sharper than graph reachability |
//! | L110 | `violated-assert`   | warning  | the product prover refuted an `implies(...)` assert: a concrete trace violates it |
//!
//! The `L0xx` rules reason syntactically and numerically (PR 7's
//! interval bounds); the `L1xx` rules are *semantic*, driven by the
//! [`cesc_core::GuardSat`] satisfiability engine, SAT-pruned
//! reachability and the [`cesc_core::prove_implication`] product
//! prover over the same compiled guard tables the engine executes.
//!
//! Findings are computed on the monitors **as synthesized** (the
//! [`cesc_spec::ChartSpec::synthesized`] /
//! [`cesc_spec::AssertSpec::synthesized_antecedent`] forms), so the
//! report is identical with and without the optimizer pipeline — a
//! property `tests/lint_soundness.rs` pins. [`annotate_positions`]
//! additionally stamps each finding with the `(line, column)` of its
//! target's declaration in the source text.
//!
//! Intentional findings are silenced either with
//! [`LintOptions::allow`] (the CLI's repeatable `--allow RULE`) or
//! in-source annotations:
//!
//! ```text
//! // lint: allow(unbounded-counter)
//! ```
//!
//! anywhere in the spec file (collected by [`allows_in_source`]).
//! Allowed findings are still reported, flagged `allowed`, and never
//! counted by [`LintReport::denied`] — the `--deny` gate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use cesc_core::{
    reachable_states, ArmLit, BoundsReport, GuardSat, GuardVerdict, Monitor, StateId,
};
use cesc_expr::{sat, Alphabet, Expr, SymbolId, Valuation};
use cesc_spec::{SpecError, SpecSet, TargetRef};

/// A lint rule — the catalog above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// L001: the accept state is unreachable; the chart never matches.
    Vacuity,
    /// L002: a non-accept state is unreachable.
    DeadState,
    /// L003: a transition arm can never fire.
    DeadArm,
    /// L010: a scoreboard count has no finite upper bound.
    UnboundedCounter,
    /// L011: a finite bound exceeds the configured counter ceiling.
    SaturationRisk,
    /// L020: a `Del_evt` always fires with a zero count.
    Underflow,
    /// L030: overlapping satisfiable guards resolved only by priority.
    Shadowing,
    /// L100: an arm's own guard is semantically unsatisfiable.
    UnsatGuard,
    /// L101: a forward and a backward arm are jointly satisfiable.
    ContradictoryOverlap,
    /// L102: a state is unreachable under SAT-pruned edges.
    SemanticUnreachable,
    /// L110: an `implies(...)` assert is statically violated.
    ViolatedAssert,
}

impl Rule {
    /// Stable catalog id (`L001`…).
    pub fn id(self) -> &'static str {
        match self {
            Rule::Vacuity => "L001",
            Rule::DeadState => "L002",
            Rule::DeadArm => "L003",
            Rule::UnboundedCounter => "L010",
            Rule::SaturationRisk => "L011",
            Rule::Underflow => "L020",
            Rule::Shadowing => "L030",
            Rule::UnsatGuard => "L100",
            Rule::ContradictoryOverlap => "L101",
            Rule::SemanticUnreachable => "L102",
            Rule::ViolatedAssert => "L110",
        }
    }

    /// Human name (`vacuity`, `unbounded-counter`, …) — what `--allow`
    /// and in-source annotations accept.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Vacuity => "vacuity",
            Rule::DeadState => "dead-state",
            Rule::DeadArm => "dead-arm",
            Rule::UnboundedCounter => "unbounded-counter",
            Rule::SaturationRisk => "saturation-risk",
            Rule::Underflow => "underflow",
            Rule::Shadowing => "shadowing",
            Rule::UnsatGuard => "unsatisfiable-guard",
            Rule::ContradictoryOverlap => "contradictory-overlap",
            Rule::SemanticUnreachable => "semantic-unreachable",
            Rule::ViolatedAssert => "violated-assert",
        }
    }

    /// Every rule in catalog order.
    pub fn all() -> [Rule; 11] {
        [
            Rule::Vacuity,
            Rule::DeadState,
            Rule::DeadArm,
            Rule::UnboundedCounter,
            Rule::SaturationRisk,
            Rule::Underflow,
            Rule::Shadowing,
            Rule::UnsatGuard,
            Rule::ContradictoryOverlap,
            Rule::SemanticUnreachable,
            Rule::ViolatedAssert,
        ]
    }

    /// Parses a rule by id or name.
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::all()
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.name() == s)
    }

    /// Default severity of this rule's findings.
    pub fn severity(self) -> Severity {
        match self {
            Rule::Vacuity | Rule::Underflow => Severity::Error,
            Rule::DeadState
            | Rule::UnboundedCounter
            | Rule::SaturationRisk
            | Rule::SemanticUnreachable
            | Rule::ViolatedAssert => Severity::Warning,
            Rule::DeadArm | Rule::Shadowing | Rule::UnsatGuard | Rule::ContradictoryOverlap => {
                Severity::Note
            }
        }
    }
}

/// How serious a finding is; `--deny` gates on errors and warnings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational — never gates.
    Note,
    /// Suspicious — gates under `--deny`.
    Warning,
    /// A defect — gates under `--deny`.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One structured finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: Rule,
    /// Severity (the rule's default).
    pub severity: Severity,
    /// Target the finding is about (chart / multiclock local /
    /// assertion side, e.g. `hs`, `pair/beat`, `gate.antecedent`).
    pub target: String,
    /// Machine-friendly location within the monitor (`s1`, `s1#2`,
    /// `event req`), empty when the finding is monitor-wide.
    pub location: String,
    /// Human explanation.
    pub message: String,
    /// Silenced by an allow (still reported, never denied).
    pub allowed: bool,
    /// 1-based `(line, column)` of the target's declaration in the
    /// source text, stamped by [`annotate_positions`]; `None` when the
    /// report was built without source text.
    pub position: Option<(usize, usize)>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} {}] {}",
            self.severity,
            self.rule.id(),
            self.rule.name(),
            self.target
        )?;
        if let Some((line, col)) = self.position {
            write!(f, ":{line}:{col}")?;
        }
        if !self.location.is_empty() {
            write!(f, " at {}", self.location)?;
        }
        write!(f, ": {}", self.message)?;
        if self.allowed {
            write!(f, " (allowed)")?;
        }
        Ok(())
    }
}

/// Knobs for [`lint`].
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Rules to allow (by id or name); matching findings are flagged
    /// [`Finding::allowed`] and skipped by [`LintReport::denied`].
    pub allow: Vec<String>,
    /// An explicitly configured RTL counter width. When set, finite
    /// bounds exceeding `2^w - 1` raise [`Rule::SaturationRisk`];
    /// when `None` (width inferred from the bounds) only
    /// [`Rule::UnboundedCounter`] can flag saturation.
    pub ceiling_width: Option<u32>,
}

impl LintOptions {
    fn is_allowed(&self, rule: Rule) -> bool {
        self.allow
            .iter()
            .any(|s| Rule::parse(s) == Some(rule))
    }
}

/// The assembled findings of one lint run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, in target order then rule-catalog order.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Findings that gate a `--deny` run: errors and warnings not
    /// silenced by an allow.
    pub fn denied(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| !f.allowed && f.severity >= Severity::Warning)
            .collect()
    }

    /// Count of findings per severity `(errors, warnings, notes)`,
    /// allowed findings included.
    pub fn tally(&self) -> (usize, usize, usize) {
        self.findings.iter().fold((0, 0, 0), |(e, w, n), f| match f.severity {
            Severity::Error => (e + 1, w, n),
            Severity::Warning => (e, w + 1, n),
            Severity::Note => (e, w, n + 1),
        })
    }
}

/// Collects `// lint: allow(rule, rule, …)` annotations from spec
/// source text. Unknown rule names are returned too — [`lint`]
/// validates them so typos fail loudly instead of silently allowing
/// nothing.
pub fn allows_in_source(source: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in source.lines() {
        let Some(comment) = line.split("//").nth(1) else {
            continue;
        };
        let Some(rest) = comment.trim_start().strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split(')').next())
        else {
            continue;
        };
        for rule in args.split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                out.push(rule.to_owned());
            }
        }
    }
    out
}

/// Lints every checkable target of `specs`.
///
/// # Errors
///
/// Propagates compile errors from target builds, and rejects unknown
/// rule names in [`LintOptions::allow`].
///
/// # Examples
///
/// ```
/// use cesc_lint::{lint, LintOptions, Rule};
/// use cesc_spec::SpecSet;
///
/// let specs = SpecSet::load(
///     "scesc hs on clk { instances { M } events { req, ack } \
///      tick { M: req } tick { M: ack } cause req -> ack; }",
/// ).unwrap();
/// let report = lint(&specs, &LintOptions::default()).unwrap();
/// // default synthesis re-Adds `req` on repeated requests: unbounded
/// assert!(report.findings.iter().any(|f| f.rule == Rule::UnboundedCounter));
/// ```
pub fn lint(specs: &SpecSet, opts: &LintOptions) -> Result<LintReport, SpecError> {
    let targets = specs.checkable_targets();
    lint_targets(specs, &targets, opts)
}

/// Lints an explicit target selection.
///
/// # Errors
///
/// Propagates compile errors from target builds, and rejects unknown
/// rule names in [`LintOptions::allow`].
pub fn lint_targets(
    specs: &SpecSet,
    targets: &[TargetRef],
    opts: &LintOptions,
) -> Result<LintReport, SpecError> {
    for a in &opts.allow {
        if Rule::parse(a).is_none() {
            return Err(SpecError::Invalid(format!(
                "unknown lint rule `{a}`; rules: {}",
                Rule::all()
                    .into_iter()
                    .map(|r| format!("{} ({})", r.name(), r.id()))
                    .collect::<Vec<_>>()
                    .join(", ")
            )));
        }
    }
    let ab = specs.alphabet();
    let mut findings = Vec::new();
    for &target in targets {
        match target {
            TargetRef::Chart(i) => {
                let spec = specs.chart_spec(i)?;
                lint_monitor(
                    spec.compiled().name(),
                    spec.synthesized(),
                    spec.bounds(),
                    ab,
                    opts,
                    &mut findings,
                );
            }
            TargetRef::Multi(i) => {
                let spec = specs.multi_spec(i)?;
                let name = specs.target_name(target).to_owned();
                for (local, bounds) in spec
                    .synthesized()
                    .locals()
                    .iter()
                    .zip(spec.local_bounds())
                {
                    let label = format!("{name}/{}", local.name());
                    lint_local(&label, local, bounds, spec, ab, opts, &mut findings);
                }
            }
            TargetRef::Assert(i) => {
                let spec = specs.assert_spec(i)?;
                // lint the *synthesized* sides, matching the bounds
                // (taken pre-optimize) and keeping the report identical
                // with and without the pipeline
                lint_monitor(
                    &format!("{}.antecedent", spec.name()),
                    spec.synthesized_antecedent(),
                    spec.antecedent_bounds(),
                    ab,
                    opts,
                    &mut findings,
                );
                lint_monitor(
                    &format!("{}.consequent", spec.name()),
                    spec.synthesized_consequent(),
                    spec.consequent_bounds(),
                    ab,
                    opts,
                    &mut findings,
                );
                let proof = specs.proof(i)?;
                if let Some(cx) = proof.counterexample() {
                    // only semantic-stable quantities in the message
                    // (the optimizer must not change the report): the
                    // verdict and the shortest-trace length
                    let name = spec.name();
                    push(
                        &mut findings,
                        opts,
                        Rule::ViolatedAssert,
                        name,
                        String::new(),
                        format!(
                            "statically violated: a {}-tick trace completes the antecedent \
                             and then blocks the consequent; `cesc prove --chart {name}` \
                             prints the counterexample",
                            cx.trace.len()
                        ),
                    );
                }
            }
        }
    }
    Ok(LintReport { findings })
}

/// Appends the findings of one single-clock monitor.
fn lint_monitor(
    target: &str,
    monitor: &Monitor,
    bounds: &BoundsReport,
    ab: &Alphabet,
    opts: &LintOptions,
    out: &mut Vec<Finding>,
) {
    let sem = analyze_semantics(monitor, bounds);
    reachability_findings(target, monitor, bounds, &sem, opts, out);
    bound_findings(target, bounds.bounds(), ab, opts, out);
    underflow_findings(target, bounds, ab, opts, out);
    shadowing_findings(target, monitor, bounds, ab, opts, out);
    semantic_findings(target, &sem, ab, opts, out);
}

/// Appends the findings of one local monitor of a multi-clock spec:
/// bounds come from the shared-scoreboard combination, and underflow
/// is only trusted for events this local owns outright.
fn lint_local(
    target: &str,
    local: &Monitor,
    bounds: &BoundsReport,
    spec: &cesc_spec::MultiSpec,
    ab: &Alphabet,
    opts: &LintOptions,
    out: &mut Vec<Finding>,
) {
    let sem = analyze_semantics(local, bounds);
    reachability_findings(target, local, bounds, &sem, opts, out);
    let written = local.written_events();
    // report each written event once, under the writing local, with
    // the coupling-aware shared bound
    let shared = written
        .iter()
        .filter_map(|&e| spec.shared_bound(e).map(|b| (e, b)));
    bound_findings(target, shared, ab, opts, out);
    if !written
        .iter()
        .any(|e| spec.coupled_events().contains(e))
    {
        underflow_findings(target, bounds, ab, opts, out);
    }
    shadowing_findings(target, local, bounds, ab, opts, out);
    semantic_findings(target, &sem, ab, opts, out);
}

/// Per-monitor semantic facts, computed once on the raw compile of the
/// synthesized monitor and shared by the `L1xx` rules and the
/// `L003`-suppression logic. All queries run with scoreboard presence
/// *free* (`pin_chk = false`), the sound over-approximation of engine
/// dynamics: an UNSAT or unreachable verdict here holds under any
/// scoreboard history.
struct Semantics {
    /// Arms whose own guard is unsatisfiable (L100).
    unsat_arms: Vec<(StateId, usize)>,
    /// Kind-differing arm pairs jointly satisfiable, with a witness
    /// event-set (L101).
    overlaps: Vec<(StateId, usize, usize, Valuation)>,
    /// Bounds-feasible states unreachable under SAT-pruned edges
    /// (L102).
    unreachable: Vec<StateId>,
}

fn analyze_semantics(monitor: &Monitor, bounds: &BoundsReport) -> Semantics {
    let compiled = monitor.compiled();
    let mut engine = GuardSat::single(&compiled);
    let mut unsat_arms = Vec::new();
    let mut overlaps = Vec::new();
    for s in 0..monitor.state_count() {
        let sid = StateId::from_index(s);
        let ts = monitor.transitions_from(sid);
        for i in 0..ts.len() {
            if engine.arm_verdict(0, s, i, false) == GuardVerdict::Unsat {
                unsat_arms.push((sid, i));
            }
        }
        if !bounds.is_feasible(sid) {
            continue;
        }
        for i in 0..ts.len() {
            for j in i + 1..ts.len() {
                // same filters as the syntactic shadowing rule, plus:
                // only kind-differing pairs (the match/slide-back
                // ambiguity), and guards the SAT engine proved dead
                // carry no overlap
                if ts[i].kind == ts[j].kind
                    || matches!(ts[j].guard, Expr::Const(true))
                    || (ts[i].target == ts[j].target && ts[i].actions == ts[j].actions)
                    || bounds.infeasible_arms().contains(&(sid, i))
                    || bounds.infeasible_arms().contains(&(sid, j))
                    || unsat_arms.contains(&(sid, i))
                    || unsat_arms.contains(&(sid, j))
                {
                    continue;
                }
                if let Some(w) =
                    engine.satisfy(&[ArmLit::pos(0, s, i), ArmLit::pos(0, s, j)], false)
                {
                    overlaps.push((sid, i, j, w.valuation));
                }
            }
        }
    }
    let reach = reachable_states(&compiled, false);
    let unreachable = (0..monitor.state_count())
        .filter(|&s| !reach[s] && bounds.is_feasible(StateId::from_index(s)))
        .map(StateId::from_index)
        .collect();
    Semantics {
        unsat_arms,
        overlaps,
        unreachable,
    }
}

/// Appends the semantic `L100`/`L101`/`L102` findings.
fn semantic_findings(
    target: &str,
    sem: &Semantics,
    ab: &Alphabet,
    opts: &LintOptions,
    out: &mut Vec<Finding>,
) {
    for &(s, arm) in &sem.unsat_arms {
        push(
            out,
            opts,
            Rule::UnsatGuard,
            target,
            format!("{s}#{arm}"),
            format!(
                "guard of arm {arm} of {s} is unsatisfiable — no event-set can ever fire \
                 this transition"
            ),
        );
    }
    for &(s, i, j, w) in &sem.overlaps {
        push(
            out,
            opts,
            Rule::ContradictoryOverlap,
            target,
            format!("{s}#{i}/{j}"),
            format!(
                "forward and backward arms {i} and {j} of {s} are jointly satisfiable \
                 (e.g. on {{{}}}); the match/slide-back choice is ambiguous and priority \
                 order silently picks arm {i}",
                event_set(w, ab)
            ),
        );
    }
    for &s in &sem.unreachable {
        push(
            out,
            opts,
            Rule::SemanticUnreachable,
            target,
            s.to_string(),
            format!(
                "state {s} is unreachable under satisfiable effective guards — every \
                 path to it crosses a transition that can never fire"
            ),
        );
    }
}

/// Renders a witness valuation as a comma-separated event list.
fn event_set(v: Valuation, ab: &Alphabet) -> String {
    let mut names: Vec<&str> = Vec::new();
    let mut bits = v.bits();
    while bits != 0 {
        names.push(ab.name(SymbolId::from_index(bits.trailing_zeros() as usize)));
        bits &= bits - 1;
    }
    if names.is_empty() {
        "no events".to_owned()
    } else {
        names.join(", ")
    }
}

fn push(
    out: &mut Vec<Finding>,
    opts: &LintOptions,
    rule: Rule,
    target: &str,
    location: String,
    message: String,
) {
    out.push(Finding {
        rule,
        severity: rule.severity(),
        target: target.to_owned(),
        location,
        message,
        allowed: opts.is_allowed(rule),
        position: None,
    });
}

/// Stamps each finding with the 1-based `(line, column)` of its
/// target's declaration in `source` (the file the [`SpecSet`] was
/// loaded from). Compound targets resolve to their top-level
/// declaration: `pair/beat` points at `multiclock pair`,
/// `gate.antecedent` at `cesc gate`. Findings whose target has no
/// declaration in `source` keep `position: None`.
pub fn annotate_positions(report: &mut LintReport, source: &str) {
    let decls = decl_positions(source);
    for f in &mut report.findings {
        let head = f.target.split(['/', '.']).next().unwrap_or("");
        f.position = decls
            .iter()
            .find(|(name, _, _)| name == head)
            .map(|&(_, line, col)| (line, col));
    }
}

/// Scans source text for `scesc NAME`, `multiclock NAME` and `cesc
/// NAME` declaration headers (comments stripped), returning each name
/// with the 1-based line and column of the name token.
fn decl_positions(source: &str) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    for (ln, raw) in source.lines().enumerate() {
        let code = raw.split("//").next().unwrap_or("");
        // word list with byte-offset spans
        let mut words: Vec<(usize, usize)> = Vec::new();
        let mut open = false;
        for (i, ch) in code.char_indices() {
            if ch.is_whitespace() || ch == '{' {
                open = false;
            } else if open {
                words.last_mut().expect("open word").1 = i + ch.len_utf8();
            } else {
                open = true;
                words.push((i, i + ch.len_utf8()));
            }
        }
        for w in 0..words.len().saturating_sub(1) {
            let kw = &code[words[w].0..words[w].1];
            if kw == "scesc" || kw == "multiclock" || kw == "cesc" {
                let (ns, ne) = words[w + 1];
                let name = &code[ns..ne];
                if !name.is_empty() {
                    out.push((name.to_owned(), ln + 1, ns + 1));
                }
            }
        }
    }
    out
}

fn reachability_findings(
    target: &str,
    monitor: &Monitor,
    bounds: &BoundsReport,
    sem: &Semantics,
    opts: &LintOptions,
    out: &mut Vec<Finding>,
) {
    if !bounds.final_feasible() {
        push(
            out,
            opts,
            Rule::Vacuity,
            target,
            monitor.final_state().to_string(),
            format!(
                "accept state {} is unreachable under satisfiable guards — the chart can \
                 never match",
                monitor.final_state()
            ),
        );
    }
    for s in bounds.infeasible_states() {
        if s == monitor.final_state() {
            continue; // covered by vacuity
        }
        push(
            out,
            opts,
            Rule::DeadState,
            target,
            s.to_string(),
            format!("state {s} is unreachable under the refined transition relation"),
        );
    }
    for &(s, arm) in bounds.infeasible_arms() {
        if sem.unsat_arms.contains(&(s, arm)) {
            continue; // upgraded to L100: the guard itself is unsat
        }
        push(
            out,
            opts,
            Rule::DeadArm,
            target,
            format!("{s}#{arm}"),
            format!(
                "arm {arm} of {s} can never fire (guard shadowed or contradicted by counter \
                 bounds)"
            ),
        );
    }
}

fn bound_findings(
    target: &str,
    bounds: impl Iterator<Item = (SymbolId, cesc_core::Bound)>,
    ab: &Alphabet,
    opts: &LintOptions,
    out: &mut Vec<Finding>,
) {
    for (e, b) in bounds {
        let name = ab.name(e);
        match b.hi {
            None => push(
                out,
                opts,
                Rule::UnboundedCounter,
                target,
                format!("event {name}"),
                format!(
                    "count of `{name}` has no finite bound — any fixed-width RTL counter \
                     can saturate and silently diverge from the unbounded engine"
                ),
            ),
            Some(hi) => {
                if let Some(w) = opts.ceiling_width {
                    let ceiling = (1u64 << w.clamp(1, 63)) - 1;
                    if hi > ceiling {
                        push(
                            out,
                            opts,
                            Rule::SaturationRisk,
                            target,
                            format!("event {name}"),
                            format!(
                                "count of `{name}` can reach {hi}, exceeding the {w}-bit \
                                 counter ceiling {ceiling}"
                            ),
                        );
                    }
                }
            }
        }
    }
}

fn underflow_findings(
    target: &str,
    bounds: &BoundsReport,
    ab: &Alphabet,
    opts: &LintOptions,
    out: &mut Vec<Finding>,
) {
    for site in bounds.underflow_sites() {
        let name = ab.name(site.event);
        push(
            out,
            opts,
            Rule::Underflow,
            target,
            format!("{}#{}", site.state, site.arm),
            format!(
                "Del_evt({name}) on arm {} of {} always fires with count 0 — the deletion \
                 is guaranteed to underflow",
                site.arm, site.state
            ),
        );
    }
}

fn shadowing_findings(
    target: &str,
    monitor: &Monitor,
    bounds: &BoundsReport,
    ab: &Alphabet,
    opts: &LintOptions,
    out: &mut Vec<Finding>,
) {
    for s in 0..monitor.state_count() {
        let sid = cesc_core::StateId::from_index(s);
        if !bounds.is_feasible(sid) {
            continue;
        }
        let ts = monitor.transitions_from(sid);
        for i in 0..ts.len() {
            for j in i + 1..ts.len() {
                if bounds.infeasible_arms().contains(&(sid, i))
                    || bounds.infeasible_arms().contains(&(sid, j))
                {
                    continue;
                }
                // the trailing total fallback is the *designed*
                // default of every synthesized state, not an ambiguity
                if matches!(ts[j].guard, Expr::Const(true)) {
                    continue;
                }
                // kind-differing pairs belong to the semantic L101
                // rule, which also proves syntactically-compatible but
                // semantically-disjoint pairs harmless
                if ts[i].kind != ts[j].kind {
                    continue;
                }
                if ts[i].target == ts[j].target && ts[i].actions == ts[j].actions {
                    continue;
                }
                if sat::compatible(&ts[i].guard, &ts[j].guard) {
                    push(
                        out,
                        opts,
                        Rule::Shadowing,
                        target,
                        format!("{sid}#{i}/{j}"),
                        format!(
                            "arms {i} and {j} of {sid} overlap (`{}` and `{}` can hold \
                             together) with different outcomes; priority order silently \
                             picks arm {i}",
                            ts[i].guard.display(ab),
                            ts[j].guard.display(ab)
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HS: &str = "scesc hs on clk { instances { M } events { req, ack } \
                      tick { M: req } tick { M: ack } cause req -> ack; }";

    #[test]
    fn rule_parse_roundtrip() {
        for r in Rule::all() {
            assert_eq!(Rule::parse(r.id()), Some(r));
            assert_eq!(Rule::parse(r.name()), Some(r));
        }
        assert_eq!(Rule::parse("nope"), None);
    }

    #[test]
    fn hs_chart_flags_unbounded_counter() {
        let specs = SpecSet::load(HS).unwrap();
        let report = lint(&specs, &LintOptions::default()).unwrap();
        let unbounded: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::UnboundedCounter)
            .collect();
        assert_eq!(unbounded.len(), 1, "{:?}", report.findings);
        assert_eq!(unbounded[0].target, "hs");
        assert!(unbounded[0].message.contains("req"));
        assert!(!report.denied().is_empty());
    }

    #[test]
    fn allow_silences_deny_but_keeps_finding() {
        let specs = SpecSet::load(HS).unwrap();
        let opts = LintOptions {
            allow: vec!["unbounded-counter".to_owned()],
            ..LintOptions::default()
        };
        let report = lint(&specs, &opts).unwrap();
        let f = report
            .findings
            .iter()
            .find(|f| f.rule == Rule::UnboundedCounter)
            .unwrap();
        assert!(f.allowed);
        assert!(report.denied().is_empty());
    }

    #[test]
    fn unknown_allow_rule_rejects() {
        let specs = SpecSet::load(HS).unwrap();
        let opts = LintOptions {
            allow: vec!["L999".to_owned()],
            ..LintOptions::default()
        };
        let err = lint(&specs, &opts).unwrap_err();
        assert!(err.to_string().contains("unknown lint rule"), "{err}");
    }

    #[test]
    fn causality_free_chart_is_clean() {
        let specs = SpecSet::load(
            "scesc pulse on clk { instances { M } events { a, b } \
             tick { M: a } tick { M: b } }",
        )
        .unwrap();
        let report = lint(&specs, &LintOptions::default()).unwrap();
        assert!(report.denied().is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn saturation_risk_fires_under_explicit_ceiling() {
        // pulse-train: three causes from the same event make the
        // count reach 3; a 1-bit explicit counter ceiling (max 1)
        // cannot hold it
        let specs = SpecSet::load(
            "scesc burst on clk { instances { M } events { a, b } \
             tick { M: a } tick { M: a } tick { M: a } tick { M: b } \
             cause a@0 -> b; cause a@1 -> b; cause a@2 -> b; }",
        )
        .unwrap();
        let opts = LintOptions {
            ceiling_width: Some(1),
            ..LintOptions::default()
        };
        let report = lint(&specs, &opts).unwrap();
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == Rule::SaturationRisk || f.rule == Rule::UnboundedCounter),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn annotations_collected_from_source() {
        let src = "// lint: allow(unbounded-counter, shadowing)\n\
                   scesc x on clk { instances { A } events { e } tick { A: e } } // lint: allow(L020)";
        assert_eq!(
            allows_in_source(src),
            vec!["unbounded-counter", "shadowing", "L020"]
        );
    }

    #[test]
    fn refuted_assert_raises_violated_assert_with_position() {
        let src = format!(
            "{HS}\n\
             scesc req on clk {{ instances {{ M }} events {{ req, ack }} tick {{ M: req }} }}\n\
             scesc rsp on clk {{ instances {{ M }} events {{ req, ack }} tick {{ M: ack }} }}\n\
             cesc gate {{ implies(req, rsp) }}"
        );
        let specs = SpecSet::load(&src).unwrap();
        let mut report = lint(&specs, &LintOptions::default()).unwrap();
        annotate_positions(&mut report, &src);
        let f = report
            .findings
            .iter()
            .find(|f| f.rule == Rule::ViolatedAssert)
            .expect("implies(req, rsp) is refutable");
        assert_eq!(f.target, "gate");
        assert_eq!(f.severity, Severity::Warning);
        assert_eq!(f.position, Some((4, 6)), "points at `cesc gate`");
        assert!(f.message.contains("2-tick trace"), "{}", f.message);
        // the L110 warning gates --deny, and `--allow violated-assert`
        // silences it
        assert!(report.denied().iter().any(|f| f.rule == Rule::ViolatedAssert));
        let opts = LintOptions {
            allow: vec!["violated-assert".to_owned()],
            ..LintOptions::default()
        };
        let report = lint(&specs, &opts).unwrap();
        assert!(!report.denied().iter().any(|f| f.rule == Rule::ViolatedAssert));
    }

    #[test]
    fn contradictory_overlap_upgrades_kind_differing_shadowing() {
        let specs = SpecSet::load(HS).unwrap();
        let report = lint(&specs, &LintOptions::default()).unwrap();
        let f = report
            .findings
            .iter()
            .find(|f| f.rule == Rule::ContradictoryOverlap)
            .expect("hs has a forward/backward overlap");
        assert!(f.message.contains("jointly satisfiable"), "{}", f.message);
        assert!(
            f.message.contains("req") || f.message.contains("ack"),
            "witness event-set in message: {}",
            f.message
        );
        // ...and no plain L030 remains for kind-differing pairs
        assert!(
            !report.findings.iter().any(|f| f.rule == Rule::Shadowing),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn positions_resolve_compound_targets() {
        let src = "scesc ping on ca { instances { M } events { req, ack } \
                   tick { M: req } tick { M: ack } cause req -> ack; }\n\
                   scesc pong on cb { instances { S } events { go } tick { S: go } }\n\
                   multiclock pair { charts { ping, pong } }";
        let specs = SpecSet::load(src).unwrap();
        let mut report = lint(&specs, &LintOptions::default()).unwrap();
        annotate_positions(&mut report, src);
        for f in &report.findings {
            assert!(f.position.is_some(), "unannotated finding: {f}");
        }
        let local = report
            .findings
            .iter()
            .find(|f| f.target.starts_with("pair/"))
            .expect("multiclock local finding");
        assert_eq!(local.position, Some((3, 12)), "points at `multiclock pair`");
    }

    #[test]
    fn findings_identical_with_and_without_optimizer() {
        use cesc_spec::SpecOptions;
        let src = format!(
            "{HS}\n\
             scesc pulse on clk {{ instances {{ M }} events {{ a }} tick {{ M: a }} }}\n\
             scesc beat on tock {{ instances {{ S }} events {{ z }} tick {{ S: z }} }}\n\
             multiclock pair {{ charts {{ pulse, beat }} }}\n\
             cesc gate {{ implies(hs, pulse) }}"
        );
        let with_opt = SpecSet::load(&src).unwrap();
        let no_opt = SpecSet::load_with(
            &src,
            SpecOptions {
                optimize: false,
                ..SpecOptions::new()
            },
        )
        .unwrap();
        let a = lint(&with_opt, &LintOptions::default()).unwrap();
        let b = lint(&no_opt, &LintOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn multiclock_locals_lint_with_coupling() {
        let specs = SpecSet::load(
            "scesc ping on ca { instances { M } events { req, ack } \
             tick { M: req } tick { M: ack } cause req -> ack; }\n\
             scesc pong on cb { instances { S } events { go } tick { S: go } }\n\
             multiclock pair { charts { ping, pong } }",
        )
        .unwrap();
        let report = lint(&specs, &LintOptions::default()).unwrap();
        // the ping local appears both standalone and inside `pair`
        assert!(report
            .findings
            .iter()
            .any(|f| f.target == "pair/ping" && f.rule == Rule::UnboundedCounter));
    }
}
