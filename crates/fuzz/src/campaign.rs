//! Bounded deterministic fuzz campaigns: generate → cross-check →
//! minimize → record.
//!
//! A campaign is a pure function of its [`CampaignConfig`]: the same
//! seed and case budget replay the same cases in the same order, which
//! is what lets `make verify-fuzz` run in CI as an ordinary
//! deterministic gate. Discrepancies are shrunk by a bounded
//! delta-debugging loop and handed back as corpus entries ready to
//! check in under `tests/corpus/`.

use std::fmt;

use cesc_spec::SpecSet;
use cesc_trace::Trace;
use rand::Rng;

use crate::corpus::{encode_differential, CorpusEntry, CorpusKind};
use crate::gen::SpecGen;
use crate::oracle::{self, total, CaseInput, Discrepancy, MultiCaseInput};
use crate::traces;

/// Campaign shape: seed, case budget, stimulus size, where to write
/// minimized failures.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every generated artifact derives from it.
    pub seed: u64,
    /// Number of cases to run.
    pub cases: usize,
    /// Stimulus trace length per case.
    pub trace_len: usize,
    /// Directory to write minimized failure entries into (`None`
    /// keeps them only in the report).
    pub corpus_out: Option<std::path::PathBuf>,
    /// Observability registry: per-stage spans (`fuzz.differential`,
    /// `fuzz.parser-sweep`, `fuzz.vcd-sweep`) and the `fuzz.*` tallies
    /// accumulate here. Disabled (no-op) by default.
    pub obs: cesc_obs::Obs,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xCE5C_F022,
            cases: 300,
            trace_len: 96,
            corpus_out: None,
            obs: cesc_obs::Obs::disabled(),
        }
    }
}

/// One recorded campaign failure: where it happened, what disagreed,
/// and the minimized reproducer.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Case index within the campaign.
    pub case: usize,
    /// The verdict disagreement.
    pub discrepancy: Discrepancy,
    /// The minimized, checked-in-able reproducer.
    pub entry: CorpusEntry,
}

/// Aggregate campaign result.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Cases executed.
    pub cases: usize,
    /// Documents rejected by parse/synthesis (errors, not failures).
    pub rejected: usize,
    /// Chart targets whose four legs agreed.
    pub charts_checked: usize,
    /// Assert compositions checked serial-vs-sharded.
    pub asserts_checked: usize,
    /// Asserts whose static proof agreed with the dynamic checker.
    pub proofs_checked: usize,
    /// Multiclock specs checked serial-vs-sharded.
    pub multis_checked: usize,
    /// Total scenario completions observed (sanity: stimuli reach
    /// accept states, the campaign is not idling in reset).
    pub matches: u64,
    /// Minimized verdict disagreements (empty on a green run).
    pub failures: Vec<Failure>,
}

impl CampaignReport {
    /// True when no leg disagreed anywhere.
    pub fn is_green(&self) -> bool {
        self.failures.is_empty()
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "differential: {} cases ({} rejected), {} charts + {} asserts + {} multiclock \
             targets agreed, {} proofs cross-checked, {} matches observed",
            self.cases,
            self.rejected,
            self.charts_checked,
            self.asserts_checked,
            self.multis_checked,
            self.proofs_checked,
            self.matches
        )?;
        for fl in &self.failures {
            writeln!(f, "  FAILURE case {}: {}", fl.case, fl.discrepancy)?;
        }
        Ok(())
    }
}

/// The differential campaign: every case cross-checks baseline
/// engine, optimized engine, sharded fleet and RTL interpreter on one
/// generated `(spec × trace × chunking × jobs)` point.
///
/// Case sources rotate through three families: freshly generated
/// documents (the bulk), the exact-64/65-symbol `GuardMask64`
/// boundary charts, and the AXI4-Lite/APB/Wishbone bus libraries.
pub fn run_differential(cfg: &CampaignConfig) -> CampaignReport {
    let _span = cfg.obs.span("fuzz.differential");
    let mut g = SpecGen::new(cfg.seed);
    let mut report = CampaignReport::default();
    let bus_src = cesc_protocols::bus_library_src();

    for case in 0..cfg.cases {
        report.cases += 1;
        // rotate the case family: mostly generated, with the boundary
        // charts and the bus libraries recurring on fixed strides
        let mut gen_doc = None;
        let source = if case % 16 == 7 {
            SpecGen::wide_doc(if case % 32 == 7 { 64 } else { 65 })
        } else if case % 8 == 3 {
            bus_src.clone()
        } else {
            let doc = g.document();
            let source = doc.source.clone();
            gen_doc = Some(doc);
            source
        };

        let trace = match SpecSet::load(&source) {
            Ok(set) => traces::stimulus_trace(g.rng(), &set, cfg.trace_len),
            Err(_) => traces::random_trace(g.rng(), 8, cfg.trace_len),
        };
        let chunk = traces::chunking(g.rng(), trace.len());
        let jobs = traces::jobs(g.rng());
        let input = CaseInput {
            source,
            trace,
            chunk,
            jobs,
        };
        match oracle::run_case(&input) {
            Ok(r) => {
                if r.rejected {
                    report.rejected += 1;
                }
                report.charts_checked += r.charts_checked;
                report.asserts_checked += r.asserts_checked;
                report.proofs_checked += r.proofs_checked;
                report.matches += r.matches;
            }
            Err(d) => record_failure(cfg, &mut report, case, *d, input),
        }

        if let Some(doc) = gen_doc.filter(|d| d.multiclock.is_some()) {
            let (mc_report, mc_failure) = multiclock_case(cfg, &mut g, case, &doc);
            report.rejected += usize::from(mc_report.rejected);
            report.multis_checked += mc_report.charts_checked;
            report.matches += mc_report.matches;
            if let Some((d, entry)) = mc_failure {
                report.failures.push(Failure {
                    case,
                    discrepancy: d,
                    entry,
                });
            }
        }
    }
    if let (Some(dir), false) = (&cfg.corpus_out, report.failures.is_empty()) {
        for fl in &report.failures {
            let _ = crate::corpus::write_entry(dir, &fl.entry);
        }
    }
    cfg.obs.counter(cesc_obs::key::FUZZ_CASES).add(report.cases as u64);
    cfg.obs.counter(cesc_obs::key::FUZZ_REJECTED).add(report.rejected as u64);
    cfg.obs
        .counter(cesc_obs::key::FUZZ_DISCREPANCIES)
        .add(report.failures.len() as u64);
    cfg.obs.counter(cesc_obs::key::FUZZ_MATCHES).add(report.matches);
    report
}

fn multiclock_case(
    cfg: &CampaignConfig,
    g: &mut SpecGen,
    case: usize,
    doc: &crate::gen::GeneratedDoc,
) -> (oracle::CaseReport, Option<(Discrepancy, CorpusEntry)>) {
    let Ok(set) = SpecSet::load(&doc.source) else {
        let r = oracle::CaseReport {
            rejected: true,
            ..Default::default()
        };
        return (r, None);
    };
    let horizon: u64 = g.rng().random_range(6..=30u64);
    let mut domains = Vec::new();
    for c in doc.charts.iter().take(2) {
        let period: u64 = g.rng().random_range(1..=3u64);
        let phase: u64 = g.rng().random_range(0..period);
        // ticks at phase, phase+period, ... strictly below the horizon
        let len = if horizon <= phase {
            0
        } else {
            (horizon - phase).div_ceil(period)
        } as usize;
        let trace = traces::stimulus_trace(g.rng(), &set, len.max(1));
        domains.push((c.clock.clone(), period, phase, trace));
    }
    let input = MultiCaseInput {
        source: doc.source.clone(),
        domains,
        chunk: traces::chunking(g.rng(), horizon as usize),
        jobs: traces::jobs(g.rng()),
    };
    match oracle::run_multiclock_case(&input) {
        Ok(r) => (r, None),
        Err(d) => {
            let entry = CorpusEntry {
                name: format!("diff-mc-{:x}-{case}", cfg.seed),
                kind: CorpusKind::Differential,
                bytes: input.source.into_bytes(),
            };
            (oracle::CaseReport::default(), Some((*d, entry)))
        }
    }
}

fn record_failure(
    cfg: &CampaignConfig,
    report: &mut CampaignReport,
    case: usize,
    d: Discrepancy,
    input: CaseInput,
) {
    let minimized = minimize(input);
    let entry = CorpusEntry {
        name: format!("diff-{}-{:x}-{case}", d.stage, cfg.seed),
        kind: CorpusKind::Differential,
        bytes: encode_differential(&minimized, &d.to_string()),
    };
    report.failures.push(Failure {
        case,
        discrepancy: d,
        entry,
    });
}

/// Bounded delta-debugging: shrink the trace, then the source, while
/// the case keeps failing. The budget caps total oracle re-runs so a
/// pathological case cannot stall a campaign.
pub fn minimize(input: CaseInput) -> CaseInput {
    let mut budget = 250usize;
    let fails = |i: &CaseInput, budget: &mut usize| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        oracle::run_case(i).is_err()
    };
    if !fails(&input, &mut budget) {
        return input; // flaky or budget-starved: keep as-is
    }
    let mut cur = input;

    // phase 1: remove trace spans, halving granularity
    let mut gran = (cur.trace.len() / 2).max(1);
    loop {
        let mut improved = false;
        let mut start = 0usize;
        while start < cur.trace.len() {
            let end = (start + gran).min(cur.trace.len());
            let candidate: Vec<_> = cur
                .trace
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < start || *i >= end)
                .map(|(_, v)| v)
                .collect();
            let cand = CaseInput {
                trace: Trace::from_elements(candidate),
                ..cur.clone()
            };
            if fails(&cand, &mut budget) {
                cur = cand;
                improved = true;
            } else {
                start = end;
            }
        }
        if gran == 1 && !improved {
            break;
        }
        if !improved {
            gran = (gran / 2).max(1);
        }
        if budget == 0 {
            break;
        }
    }

    // phase 2: drop source lines
    let mut li = 0usize;
    loop {
        let lines: Vec<&str> = cur.source.lines().collect();
        if li >= lines.len() || budget == 0 {
            break;
        }
        let shorter: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != li)
            .map(|(_, l)| *l)
            .collect::<Vec<_>>()
            .join("\n");
        let cand = CaseInput {
            source: shorter,
            ..cur.clone()
        };
        if fails(&cand, &mut budget) {
            cur = cand; // same index now names the next line
        } else {
            li += 1;
        }
    }
    cur
}

/// Result of a panic-freedom sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Inputs driven.
    pub cases: usize,
    /// Panic payloads caught (must be empty: parsers and readers
    /// reject with errors, never panics).
    pub panics: Vec<String>,
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sweep: {} inputs, {} panics", self.cases, self.panics.len())?;
        for p in &self.panics {
            writeln!(f, "  PANIC: {p}")?;
        }
        Ok(())
    }
}

/// Panic-freedom sweep over the chart and expression parsers: raw
/// hostile bytes, mutated valid documents, and token-soup guard
/// expressions.
pub fn run_parser_sweep(cfg: &CampaignConfig) -> SweepReport {
    let _span = cfg.obs.span("fuzz.parser-sweep");
    let mut g = SpecGen::new(cfg.seed ^ 0x09A5_CA11);
    let mut report = SweepReport::default();
    for case in 0..cfg.cases {
        let inputs: Vec<Vec<u8>> = match case % 3 {
            0 => vec![g.hostile_bytes(512)],
            1 => {
                let doc = g.document();
                vec![g.mutate_source(&doc.source), g.mutate_source(&doc.source)]
            }
            _ => vec![g.mutate_source(&SpecGen::wide_doc(64))],
        };
        for bytes in inputs {
            report.cases += 1;
            if let Err(p) = total::chart_parser(&bytes) {
                report.panics.push(format!("chart parser: {p}"));
            }
        }
        report.cases += 1;
        let e = g.expr_input();
        if let Err(p) = total::expr_parser(&e) {
            report.panics.push(format!("expr parser on {e:?}: {p}"));
        }
    }
    cfg.obs.counter(cesc_obs::key::FUZZ_CASES).add(report.cases as u64);
    report
}

/// Panic-freedom sweep over the streaming VCD readers: raw hostile
/// bytes and mutated well-formed dumps.
pub fn run_vcd_sweep(cfg: &CampaignConfig) -> SweepReport {
    let _span = cfg.obs.span("fuzz.vcd-sweep");
    let mut g = SpecGen::new(cfg.seed ^ 0x7CD_5EED);
    let mut report = SweepReport::default();
    let seed_set = SpecSet::load(
        "scesc hs on clk { instances { M, S } events { e0, e1, e2, e3 } \
         tick { M: e0 } tick { S: e1 } cause e0 -> e1; }",
    )
    .expect("seed document is well-formed");
    for case in 0..cfg.cases {
        let bytes = if case % 2 == 0 {
            g.hostile_bytes(768)
        } else {
            let len = 2 + case % 17;
            let valid = traces::valid_vcd(g.rng(), &seed_set, "clk", len);
            g.mutate_source(&valid)
        };
        report.cases += 1;
        if let Err(p) = total::vcd_reader(&bytes) {
            report.panics.push(format!("vcd reader: {p}"));
        }
        if let Err(p) = total::global_vcd_reader(&bytes) {
            report.panics.push(format!("global vcd reader: {p}"));
        }
    }
    cfg.obs.counter(cesc_obs::key::FUZZ_CASES).add(report.cases as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic() {
        let cfg = CampaignConfig {
            cases: 24,
            ..Default::default()
        };
        let a = run_differential(&cfg);
        let b = run_differential(&cfg);
        assert_eq!(a.charts_checked, b.charts_checked);
        assert_eq!(a.rejected, b.rejected);
        assert_eq!(a.matches, b.matches);
        assert!(a.is_green(), "{a}");
    }

    #[test]
    fn campaign_exercises_accept_paths() {
        let cfg = CampaignConfig {
            cases: 32,
            ..Default::default()
        };
        let r = run_differential(&cfg);
        assert!(r.charts_checked > 0);
        assert!(r.matches > 0, "stimuli never completed a scenario: {r}");
    }

    #[test]
    fn sweeps_find_no_panics() {
        let cfg = CampaignConfig {
            cases: 40,
            ..Default::default()
        };
        let p = run_parser_sweep(&cfg);
        assert!(p.panics.is_empty(), "{p}");
        let v = run_vcd_sweep(&cfg);
        assert!(v.panics.is_empty(), "{v}");
    }

    #[test]
    fn minimizer_shrinks_a_synthetic_failure() {
        // a case that "fails" by construction is hard to fabricate
        // without a real bug, so exercise the budget/identity path: a
        // passing case must come back unchanged
        let src = "scesc hs on clk { instances { M } events { a } tick { M: a } }";
        let set = SpecSet::load(src).unwrap();
        let mut g = SpecGen::new(5);
        let trace = traces::stimulus_trace(g.rng(), &set, 16);
        let input = CaseInput {
            source: src.to_owned(),
            trace: trace.clone(),
            chunk: 4,
            jobs: 2,
        };
        let out = minimize(input);
        assert_eq!(out.trace.len(), trace.len());
        assert_eq!(out.source, src);
    }
}
