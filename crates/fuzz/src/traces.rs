//! Random trace, chunking and VCD-stream generation over generated
//! alphabets.
//!
//! Purely uniform valuations almost never complete a scenario, so the
//! differential campaign would spend its budget in the monitors' reset
//! states. [`stimulus_trace`] therefore splices each chart's minimal
//! witness window (when one exists) between random segments — the same
//! trick the co-simulation property suite uses — so accept paths,
//! scoreboard traffic and reject paths are all exercised.

use cesc_expr::Valuation;
use cesc_semantics::witness_window;
use cesc_spec::SpecSet;
use cesc_trace::{write_vcd, Trace, VcdWriteOptions};
use rand::rngs::StdRng;
use rand::Rng;

/// A uniformly random trace over the first `symbols` alphabet bits.
pub fn random_trace(rng: &mut StdRng, symbols: usize, len: usize) -> Trace {
    let mask: u128 = if symbols >= 128 {
        u128::MAX
    } else {
        (1u128 << symbols) - 1
    };
    Trace::from_elements((0..len).map(|_| {
        let bits = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        Valuation::from_bits(bits & mask)
    }))
}

/// A stimulus trace for `set`: witness windows of its charts spliced
/// between sparse random segments, then lightly perturbed.
pub fn stimulus_trace(rng: &mut StdRng, set: &SpecSet, len: usize) -> Trace {
    let symbols = set.alphabet().len();
    let windows: Vec<Vec<Valuation>> = set
        .document()
        .charts
        .iter()
        .filter_map(|c| witness_window(c).ok())
        .collect();
    let mut t = Trace::with_capacity(len);
    while t.len() < len {
        if !windows.is_empty() && rng.random_bool(0.6) {
            let w = &windows[rng.random_range(0..windows.len())];
            for &v in w {
                // occasional single-bit damage turns an accept into a
                // near-miss — the interesting reject paths
                if symbols > 0 && rng.random_bool(0.08) {
                    let bit = rng.random_range(0..symbols) as u32;
                    t.push(Valuation::from_bits(v.bits() ^ (1u128 << bit)));
                } else {
                    t.push(v);
                }
            }
        } else {
            let gap = rng.random_range(1..=4usize);
            for _ in 0..gap {
                if rng.random_bool(0.3) {
                    let dense = random_trace(rng, symbols, 1);
                    t.push(dense[0]);
                } else {
                    t.push(Valuation::empty());
                }
            }
        }
    }
    Trace::from_elements(t.iter().take(len))
}

/// A chunk size for feeding the optimized/fleet paths: mostly small
/// (so chunk boundaries land mid-scenario), occasionally the whole
/// trace.
pub fn chunking(rng: &mut StdRng, trace_len: usize) -> usize {
    if rng.random_bool(0.2) {
        trace_len.max(1)
    } else {
        rng.random_range(1..=trace_len.clamp(1, 17))
    }
}

/// A shard count for the fleet leg.
pub fn jobs(rng: &mut StdRng) -> usize {
    rng.random_range(1..=4usize)
}

/// A well-formed VCD dump of a random trace over `set`'s alphabet,
/// with the given clock name — the seed input for the mutated-VCD
/// sweep.
pub fn valid_vcd(rng: &mut StdRng, set: &SpecSet, clock: &str, len: usize) -> String {
    let trace = random_trace(rng, set.alphabet().len(), len);
    let opts = VcdWriteOptions {
        clock_name: clock.to_owned(),
        ..VcdWriteOptions::default()
    };
    write_vcd(&trace, set.alphabet(), &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_trace_respects_symbol_mask() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = random_trace(&mut rng, 5, 100);
        assert_eq!(t.len(), 100);
        for v in t.iter() {
            assert_eq!(v.bits() >> 5, 0);
        }
    }

    #[test]
    fn stimulus_trace_has_requested_length() {
        let set = SpecSet::load(
            "scesc hs on clk { instances { M, S } events { req, ack } \
             tick { M: req } tick { S: ack } cause req -> ack; }",
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let t = stimulus_trace(&mut rng, &set, 64);
        assert_eq!(t.len(), 64);
        // the witness splicing must actually complete scenarios
        let m = set.chart_spec(0).unwrap();
        assert!(
            !m.monitor().scan_batch(t.as_slice()).matches.is_empty(),
            "stimulus never completed the scenario"
        );
    }

    #[test]
    fn chunking_is_positive_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in [1usize, 2, 50] {
            for _ in 0..50 {
                let c = chunking(&mut rng, len);
                assert!(c >= 1 && c <= len.max(1));
            }
        }
    }
}
