//! Seeded structured generators for CESC specification source text.
//!
//! Everything here is deterministic in the seed: the same
//! [`SpecGen::new`] seed produces byte-identical documents, which is
//! what lets a failing campaign case be replayed from its `(seed,
//! index)` coordinates alone.
//!
//! Generated documents are *mostly* valid by construction — positive
//! and negative occurrences within a tick are kept disjoint, arrows
//! point strictly forward and name real occurrences — but the
//! generator deliberately keeps a tail of awkward shapes (empty ticks,
//! guards that may contradict a negation, unconstrained charts) so the
//! parser/synthesizer error paths stay exercised. Hostile inputs for
//! the panic-freedom sweeps come from [`SpecGen::hostile_bytes`] and
//! [`SpecGen::mutate_source`].

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated chart: its name and declared clock.
#[derive(Debug, Clone)]
pub struct GeneratedChart {
    /// The chart name.
    pub name: String,
    /// The chart's declared clock.
    pub clock: String,
}

/// A generated specification document plus the structure metadata the
/// oracles need to drive it.
#[derive(Debug, Clone)]
pub struct GeneratedDoc {
    /// The full textual CESC source.
    pub source: String,
    /// The basic charts, in document order.
    pub charts: Vec<GeneratedChart>,
    /// Name of the generated `multiclock` spec, if any.
    pub multiclock: Option<String>,
    /// Name of the generated `implies(...)` composition, if any.
    pub assert: Option<String>,
}

/// The seeded source generator.
#[derive(Debug, Clone)]
pub struct SpecGen {
    rng: StdRng,
    serial: u64,
}

impl SpecGen {
    /// A generator whose whole output stream is a pure function of
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        SpecGen {
            rng: StdRng::seed_from_u64(seed),
            serial: 0,
        }
    }

    /// Direct access to the underlying RNG (the trace generators share
    /// the stream so a case is reproducible from one seed).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Generates one specification document.
    pub fn document(&mut self) -> GeneratedDoc {
        self.serial += 1;
        let serial = self.serial;
        let n_charts = self.rng.random_range(1..=3usize);
        let with_mc = n_charts >= 2 && self.rng.random_bool(0.3);

        let mut source = String::new();
        let mut charts = Vec::with_capacity(n_charts);
        // per-chart positive occurrences as (tick, event-name), for
        // cross-domain arrows
        let mut chart_positives: Vec<Vec<(usize, String)>> = Vec::with_capacity(n_charts);

        for ci in 0..n_charts {
            // multiclock members need disjoint clocks and (to keep
            // cross-arrow endpoints unambiguous) disjoint event pools
            let (clock, pool) = if with_mc && ci < 2 {
                (format!("mclk{ci}"), format!("m{ci}_e"))
            } else {
                ("clk".to_owned(), "e".to_owned())
            };
            let name = format!("g{serial}_c{ci}");
            let positives = self.chart(&mut source, &name, &clock, &pool);
            chart_positives.push(positives);
            charts.push(GeneratedChart { name, clock });
        }

        let multiclock = if with_mc {
            let name = format!("g{serial}_mc");
            self.multiclock(&mut source, &name, &charts[..2], &chart_positives[..2]);
            Some(name)
        } else {
            None
        };

        // an implies(...) composition over two same-clock charts
        let same_clock: Vec<&GeneratedChart> =
            charts.iter().filter(|c| c.clock == "clk").collect();
        let assert = if same_clock.len() >= 2 && self.rng.random_bool(0.3) {
            let name = format!("g{serial}_a");
            let a = same_clock[0].name.clone();
            let b = same_clock[1].name.clone();
            if self.rng.random_bool(0.2) {
                let _ = writeln!(source, "cesc {name} {{ implies(seq({a}, {a}), {b}) }}");
            } else {
                let _ = writeln!(source, "cesc {name} {{ implies({a}, {b}) }}");
            }
            Some(name)
        } else {
            None
        };

        GeneratedDoc {
            source,
            charts,
            multiclock,
            assert,
        }
    }

    /// Appends one chart to `source`; returns its positive
    /// occurrences as `(tick, event-name)`.
    fn chart(
        &mut self,
        source: &mut String,
        name: &str,
        clock: &str,
        pool: &str,
    ) -> Vec<(usize, String)> {
        let n_events = self.rng.random_range(2..=7usize);
        let n_ticks = self.rng.random_range(1..=4usize);
        let events: Vec<String> = (0..n_events).map(|i| format!("{pool}{i}")).collect();
        let n_props = self.rng.random_range(0..=2usize);
        let props: Vec<String> = (0..n_props).map(|i| format!("{pool}p{i}")).collect();

        let _ = writeln!(source, "scesc {name} on {clock} {{");
        let _ = writeln!(source, "    instances {{ M, S }}");
        let _ = writeln!(source, "    events {{ {} }}", events.join(", "));
        if !props.is_empty() {
            let _ = writeln!(source, "    props {{ {} }}", props.join(", "));
        }

        let mut positives: Vec<(usize, String)> = Vec::new();
        for t in 0..n_ticks {
            let mut pos: Vec<String> = Vec::new();
            let mut neg: Vec<String> = Vec::new();
            for e in &events {
                let roll = self.rng.random_range(0..100u32);
                if roll < 45 {
                    pos.push(e.clone());
                } else if roll < 60 {
                    neg.push(format!("!{e}"));
                }
            }
            // occasional guard on a positive occurrence, drawn from the
            // declared prop pool (event names would be a kind clash)
            if !pos.is_empty() && !props.is_empty() && self.rng.random_bool(0.3) {
                let gi = self.rng.random_range(0..pos.len());
                let gp = &props[self.rng.random_range(0..props.len())];
                let guard = if self.rng.random_bool(0.25) {
                    format!("!{gp}")
                } else {
                    gp.clone()
                };
                pos[gi] = format!("{} if {guard}", pos[gi]);
            }
            for p in &pos {
                let bare = p.split_whitespace().next().unwrap().to_owned();
                positives.push((t, bare));
            }
            if pos.is_empty() && neg.is_empty() {
                let _ = writeln!(source, "    tick;");
                continue;
            }
            // split occurrences across the two instances
            let mut m_occ: Vec<String> = Vec::new();
            let mut s_occ: Vec<String> = Vec::new();
            for (i, occ) in pos.iter().chain(neg.iter()).enumerate() {
                if i % 2 == 0 {
                    m_occ.push(occ.clone());
                } else {
                    s_occ.push(occ.clone());
                }
            }
            let mut line = String::from("    tick { ");
            if !m_occ.is_empty() {
                let _ = write!(line, "M: {}", m_occ.join(", "));
            }
            if !s_occ.is_empty() {
                if !m_occ.is_empty() {
                    line.push_str("; ");
                }
                let _ = write!(line, "S: {}", s_occ.join(", "));
            }
            line.push_str(" }");
            let _ = writeln!(source, "{line}");
        }

        // forward arrows between real occurrences
        let n_arrows = self.rng.random_range(0..=3usize);
        let mut emitted: Vec<(usize, String, usize, String)> = Vec::new();
        for _ in 0..n_arrows {
            if positives.len() < 2 {
                break;
            }
            let (t1, e1) = positives[self.rng.random_range(0..positives.len())].clone();
            let (t2, e2) = positives[self.rng.random_range(0..positives.len())].clone();
            if t1 >= t2 {
                continue;
            }
            let key = (t1, e1.clone(), t2, e2.clone());
            if emitted.contains(&key) {
                continue;
            }
            let _ = writeln!(source, "    cause {e1}@{t1} -> {e2}@{t2};");
            emitted.push(key);
        }
        let _ = writeln!(source, "}}");
        positives
    }

    /// Appends a `multiclock` item grouping the first two charts, with
    /// cross-domain arrows between events that occur exactly once.
    fn multiclock(
        &mut self,
        source: &mut String,
        name: &str,
        members: &[GeneratedChart],
        positives: &[Vec<(usize, String)>],
    ) {
        let _ = writeln!(source, "multiclock {name} {{");
        let _ = writeln!(
            source,
            "    charts {{ {}, {} }}",
            members[0].name, members[1].name
        );
        let unique = |occ: &[(usize, String)]| -> Vec<String> {
            let mut names: Vec<String> = Vec::new();
            for (_, e) in occ {
                if occ.iter().filter(|(_, o)| o == e).count() == 1 && !names.contains(e) {
                    names.push(e.clone());
                }
            }
            names
        };
        let from = unique(&positives[0]);
        let to = unique(&positives[1]);
        if !from.is_empty() && !to.is_empty() {
            for _ in 0..self.rng.random_range(0..=2usize) {
                let a = &from[self.rng.random_range(0..from.len())];
                let b = &to[self.rng.random_range(0..to.len())];
                let _ = writeln!(source, "    cause {a} -> {b};");
            }
        }
        let _ = writeln!(source, "}}");
    }

    /// A chart over exactly `n` declared symbols whose guard masks
    /// reference the first and last of them — `wide_doc(64)` puts bit
    /// 63 in every mask (the [`u64`] narrowing boundary), `wide_doc(65)`
    /// puts bit 64 there (which must refuse to narrow).
    pub fn wide_doc(n: usize) -> String {
        assert!((2..=128).contains(&n), "alphabet budget is 128 symbols");
        let events: Vec<String> = (0..n).map(|i| format!("e{i}")).collect();
        let last = &events[n - 1];
        format!(
            "scesc wide{n} on clk {{\n    instances {{ M }}\n    events {{ {} }}\n    \
             tick {{ M: e0, {last} }}\n    tick {{ M: {last}, !e0 }}\n    \
             cause e0@0 -> {last}@1;\n}}\n",
            events.join(", ")
        )
    }

    /// `max_len` arbitrary bytes — the fully hostile end of the parser
    /// sweeps. Interior NULs, invalid UTF-8 and control characters
    /// included.
    pub fn hostile_bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.rng.random_range(0..=max_len);
        (0..len).map(|_| self.rng.random_range(0..=255u32) as u8).collect()
    }

    /// Mutates valid source text: byte flips, truncations, line
    /// deletions/duplications and keyword splices. The result is
    /// usually *almost* a specification — the inputs most likely to
    /// reach deep parser states before failing.
    pub fn mutate_source(&mut self, src: &str) -> Vec<u8> {
        let mut bytes = src.as_bytes().to_vec();
        let rounds = self.rng.random_range(1..=4usize);
        for _ in 0..rounds {
            if bytes.is_empty() {
                break;
            }
            match self.rng.random_range(0..5u32) {
                0 => {
                    // flip one byte
                    let i = self.rng.random_range(0..bytes.len());
                    bytes[i] = self.rng.random_range(0..=255u32) as u8;
                }
                1 => {
                    // truncate
                    let i = self.rng.random_range(0..bytes.len());
                    bytes.truncate(i);
                }
                2 => {
                    // delete a line
                    let text = String::from_utf8_lossy(&bytes).into_owned();
                    let lines: Vec<&str> = text.lines().collect();
                    if lines.len() > 1 {
                        let del = self.rng.random_range(0..lines.len());
                        bytes = lines
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| *i != del)
                            .map(|(_, l)| *l)
                            .collect::<Vec<_>>()
                            .join("\n")
                            .into_bytes();
                    }
                }
                3 => {
                    // duplicate a span
                    let i = self.rng.random_range(0..bytes.len());
                    let j = self.rng.random_range(i..bytes.len());
                    let span: Vec<u8> = bytes[i..=j.min(i + 32)].to_vec();
                    let at = self.rng.random_range(0..=bytes.len());
                    bytes.splice(at..at, span);
                }
                _ => {
                    // splice a keyword fragment somewhere surprising
                    const FRAGS: &[&str] = &[
                        "scesc", "tick {", "cause", "@", "->", "}}", "implies(", "multiclock",
                        "events {", "if", "!", "charts", "on", ";;", "\0",
                    ];
                    let frag = FRAGS[self.rng.random_range(0..FRAGS.len())];
                    let at = self.rng.random_range(0..=bytes.len());
                    bytes.splice(at..at, frag.bytes());
                }
            }
        }
        bytes
    }

    /// A guard-expression string for the expression-parser sweep:
    /// sometimes well-formed, sometimes a shuffled token soup.
    pub fn expr_input(&mut self) -> String {
        if self.rng.random_bool(0.5) {
            // plausibly well-formed, by nested construction
            self.expr_tree(3)
        } else {
            const TOKS: &[&str] = &[
                "e0", "e1", "p2", "!", "&", "|", "(", ")", "true", "false", "Chk_evt", "(e0)",
                ",", "@", "if", "", " ",
            ];
            let n = self.rng.random_range(0..16usize);
            (0..n)
                .map(|_| TOKS[self.rng.random_range(0..TOKS.len())])
                .collect::<Vec<_>>()
                .join(" ")
        }
    }

    fn expr_tree(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.random_bool(0.4) {
            return match self.rng.random_range(0..4u32) {
                0 => "true".to_owned(),
                1 => "false".to_owned(),
                2 => format!("e{}", self.rng.random_range(0..6u32)),
                _ => format!("Chk_evt(e{})", self.rng.random_range(0..6u32)),
            };
        }
        match self.rng.random_range(0..3u32) {
            0 => format!("!{}", self.expr_tree(depth - 1)),
            1 => format!(
                "({} & {})",
                self.expr_tree(depth - 1),
                self.expr_tree(depth - 1)
            ),
            _ => format!(
                "({} | {})",
                self.expr_tree(depth - 1),
                self.expr_tree(depth - 1)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_chart::parse_document;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SpecGen::new(42);
        let mut b = SpecGen::new(42);
        for _ in 0..20 {
            assert_eq!(a.document().source, b.document().source);
        }
    }

    #[test]
    fn most_documents_parse() {
        let mut g = SpecGen::new(7);
        let mut ok = 0usize;
        const N: usize = 200;
        for _ in 0..N {
            if parse_document(&g.document().source).is_ok() {
                ok += 1;
            }
        }
        // the generator intentionally keeps some invalid tail, but the
        // differential campaign needs a high valid yield to be useful
        assert!(ok * 10 >= N * 7, "only {ok}/{N} generated documents parsed");
    }

    #[test]
    fn wide_docs_parse_with_exact_alphabet() {
        for n in [2, 63, 64, 65, 128] {
            let doc = parse_document(&SpecGen::wide_doc(n)).unwrap();
            assert_eq!(doc.alphabet.len(), n, "wide_doc({n})");
        }
    }

    #[test]
    fn hostile_and_mutated_inputs_are_deterministic() {
        let mut a = SpecGen::new(9);
        let mut b = SpecGen::new(9);
        let src = a.document().source;
        let _ = b.document();
        assert_eq!(a.hostile_bytes(64), b.hostile_bytes(64));
        assert_eq!(a.mutate_source(&src), b.mutate_source(&src));
        assert_eq!(a.expr_input(), b.expr_input());
    }
}
