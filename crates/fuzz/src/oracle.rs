//! Differential verdict oracles: four independent implementations of
//! the same verdict function, cross-checked on every generated case.
//!
//! For a single-clock chart the four legs are
//!
//! 1. the **baseline engine** — the raw compilation of the synthesized
//!    monitor, scanned in one batch;
//! 2. the **optimized engine** — the pass-pipeline monitor compiled
//!    with the optimizing options, fed in arbitrary chunks;
//! 3. the **sharded fleet** — `cesc-par`'s worker threads over an
//!    arbitrary shard count and the same chunking;
//! 4. the **RTL interpreter** — the emitted Verilog evaluated
//!    cycle-accurately against the engine by `cesc-rtl`.
//!
//! A fifth leg cross-checks the *static* counter-bounds analysis
//! (`cesc_core::infer_bounds`, the basis of `cesc lint` and RTL width
//! inference) against the counts the monitor actually reaches: any
//! observed count above its inferred upper bound is a soundness
//! counterexample and fails the case like a verdict disagreement.
//!
//! A sixth leg covers the `cesc-obs` instrumentation itself: the
//! baseline and optimized fleets each run under their own enabled
//! registry, and the semantic counters they report (`engine.ticks`,
//! `engine.matches`, `engine.underflows`) must be identical — a
//! counter drifting from the verdicts the other legs agreed on is a
//! bug in the metrics plumbing, and fails the case the same way.
//!
//! An eighth leg targets the bit-sliced 64-tick engine: the same
//! optimized monitor compiled with and without
//! [`cesc_core::CompileOptions::bit_slice`] must produce identical
//! `ScanReport`s (full equality — shared state numbering), and the
//! trace-segment speculative executor (`cesc_par::scan_segmented`)
//! stitched over the case's chunk size as its window split must
//! reproduce the serial verdict exactly. This is the dynamic pin
//! behind `--no-simd` / `--segments`: the transpose, word-evaluation
//! and window-adoption machinery can never change a verdict.
//!
//! A seventh leg cross-checks the *static prover*
//! (`cesc_core::prove_implication`, the engine behind `cesc prove`)
//! against the dynamic checker: an assert the prover discharged as
//! PROVED must never record a violation on the case's stimulus, and a
//! REFUTED assert's counterexample must have replayed through the
//! engine as a real violation. Either mismatch is a prover soundness
//! bug and fails the case.
//!
//! Any disagreement is a [`Discrepancy`] carrying enough context to
//! replay and minimize the case. Assert compositions are checked
//! serial-vs-sharded, and multiclock specs serial-vs-sharded over an
//! interleaved global run.

use cesc_core::{CompileOptions, CompiledMonitor, MonitorExec, ScanReport};
use cesc_expr::Valuation;
use cesc_hdl::VerilogOptions;
use cesc_par::{
    plan_shards, scan_segmented, scan_sharded, scan_sharded_global, Fleet, ParOptions,
    SegmentOptions,
};
use cesc_rtl::{cosim_scan, report_agrees};
use cesc_spec::{SpecSet, TargetRef};
use cesc_trace::{ClockDomain, ClockSet, GlobalRun, Trace};

/// Scans a compiled monitor over `trace` fed in `chunk`-sized pieces.
fn scan_chunked(monitor: &CompiledMonitor, trace: &[Valuation], chunk: usize) -> ScanReport {
    let mut exec = monitor.executor();
    let mut hits = Vec::new();
    for c in trace.chunks(chunk.max(1)) {
        exec.feed(c, &mut hits);
    }
    exec.finish(hits)
}

/// One single-clock differential case: a document, a stimulus trace
/// and the execution geometry.
#[derive(Debug, Clone)]
pub struct CaseInput {
    /// The specification source text.
    pub source: String,
    /// The stimulus trace.
    pub trace: Trace,
    /// Chunk size for the optimized-engine and fleet legs.
    pub chunk: usize,
    /// Shard count for the fleet leg.
    pub jobs: usize,
}

/// Where two implementations disagreed.
#[derive(Debug, Clone)]
pub struct Discrepancy {
    /// Which pair of legs diverged (e.g. `"optimized-engine"`).
    pub stage: String,
    /// The chart / spec / assert the verdicts were about.
    pub target: String,
    /// Human-readable detail of the two verdicts.
    pub detail: String,
}

impl std::fmt::Display for Discrepancy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.stage, self.target, self.detail)
    }
}

/// What a case that did not diverge looked like.
#[derive(Debug, Clone, Default)]
pub struct CaseReport {
    /// The document was rejected by parse/synthesis (a legitimate
    /// outcome for generated input — errors are fine, panics are not).
    pub rejected: bool,
    /// Charts whose four legs all agreed.
    pub charts_checked: usize,
    /// Assert compositions checked serial-vs-sharded.
    pub asserts_checked: usize,
    /// Asserts whose static proof agreed with the dynamic checker
    /// (PROVED never violated; REFUTED counterexample replayed).
    pub proofs_checked: usize,
    /// Total matches observed across agreeing charts (a campaign-level
    /// sanity signal that stimuli actually complete scenarios).
    pub matches: u64,
}

/// Runs the four-way differential plus the bound-soundness leg on
/// one case.
///
/// # Errors
///
/// Returns the first [`Discrepancy`] between any two legs.
pub fn run_case(input: &CaseInput) -> Result<CaseReport, Box<Discrepancy>> {
    let mut report = CaseReport::default();
    let set = match SpecSet::load(&input.source) {
        Ok(s) => s,
        Err(_) => {
            report.rejected = true;
            return Ok(report);
        }
    };
    let trace = input.trace.as_slice();
    let chunk = input.chunk.max(1);

    // compile every chart once; charts the pipeline rejects
    // (unsatisfiable grids etc.) are skipped, not failures
    let mut compiled_idx = Vec::new();
    for idx in 0..set.document().charts.len() {
        if set.chart_spec(idx).is_ok() {
            compiled_idx.push(idx);
        }
    }

    // leg 1 for every chart: the baseline engine
    let baselines: Vec<_> = compiled_idx
        .iter()
        .map(|&idx| {
            let spec = set.chart_spec(idx).expect("compiled above");
            (idx, scan_chunked(spec.baseline(), trace, trace.len()))
        })
        .collect();

    // leg 2: optimized engine, chunk-fed
    for &(idx, ref base) in &baselines {
        let spec = set.chart_spec(idx).expect("compiled above");
        let name = set.target_name(TargetRef::Chart(idx)).to_owned();
        let opt = scan_chunked(spec.compiled(), trace, chunk);
        if opt.matches != base.matches || opt.ticks != base.ticks || opt.underflows != base.underflows
        {
            return Err(Box::new(Discrepancy {
                stage: "optimized-engine".into(),
                target: name,
                detail: format!(
                    "baseline matches {:?} (ticks {}, underflows {}) vs optimized {:?} ({}, {})",
                    base.matches, base.ticks, base.underflows, opt.matches, opt.ticks,
                    opt.underflows
                ),
            }));
        }
    }

    // leg 2b: the bit-sliced 64-tick engine against the scalar
    // compilation of the *same* optimized monitor (full ScanReport
    // equality — state numbering is shared, so nothing is masked),
    // plus the trace-segment speculative executor stitched over the
    // case's chunk size as its window split
    for &(idx, ref base) in &baselines {
        let spec = set.chart_spec(idx).expect("compiled above");
        let name = set.target_name(TargetRef::Chart(idx)).to_owned();
        let sliced_monitor = spec.monitor().compiled_with(&CompileOptions::optimized());
        let scalar_monitor = spec.monitor().compiled_with(&CompileOptions {
            bit_slice: false,
            ..CompileOptions::optimized()
        });
        let sliced = scan_chunked(&sliced_monitor, trace, chunk);
        let scalar = scan_chunked(&scalar_monitor, trace, chunk);
        if sliced != scalar {
            return Err(Box::new(Discrepancy {
                stage: "bit-sliced-engine".into(),
                target: name,
                detail: format!(
                    "scalar matches {:?} (ticks {}, underflows {}) vs sliced {:?} ({}, {})",
                    scalar.matches, scalar.ticks, scalar.underflows, sliced.matches,
                    sliced.ticks, sliced.underflows
                ),
            }));
        }
        let seg_opts = SegmentOptions {
            jobs: input.jobs.max(1),
            window: chunk,
            ..SegmentOptions::default()
        };
        let seg = scan_segmented(
            &sliced_monitor,
            sliced_monitor.touched_symbols(),
            trace,
            &seg_opts,
        );
        if seg.report != sliced {
            return Err(Box::new(Discrepancy {
                stage: "segmented-engine".into(),
                target: name,
                detail: format!(
                    "serial matches {:?} (ticks {}) vs segmented({} jobs, window {}) {:?} ({}; \
                     {} adopted, {} replayed)",
                    sliced.matches, sliced.ticks, input.jobs, chunk, seg.report.matches,
                    seg.report.ticks, seg.adopted, seg.replayed
                ),
            }));
        }
        if sliced.matches != base.matches
            || sliced.ticks != base.ticks
            || sliced.underflows != base.underflows
        {
            return Err(Box::new(Discrepancy {
                stage: "bit-sliced-baseline".into(),
                target: name,
                detail: format!(
                    "baseline matches {:?} (ticks {}, underflows {}) vs sliced {:?} ({}, {})",
                    base.matches, base.ticks, base.underflows, sliced.matches, sliced.ticks,
                    sliced.underflows
                ),
            }));
        }
    }

    // leg 3: the sharded fleet (charts + asserts in one fleet)
    let mut fleet = Fleet::new();
    for &(idx, _) in &baselines {
        let spec = set.chart_spec(idx).expect("compiled above");
        fleet.add_compiled(spec.compiled().clone());
    }
    let mut assert_names = Vec::new();
    let mut assert_idx = Vec::new();
    for idx in 0..set.document().compositions.len() {
        if let Ok(a) = set.assert_spec(idx) {
            assert_names.push(a.name().to_owned());
            assert_idx.push(idx);
            fleet.add_assert(cesc_par::AssertSpec::new(
                a.name(),
                a.clock(),
                a.antecedent().clone(),
                a.consequent().clone(),
            ));
        }
    }
    if !fleet.is_empty() {
        let opts = ParOptions::default();
        let sharded = scan_sharded(&fleet, &plan_shards(&fleet, input.jobs), &opts, trace, chunk);
        let serial = scan_sharded(&fleet, &plan_shards(&fleet, 1), &opts, trace, chunk);
        for (i, &(idx, ref base)) in baselines.iter().enumerate() {
            let name = set.target_name(TargetRef::Chart(idx)).to_owned();
            let got = sharded.singles[i].log.all().unwrap_or(&[]);
            if got != base.matches.as_slice() || sharded.singles[i].ticks != base.ticks {
                return Err(Box::new(Discrepancy {
                    stage: "sharded-fleet".into(),
                    target: name,
                    detail: format!(
                        "baseline matches {:?} vs fleet({} jobs) {:?}",
                        base.matches, input.jobs, got
                    ),
                }));
            }
        }
        for (i, name) in assert_names.iter().enumerate() {
            let (a, b) = (&serial.asserts[i], &sharded.asserts[i]);
            if a.verdict != b.verdict
                || a.fulfilled != b.fulfilled
                || a.violation_count != b.violation_count
                || a.outstanding != b.outstanding
            {
                return Err(Box::new(Discrepancy {
                    stage: "sharded-assert".into(),
                    target: name.clone(),
                    detail: format!(
                        "serial {:?}/{}+{} vs sharded({} jobs) {:?}/{}+{}",
                        a.verdict, a.fulfilled, a.violation_count, input.jobs, b.verdict,
                        b.fulfilled, b.violation_count
                    ),
                }));
            }
            report.asserts_checked += 1;
        }

        // leg 7: the static prover against the dynamic checker — a
        // PROVED assert must never be violated by any stimulus, and a
        // REFUTED assert ships an engine-confirmed counterexample
        for (i, &comp) in assert_idx.iter().enumerate() {
            let Ok(proof) = set.proof(comp) else { continue };
            match proof.counterexample() {
                None if serial.asserts[i].violation_count > 0 => {
                    return Err(Box::new(Discrepancy {
                        stage: "prover-soundness".into(),
                        target: assert_names[i].clone(),
                        detail: format!(
                            "statically PROVED but the stimulus produced {} violation(s)",
                            serial.asserts[i].violation_count
                        ),
                    }));
                }
                Some(cx) if !cx.confirmed => {
                    return Err(Box::new(Discrepancy {
                        stage: "prover-replay".into(),
                        target: assert_names[i].clone(),
                        detail: format!(
                            "{}-tick counterexample did not replay as an engine violation",
                            cx.trace.len()
                        ),
                    }));
                }
                _ => {}
            }
            report.proofs_checked += 1;
        }
    }

    // leg 4: the RTL interpreter against the baseline verdicts
    for &(idx, ref base) in &baselines {
        let spec = set.chart_spec(idx).expect("compiled above");
        let name = set.target_name(TargetRef::Chart(idx)).to_owned();
        match cosim_scan(
            spec.monitor(),
            set.alphabet(),
            &VerilogOptions::default(),
            input.trace.iter(),
        ) {
            Err(d) => {
                return Err(Box::new(Discrepancy {
                    stage: "rtl-cosim".into(),
                    target: name,
                    detail: d.to_string(),
                }));
            }
            Ok(r) => {
                if !report_agrees(&r, base) {
                    return Err(Box::new(Discrepancy {
                        stage: "rtl-verdict".into(),
                        target: name,
                        detail: format!(
                            "engine matches {:?} vs RTL {:?}",
                            base.matches, r.matches
                        ),
                    }));
                }
            }
        }
        report.charts_checked += 1;
        report.matches += base.matches.len() as u64;
    }

    // leg 5: bound soundness — the static interval analysis
    // (`cesc_core::infer_bounds`, the basis of `cesc lint` and the
    // inferred RTL counter widths) must cover every count the
    // synthesized monitor actually reaches on the stimulus
    for &(idx, _) in &baselines {
        let spec = set.chart_spec(idx).expect("compiled above");
        let name = set.target_name(TargetRef::Chart(idx)).to_owned();
        if let Some(d) = bound_soundness(&name, spec, set.alphabet(), trace) {
            return Err(Box::new(d));
        }
    }

    // leg 6: obs counter equivalence — the baseline fleet (serial)
    // and the optimized fleet (sharded, arbitrary chunking) each run
    // under their own enabled registry; the semantic counters both
    // report must agree, so the instrumentation is held to the same
    // differential standard as the verdicts
    if let Some(d) = obs_counter_equivalence(&set, &baselines, trace, chunk, input.jobs) {
        return Err(Box::new(d));
    }
    Ok(report)
}

/// Leg 6 body: compares the `engine.*` counters recorded by a serial
/// baseline-fleet run against a sharded optimized-fleet run over the
/// same stimulus.
fn obs_counter_equivalence(
    set: &SpecSet,
    baselines: &[(usize, ScanReport)],
    trace: &[Valuation],
    chunk: usize,
    jobs: usize,
) -> Option<Discrepancy> {
    if baselines.is_empty() {
        return None;
    }
    let mut base_fleet = Fleet::new();
    let mut opt_fleet = Fleet::new();
    for &(idx, _) in baselines {
        let spec = set.chart_spec(idx).expect("compiled above");
        base_fleet.add_compiled(spec.baseline().clone());
        opt_fleet.add_compiled(spec.compiled().clone());
    }
    let obs_base = cesc_obs::Obs::enabled();
    let obs_opt = cesc_obs::Obs::enabled();
    let base_opts = ParOptions {
        obs: obs_base.clone(),
        ..ParOptions::default()
    };
    let opt_opts = ParOptions {
        obs: obs_opt.clone(),
        ..ParOptions::default()
    };
    scan_sharded(
        &base_fleet,
        &plan_shards(&base_fleet, 1),
        &base_opts,
        trace,
        trace.len().max(1),
    );
    scan_sharded(&opt_fleet, &plan_shards(&opt_fleet, jobs), &opt_opts, trace, chunk);
    let base_report = obs_base.report("fuzz");
    let opt_report = obs_opt.report("fuzz");
    for key in [
        cesc_obs::key::ENGINE_TICKS,
        cesc_obs::key::ENGINE_MATCHES,
        cesc_obs::key::ENGINE_UNDERFLOWS,
    ] {
        let (b, o) = (base_report.counter(key), opt_report.counter(key));
        if b != o {
            return Some(Discrepancy {
                stage: "obs-counters".into(),
                target: "<fleet>".into(),
                detail: format!("baseline registry {key}={b} vs optimized({jobs} jobs)={o}"),
            });
        }
    }
    None
}

/// Steps the *synthesized* monitor (the form the bounds were inferred
/// on) over `trace`, recording the maximum scoreboard count of every
/// tracked event, and reports a discrepancy when any observed count
/// exceeds its static upper bound — a counterexample to the abstract
/// interpretation's soundness.
fn bound_soundness(
    target: &str,
    spec: &cesc_spec::ChartSpec,
    ab: &cesc_expr::Alphabet,
    trace: &[Valuation],
) -> Option<Discrepancy> {
    let monitor = spec.synthesized();
    let bounds = spec.bounds();
    let events = monitor.scoreboard_events();
    let mut maxima = vec![0u32; events.len()];
    let mut exec = MonitorExec::new(monitor);
    for &v in trace {
        exec.step(v);
        for (slot, &e) in events.iter().enumerate() {
            maxima[slot] = maxima[slot].max(exec.scoreboard().count(e));
        }
    }
    for (slot, &e) in events.iter().enumerate() {
        let Some(bound) = bounds.bound_for(e) else {
            continue;
        };
        if let Some(hi) = bound.hi {
            if u64::from(maxima[slot]) > hi {
                return Some(Discrepancy {
                    stage: "bound-soundness".into(),
                    target: target.to_owned(),
                    detail: format!(
                        "static bound of `{}` is {bound} but the monitor reached count {}",
                        ab.name(e),
                        maxima[slot]
                    ),
                });
            }
        }
    }
    None
}

/// One multiclock differential case: per-clock traces interleaved on a
/// generated schedule, checked serial-vs-sharded.
#[derive(Debug, Clone)]
pub struct MultiCaseInput {
    /// The specification source text (must contain a multiclock spec).
    pub source: String,
    /// `(clock name, period, phase, trace)` per domain.
    pub domains: Vec<(String, u64, u64, Trace)>,
    /// Chunk size for the fleet leg.
    pub chunk: usize,
    /// Shard count for the fleet leg.
    pub jobs: usize,
}

/// Runs the serial-vs-sharded differential on every multiclock spec
/// of the document.
///
/// # Errors
///
/// Returns the first [`Discrepancy`] between the two legs.
pub fn run_multiclock_case(input: &MultiCaseInput) -> Result<CaseReport, Box<Discrepancy>> {
    let mut report = CaseReport::default();
    let set = match SpecSet::load(&input.source) {
        Ok(s) => s,
        Err(_) => {
            report.rejected = true;
            return Ok(report);
        }
    };
    let mut clocks = ClockSet::new();
    let mut traces = Vec::new();
    for (name, period, phase, trace) in &input.domains {
        let id = clocks.add(ClockDomain::new(name, *period, *phase));
        traces.push((id, trace.clone()));
    }
    let run = match GlobalRun::interleave(&clocks, &traces) {
        Ok(r) => r,
        Err(_) => {
            // inconsistent schedule/length combination — a skip, the
            // campaign's length calculator should make this rare
            report.rejected = true;
            return Ok(report);
        }
    };

    for idx in 0..set.document().multiclock.len() {
        let Ok(spec) = set.multi_spec(idx) else { continue };
        let name = set.target_name(TargetRef::Multi(idx)).to_owned();
        let serial = spec.monitor().scan(&clocks, &run);

        let mut fleet = Fleet::new();
        fleet.add_compiled_multiclock(spec.compiled().clone());
        let sharded = scan_sharded_global(
            &fleet,
            &plan_shards(&fleet, input.jobs),
            &clocks,
            &ParOptions::default(),
            run.as_slice(),
            input.chunk.max(1),
        );
        let got = sharded.multis[0].log.all().unwrap_or(&[]);
        if got != serial.as_slice() {
            return Err(Box::new(Discrepancy {
                stage: "sharded-multiclock".into(),
                target: name,
                detail: format!(
                    "serial matches {:?} vs fleet({} jobs) {:?}",
                    serial, input.jobs, got
                ),
            }));
        }
        report.charts_checked += 1;
        report.matches += serial.len() as u64;
    }
    Ok(report)
}

/// Panic-freedom wrappers: the parsers and the VCD reader must reject
/// hostile input with an error, never a panic. Each returns the panic
/// payload if one escaped.
pub mod total {
    use cesc_expr::{Alphabet, NameResolution, SymbolKind};
    use cesc_trace::{GlobalVcdStream, VcdClockSpec, VcdStream};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn payload(e: Box<dyn std::any::Any + Send>) -> String {
        e.downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| e.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned())
    }

    /// Drives the chart parser over arbitrary bytes (lossily decoded —
    /// the CLI path reads files as UTF-8, but the parser itself must
    /// be total on any `&str`).
    pub fn chart_parser(bytes: &[u8]) -> Result<(), String> {
        let text = String::from_utf8_lossy(bytes);
        catch_unwind(AssertUnwindSafe(|| {
            let _ = cesc_chart::parse_document(&text);
        }))
        .map_err(payload)
    }

    /// Drives the guard-expression parser over arbitrary text.
    pub fn expr_parser(text: &str) -> Result<(), String> {
        catch_unwind(AssertUnwindSafe(|| {
            let mut ab = Alphabet::new();
            let _ = cesc_expr::parse_expr(text, &mut ab, NameResolution::Intern(SymbolKind::Event));
        }))
        .map_err(payload)
    }

    /// Drives the streaming VCD reader (header parse + full drain)
    /// over arbitrary bytes.
    pub fn vcd_reader(bytes: &[u8]) -> Result<(), String> {
        catch_unwind(AssertUnwindSafe(|| {
            let mut ab = Alphabet::new();
            for i in 0..4 {
                ab.event(&format!("e{i}"));
            }
            if let Ok(mut s) = VcdStream::from_reader(bytes, &ab, "clk") {
                let mut buf = Vec::new();
                while matches!(s.next_chunk(&mut buf, 64), Ok(n) if n > 0) {}
            }
        }))
        .map_err(payload)
    }

    /// Drives the multi-clock VCD reader over arbitrary bytes.
    pub fn global_vcd_reader(bytes: &[u8]) -> Result<(), String> {
        catch_unwind(AssertUnwindSafe(|| {
            let mut ab = Alphabet::new();
            for i in 0..4 {
                ab.event(&format!("e{i}"));
            }
            let specs = [VcdClockSpec::new("clk1"), VcdClockSpec::new("clk2")];
            if let Ok(mut s) = GlobalVcdStream::from_reader(bytes, &ab, &specs) {
                let mut buf = Vec::new();
                while matches!(s.next_chunk(&mut buf, 64), Ok(n) if n > 0) {}
            }
        }))
        .map_err(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_protocols::bus_library_src;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bus_library_agrees_on_stimulus() {
        let set = SpecSet::load(&bus_library_src()).unwrap();
        let mut rng = StdRng::seed_from_u64(0xB05);
        let trace = crate::traces::stimulus_trace(&mut rng, &set, 120);
        let report = run_case(&CaseInput {
            source: bus_library_src(),
            trace,
            chunk: 7,
            jobs: 3,
        })
        .expect("bus library legs agree");
        assert!(!report.rejected);
        assert_eq!(report.charts_checked, 9);
    }

    #[test]
    fn hostile_bytes_never_panic_the_parsers() {
        let mut g = crate::gen::SpecGen::new(0xFEED);
        for _ in 0..50 {
            let bytes = g.hostile_bytes(256);
            total::chart_parser(&bytes).unwrap();
            total::vcd_reader(&bytes).unwrap();
            total::global_vcd_reader(&bytes).unwrap();
            let e = g.expr_input();
            total::expr_parser(&e).unwrap();
        }
    }

    #[test]
    fn multiclock_case_runs_clean() {
        // the Fig 2 read protocol through the multiclock differential
        let src = cesc_protocols::readproto::MULTI_CLOCK_SRC;
        let set = SpecSet::load(src).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let t1 = crate::traces::stimulus_trace(&mut rng, &set, 12);
        let t2 = crate::traces::stimulus_trace(&mut rng, &set, 12);
        let report = run_multiclock_case(&MultiCaseInput {
            source: src.to_owned(),
            domains: vec![
                ("clk1".into(), 1, 0, t1),
                ("clk2".into(), 1, 0, t2),
            ],
            chunk: 3,
            jobs: 2,
        })
        .expect("multiclock legs agree");
        assert!(!report.rejected);
        assert_eq!(report.charts_checked, 1);
    }
}
