//! The checked-in regression corpus: minimized fuzz failures (and
//! hand-seeded hostile inputs) replayed as ordinary unit tests.
//!
//! Entry kinds are keyed by file extension:
//!
//! * `.cesc` — specification source. If the file starts with the
//!   `cesc-fuzz differential case` header, it embeds a trace and
//!   execution geometry and is replayed through the full four-way
//!   differential oracle (which must agree); if it starts with the
//!   `cesc-prove counterexample` header, it names a statically-refuted
//!   `implies(...)` assert and replaying re-runs the prover, which
//!   must refute it again with an engine-confirmed counterexample;
//!   otherwise it is driven through the chart parser, which must
//!   return without panicking.
//! * `.expr` — guard expressions, one per line, through the
//!   expression parser.
//! * `.vcd` / `.bin` — bytes through both streaming VCD readers (and
//!   the chart parser, since hostile bytes are hostile everywhere).
//!
//! A differential entry is self-contained:
//!
//! ```text
//! // cesc-fuzz differential case
//! // note: <free text>
//! // chunk: 4 jobs: 3
//! // trace: 1,8000000000000000,0
//! scesc ... { ... }
//! ```

use std::io;
use std::path::{Path, PathBuf};

use cesc_expr::Valuation;
use cesc_trace::Trace;

use crate::oracle::{self, total, CaseInput};

/// The header line marking a self-contained differential entry.
pub const DIFFERENTIAL_HEADER: &str = "// cesc-fuzz differential case";

/// The header line marking a statically-refuted assert reproducer
/// (written by `cesc prove --corpus-out`).
pub const PROVE_HEADER: &str = "// cesc-prove counterexample";

/// What kind of pipeline input a corpus entry replays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusKind {
    /// A full `(spec × trace × chunking × jobs)` differential case.
    Differential,
    /// A spec whose named `implies(...)` assert the prover refutes.
    Prove,
    /// Hostile chart-parser input.
    ChartParser,
    /// Hostile expression-parser input.
    ExprParser,
    /// Hostile VCD-reader input.
    Vcd,
}

impl CorpusKind {
    fn extension(self) -> &'static str {
        match self {
            CorpusKind::Differential | CorpusKind::Prove | CorpusKind::ChartParser => "cesc",
            CorpusKind::ExprParser => "expr",
            CorpusKind::Vcd => "vcd",
        }
    }
}

/// One corpus entry ready to be written to disk.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// File stem (extension comes from the kind).
    pub name: String,
    /// Replay kind.
    pub kind: CorpusKind,
    /// File contents.
    pub bytes: Vec<u8>,
}

/// Serializes a differential case into the self-contained entry
/// format.
pub fn encode_differential(input: &CaseInput, note: &str) -> Vec<u8> {
    let trace_hex: Vec<String> = input.trace.iter().map(|v| format!("{:x}", v.bits())).collect();
    let mut out = String::new();
    out.push_str(DIFFERENTIAL_HEADER);
    out.push('\n');
    for line in note.lines() {
        out.push_str("// note: ");
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&format!("// chunk: {} jobs: {}\n", input.chunk, input.jobs));
    out.push_str(&format!("// trace: {}\n", trace_hex.join(",")));
    out.push_str(&input.source);
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.into_bytes()
}

/// Parses a self-contained differential entry back into a
/// [`CaseInput`]. Returns `None` when `text` does not carry the
/// header or the header fields are malformed.
pub fn decode_differential(text: &str) -> Option<CaseInput> {
    if !text.starts_with(DIFFERENTIAL_HEADER) {
        return None;
    }
    let mut chunk = 1usize;
    let mut jobs = 1usize;
    let mut trace = Trace::new();
    let mut source = String::new();
    let mut in_header = true;
    for line in text.lines() {
        if in_header {
            if line == DIFFERENTIAL_HEADER || line.starts_with("// note:") {
                continue;
            }
            if let Some(rest) = line.strip_prefix("// chunk: ") {
                let mut it = rest.split_whitespace();
                chunk = it.next()?.parse().ok()?;
                if it.next() != Some("jobs:") {
                    return None;
                }
                jobs = it.next()?.parse().ok()?;
                continue;
            }
            if let Some(rest) = line.strip_prefix("// trace: ") {
                for tok in rest.split(',').filter(|t| !t.trim().is_empty()) {
                    let bits = u128::from_str_radix(tok.trim(), 16).ok()?;
                    trace.push(Valuation::from_bits(bits));
                }
                in_header = false;
                continue;
            }
            // any other line ends the header
            in_header = false;
        }
        source.push_str(line);
        source.push('\n');
    }
    Some(CaseInput {
        source,
        trace,
        chunk,
        jobs,
    })
}

/// Builds a prove-counterexample corpus entry: the full spec source
/// prefixed with the [`PROVE_HEADER`] and the refuted assert's name.
/// Header lines are ordinary `//` comments, so the payload stays a
/// valid `.cesc` document.
pub fn prove_entry(source: &str, assert_name: &str) -> CorpusEntry {
    let mut text = String::new();
    text.push_str(PROVE_HEADER);
    text.push('\n');
    text.push_str(&format!("// assert: {assert_name}\n"));
    text.push_str(source);
    if !text.ends_with('\n') {
        text.push('\n');
    }
    CorpusEntry {
        name: format!("prove-{assert_name}"),
        kind: CorpusKind::Prove,
        bytes: text.into_bytes(),
    }
}

/// Replays a prove-counterexample entry: re-runs the prover on the
/// embedded spec and demands the named assert is refuted again, with a
/// counterexample the dynamic engine confirms.
///
/// # Errors
///
/// Returns a description when the header is malformed, the spec no
/// longer loads, the assert is now proved, or the counterexample
/// fails to replay.
pub fn replay_prove(text: &str) -> Result<(), String> {
    let name = text
        .lines()
        .find_map(|l| l.strip_prefix("// assert: "))
        .map(str::trim)
        .ok_or_else(|| "prove entry is missing its `// assert: NAME` line".to_owned())?;
    let specs = cesc_spec::SpecSet::load(text).map_err(|e| format!("spec no longer loads: {e}"))?;
    let idx = match specs.resolve(name) {
        Ok(cesc_spec::TargetRef::Assert(i)) => i,
        Ok(_) => return Err(format!("`{name}` is no longer an implies(...) assert")),
        Err(e) => return Err(format!("assert `{name}`: {e}")),
    };
    let report = specs.proof(idx).map_err(|e| format!("prover failed on `{name}`: {e}"))?;
    let cx = report
        .counterexample()
        .ok_or_else(|| format!("assert `{name}` is now PROVED — stale reproducer"))?;
    if !cx.confirmed {
        return Err(format!("counterexample for `{name}` no longer replays in the engine"));
    }
    Ok(())
}

/// Writes `entry` into `dir` (created if missing); returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_entry(dir: &Path, entry: &CorpusEntry) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.{}", entry.name, entry.kind.extension()));
    std::fs::write(&path, &entry.bytes)?;
    Ok(path)
}

/// Aggregate of one corpus replay.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Files replayed.
    pub files: usize,
    /// Differential entries (oracle agreed on each).
    pub differential: usize,
    /// Prove-counterexample entries (prover refuted each again).
    pub prove: usize,
    /// Hostile chart-parser entries.
    pub parser: usize,
    /// Expression entries (individual lines).
    pub exprs: usize,
    /// VCD/bytes entries.
    pub vcd: usize,
}

/// Replays one corpus file according to its extension.
///
/// # Errors
///
/// Returns a description when a parser panics, a differential entry's
/// legs disagree, or the file cannot be read.
pub fn replay_file(path: &Path, summary: &mut ReplaySummary) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let name = path.display();
    summary.files += 1;
    match path.extension().and_then(|e| e.to_str()) {
        Some("cesc") => {
            let text = String::from_utf8_lossy(&bytes).into_owned();
            if text.starts_with(PROVE_HEADER) {
                replay_prove(&text).map_err(|e| format!("{name}: {e}"))?;
                summary.prove += 1;
                Ok(())
            } else if let Some(input) = decode_differential(&text) {
                match oracle::run_case(&input) {
                    Ok(_) => {
                        summary.differential += 1;
                        Ok(())
                    }
                    Err(d) => Err(format!("{name}: differential regression: {d}")),
                }
            } else {
                total::chart_parser(&bytes).map_err(|p| format!("{name}: panicked: {p}"))?;
                summary.parser += 1;
                Ok(())
            }
        }
        Some("expr") => {
            let text = String::from_utf8_lossy(&bytes).into_owned();
            for line in text.lines().filter(|l| !l.is_empty() && !l.starts_with("//")) {
                total::expr_parser(line).map_err(|p| format!("{name}: panicked on {line:?}: {p}"))?;
                summary.exprs += 1;
            }
            Ok(())
        }
        Some("vcd") | Some("bin") => {
            total::vcd_reader(&bytes).map_err(|p| format!("{name}: panicked: {p}"))?;
            total::global_vcd_reader(&bytes)
                .map_err(|p| format!("{name}: panicked (global): {p}"))?;
            total::chart_parser(&bytes).map_err(|p| format!("{name}: panicked (chart): {p}"))?;
            summary.vcd += 1;
            Ok(())
        }
        _ => Ok(()), // README and friends
    }
}

/// Replays every entry under `dir` (sorted, for stable failure
/// ordering).
///
/// # Errors
///
/// Returns the first replay failure.
pub fn replay_dir(dir: &Path) -> Result<ReplaySummary, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    let mut summary = ReplaySummary::default();
    for p in &paths {
        replay_file(p, &mut summary)?;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_roundtrip() {
        let input = CaseInput {
            source: "scesc hs on clk { instances { M } events { a, b } tick { M: a } \
                     tick { M: b } cause a -> b; }\n"
                .to_owned(),
            trace: Trace::from_elements([
                Valuation::from_bits(0x1),
                Valuation::from_bits(0x2),
                Valuation::from_bits(0x0),
            ]),
            chunk: 2,
            jobs: 3,
        };
        let bytes = encode_differential(&input, "sample\nsecond line");
        let text = String::from_utf8(bytes).unwrap();
        let back = decode_differential(&text).expect("decodes");
        assert_eq!(back.source, input.source);
        assert_eq!(back.chunk, 2);
        assert_eq!(back.jobs, 3);
        assert_eq!(back.trace.len(), 3);
        assert_eq!(back.trace[1].bits(), 0x2);
        // and the roundtripped case actually replays green
        assert!(oracle::run_case(&back).is_ok());
    }

    #[test]
    fn non_differential_text_is_rejected() {
        assert!(decode_differential("scesc x on clk { }").is_none());
        assert!(decode_differential("").is_none());
    }

    #[test]
    fn write_and_replay_an_entry() {
        let dir = std::env::temp_dir().join(format!("cesc-fuzz-corpus-{}", std::process::id()));
        let entry = CorpusEntry {
            name: "parse-smoke".into(),
            kind: CorpusKind::ChartParser,
            bytes: b"scesc broken {".to_vec(),
        };
        let path = write_entry(&dir, &entry).unwrap();
        let mut summary = ReplaySummary::default();
        replay_file(&path, &mut summary).unwrap();
        assert_eq!(summary.parser, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
