//! `cesc-fuzz` — deterministic differential fuzzing for the CESC
//! toolchain.
//!
//! The crate closes the loop between the four independent execution
//! paths the workspace already ships:
//!
//! 1. the baseline (unoptimized) batch engine,
//! 2. the optimized compiled engine fed in arbitrary chunkings,
//! 3. the sharded monitor fleet (`cesc-par`), and
//! 4. the emitted-RTL interpreter (`cesc-rtl` co-simulation).
//!
//! [`gen`] produces seeded, structured random inputs: chart /
//! multiclock / assert documents, hostile byte strings, mutations of
//! valid sources and VCD dumps, and guard expressions. [`traces`]
//! produces traces over the generated alphabets that actually reach
//! accept states (witness-window splicing). [`oracle`] runs one
//! `(spec × trace × chunking × jobs)` case through all four paths and
//! reports the first disagreement; its [`oracle::total`] module checks
//! panic-freedom (errors are fine, unwinding is not) of the chart
//! parser, expression parser and VCD readers. [`campaign`] drives
//! bounded, fully deterministic campaigns and minimizes any failure;
//! [`corpus`] serializes minimized failures into `tests/corpus/`
//! entries that replay as ordinary unit tests.
//!
//! Everything is seeded: the same seed and case budget replays the
//! same campaign byte-for-byte, so CI runs are reproducible and a
//! reported failure can be re-run locally with nothing but the seed.

#![warn(missing_docs)]

pub mod campaign;
pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod traces;

pub use campaign::{run_differential, run_parser_sweep, run_vcd_sweep, CampaignConfig, CampaignReport, SweepReport};
pub use corpus::{replay_dir, replay_file, CorpusEntry, CorpusKind, ReplaySummary};
pub use gen::SpecGen;
pub use oracle::{run_case, run_multiclock_case, CaseInput, CaseReport, Discrepancy};
