//! Self-checking Verilog testbench emitter.
//!
//! Given a monitor module (from [`crate::emit_verilog`]) and a
//! reference trace with its expected match count, emits a Verilog-2001
//! testbench that drives the trace cycle by cycle, counts
//! `match_pulse`s, and reports PASS/FAIL — so the generated RTL can be
//! validated in any simulator (Icarus, Verilator, commercial) against
//! the Rust executor's verdict.

use std::fmt::Write as _;

use cesc_core::Monitor;
use cesc_expr::{Alphabet, Valuation};

use crate::ir::lower_monitor;
use crate::verilog::VerilogOptions;

/// Options for the testbench emitter.
#[derive(Debug, Clone)]
pub struct TestbenchOptions {
    /// Verilog options the monitor module was emitted with (module
    /// name and reset must agree).
    pub verilog: VerilogOptions,
    /// Clock half-period in `timescale` units.
    pub half_period: u32,
}

impl Default for TestbenchOptions {
    fn default() -> Self {
        TestbenchOptions {
            verilog: VerilogOptions::default(),
            half_period: 5,
        }
    }
}

/// Emits a self-checking testbench driving `trace` into the monitor
/// module and asserting `expected_matches` `match_pulse`s.
///
/// The testbench lowers the monitor through the same
/// [`crate::lower_monitor`] pipeline as [`crate::emit_verilog`], so
/// its wires bind to the DUT's (collision-free) port names by
/// construction.
///
/// # Examples
///
/// ```
/// use cesc_chart::parse_document;
/// use cesc_core::{synthesize, SynthOptions};
/// use cesc_hdl::{emit_testbench, TestbenchOptions};
/// use cesc_expr::Valuation;
///
/// let doc = parse_document(
///     "scesc hs on clk { instances { M } events { req, ack } \
///      tick { M: req } tick { M: ack } }",
/// ).unwrap();
/// let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
/// let req = doc.alphabet.lookup("req").unwrap();
/// let ack = doc.alphabet.lookup("ack").unwrap();
/// let trace = [Valuation::of([req]), Valuation::of([ack])];
/// let tb = emit_testbench(&m, &doc.alphabet, &trace, 1, &TestbenchOptions::default());
/// assert!(tb.contains("module cesc_monitor_hs_tb;"));
/// assert!(tb.contains("PASS"));
/// ```
pub fn emit_testbench(
    monitor: &Monitor,
    alphabet: &Alphabet,
    trace: &[Valuation],
    expected_matches: u64,
    opts: &TestbenchOptions,
) -> String {
    let module = lower_monitor(monitor, alphabet, &opts.verilog);
    let inputs: Vec<(cesc_expr::SymbolId, &str)> = module
        .inputs()
        .iter()
        .map(|i| (i.symbol, i.port.as_str()))
        .collect();

    let dut = module.name();
    let rst = module.reset();
    let hp = opts.half_period;
    let state_w = module.state_width();

    let mut tb = String::new();
    let _ = writeln!(tb, "// Self-checking testbench for {dut}");
    let _ = writeln!(tb, "`timescale 1ns/1ns");
    let _ = writeln!(tb, "module {dut}_tb;");
    let _ = writeln!(tb, "    reg clk = 1'b0;");
    let _ = writeln!(tb, "    reg {rst} = 1'b0;");
    for (_, name) in &inputs {
        let _ = writeln!(tb, "    reg {name} = 1'b0;");
    }
    let _ = writeln!(tb, "    wire match_pulse;");
    let _ = writeln!(tb, "    wire [{}:0] state;", state_w - 1);
    let _ = writeln!(tb, "    integer matches = 0;");
    let _ = writeln!(tb);
    let _ = writeln!(tb, "    {dut} dut (");
    let _ = writeln!(tb, "        .clk(clk),");
    let _ = writeln!(tb, "        .{rst}({rst}),");
    for (_, name) in &inputs {
        let _ = writeln!(tb, "        .{name}({name}),");
    }
    let _ = writeln!(tb, "        .match_pulse(match_pulse),");
    let _ = writeln!(tb, "        .state(state)");
    let _ = writeln!(tb, "    );");
    let _ = writeln!(tb);
    let _ = writeln!(tb, "    always #{hp} clk = ~clk;");
    let _ = writeln!(tb);
    let _ = writeln!(tb, "    always @(posedge clk) if (match_pulse) matches = matches + 1;");
    let _ = writeln!(tb);
    let _ = writeln!(tb, "    initial begin");
    let _ = writeln!(tb, "        #{};", 2 * hp);
    let _ = writeln!(tb, "        {rst} = 1'b1;");
    for v in trace {
        // drive inputs just after the falling edge so they are stable
        // at the next rising edge
        let assigns: Vec<String> = inputs
            .iter()
            .map(|(id, name)| {
                format!("{name} = 1'b{};", if v.contains(*id) { 1 } else { 0 })
            })
            .collect();
        let _ = writeln!(tb, "        @(negedge clk); {}", assigns.join(" "));
    }
    let _ = writeln!(tb, "        @(negedge clk);");
    let _ = writeln!(tb, "        @(posedge clk); #1;");
    let _ = writeln!(
        tb,
        "        if (matches == {expected_matches}) $display(\"PASS: %0d matches\", matches);"
    );
    let _ = writeln!(
        tb,
        "        else $display(\"FAIL: expected {expected_matches}, got %0d\", matches);"
    );
    let _ = writeln!(tb, "        $finish;");
    let _ = writeln!(tb, "    end");
    let _ = writeln!(tb, "endmodule");
    tb
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_chart::parse_document;
    use cesc_core::{synthesize, SynthOptions};

    fn setup() -> (cesc_chart::Document, Monitor, Vec<Valuation>) {
        let doc = parse_document(
            r#"
            scesc hs on clk {
                instances { M, S }
                events { req, ack }
                tick { M: req }
                tick { S: ack }
                cause req -> ack;
            }
        "#,
        )
        .unwrap();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        let req = doc.alphabet.lookup("req").unwrap();
        let ack = doc.alphabet.lookup("ack").unwrap();
        let trace = vec![
            Valuation::of([req]),
            Valuation::of([ack]),
            Valuation::empty(),
            Valuation::of([req]),
            Valuation::of([ack]),
        ];
        (doc, m, trace)
    }

    #[test]
    fn testbench_structure() {
        let (doc, m, trace) = setup();
        let expected = m.scan(trace.clone()).matches.len() as u64;
        assert_eq!(expected, 2);
        let tb = emit_testbench(&m, &doc.alphabet, &trace, expected, &TestbenchOptions::default());
        assert!(tb.contains("module cesc_monitor_hs_tb;"));
        assert!(tb.contains("cesc_monitor_hs dut ("));
        assert!(tb.contains(".req(req),"));
        assert!(tb.contains(".ack(ack),"));
        assert!(tb.contains("if (matches == 2)"));
        assert!(tb.trim_end().ends_with("endmodule"));
        // one drive line per trace element
        assert_eq!(tb.matches("@(negedge clk); ").count(), trace.len());
    }

    #[test]
    fn drives_match_trace_content() {
        let (doc, m, trace) = setup();
        let tb = emit_testbench(&m, &doc.alphabet, &trace, 2, &TestbenchOptions::default());
        // first element: req high, ack low
        let first_drive = tb
            .lines()
            .find(|l| l.contains("@(negedge clk); "))
            .unwrap();
        assert!(first_drive.contains("req = 1'b1;"));
        assert!(first_drive.contains("ack = 1'b0;"));
    }

    #[test]
    fn custom_reset_name_threaded_through() {
        let (doc, m, trace) = setup();
        let opts = TestbenchOptions {
            verilog: VerilogOptions {
                reset_name: "resetn".to_owned(),
                ..Default::default()
            },
            half_period: 2,
        };
        let tb = emit_testbench(&m, &doc.alphabet, &trace, 2, &opts);
        assert!(tb.contains("reg resetn = 1'b0;"));
        assert!(tb.contains("always #2 clk = ~clk;"));
    }
}
