//! Collision-free HDL identifier mangling, shared by every emitter.
//!
//! Chart symbols are free-form identifiers (the grammar allows `.` in
//! dotted event names), but Verilog identifiers are
//! `[A-Za-z_][A-Za-z0-9_]*`. A plain character substitution is not
//! injective — `req.a` and `req_a` both map to `req_a` — and a module
//! that declares the same port twice (with guards cross-wired between
//! the two source symbols) is silently broken RTL. [`NameMap`] makes
//! the mapping injective with deterministic suffixing, and hands every
//! emitter (Verilog, SVA, testbench, the RTL IR lowering) the *same*
//! symbol → identifier binding so generated modules, testbenches and
//! interpreters always agree on port names.

use std::collections::{HashMap, HashSet};

use cesc_expr::{Alphabet, SymbolId};

/// Verilog-2001 keywords (the subset that could plausibly collide with
/// a chart symbol) plus the fixed nets every emitted module declares.
/// Symbols landing on one of these are suffixed like any other
/// collision.
const RESERVED: &[&str] = &[
    // fixed module interface nets
    "clk", "match_pulse", "state", "matches", "dut",
    // Verilog keywords
    "always", "assign", "begin", "case", "default", "else", "end",
    "endcase", "endmodule", "if", "initial", "input", "inout", "integer",
    "localparam", "module", "negedge", "output", "posedge", "reg", "wire",
];

/// Maps one raw symbol name onto the Verilog identifier character set
/// (every non-`[A-Za-z0-9_]` character becomes `_`).
///
/// This substitution alone is **not** injective — use [`NameMap`] when
/// emitting anything that declares identifiers.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// An injective symbol → HDL identifier map over one [`Alphabet`].
///
/// Built once per emitted artifact: every symbol gets
/// [`sanitize`]-mapped in `SymbolId` order, and a candidate that is
/// already taken (by an earlier symbol, a scoreboard counter, a
/// reserved net name or a Verilog keyword) is deterministically
/// suffixed `_2`, `_3`, … until free. Scoreboard counter registers
/// (`sb_<name>`) live in the same namespace, so an event named `sb_x`
/// can never shadow the counter of an event named `x`.
///
/// # Examples
///
/// ```
/// use cesc_expr::Alphabet;
/// use cesc_hdl::NameMap;
/// let mut ab = Alphabet::new();
/// let dotted = ab.event("req.a");
/// let flat = ab.event("req_a");
/// let map = NameMap::new(&ab, &["rst_n"]);
/// assert_eq!(map.name(dotted), "req_a");
/// assert_eq!(map.name(flat), "req_a_2"); // collision suffixed
/// ```
#[derive(Debug, Clone)]
pub struct NameMap {
    names: HashMap<SymbolId, String>,
    counters: HashMap<SymbolId, String>,
}

impl NameMap {
    /// Builds the map for `alphabet`. `extra_reserved` adds
    /// artifact-specific taken identifiers (the configured reset or
    /// clock net name) on top of the built-in reserved set (fixed
    /// module nets plus common Verilog keywords).
    pub fn new(alphabet: &Alphabet, extra_reserved: &[&str]) -> Self {
        let mut used: HashSet<String> = RESERVED.iter().map(|s| (*s).to_owned()).collect();
        used.extend(extra_reserved.iter().map(|s| (*s).to_owned()));

        let claim = |candidate: String, used: &mut HashSet<String>| -> String {
            if used.insert(candidate.clone()) {
                return candidate;
            }
            for n in 2u32.. {
                let suffixed = format!("{candidate}_{n}");
                if used.insert(suffixed.clone()) {
                    return suffixed;
                }
            }
            unreachable!("u32 suffix space exhausted")
        };

        let mut names = HashMap::new();
        for (id, symbol) in alphabet.iter() {
            names.insert(id, claim(sanitize(symbol.name()), &mut used));
        }
        // counters second, so an event literally named `sb_x` keeps its
        // sanitized name and the counter of `x` gets suffixed instead
        let mut counters = HashMap::new();
        for (id, _) in alphabet.iter() {
            counters.insert(id, claim(format!("sb_{}", names[&id]), &mut used));
        }
        NameMap { names, counters }
    }

    /// The HDL identifier of symbol `id` (its input port / wire name).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from the alphabet the map was built over.
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[&id]
    }

    /// The scoreboard counter register name of event `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from the alphabet the map was built over.
    pub fn counter(&self, id: SymbolId) -> &str {
        &self.counters[&id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_hostile_chars() {
        assert_eq!(sanitize("req.a"), "req_a");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(sanitize("ok_name0"), "ok_name0");
        // a leading digit is not a Verilog identifier
        assert_eq!(sanitize("0bad"), "_0bad");
        assert_eq!(sanitize(""), "_");
    }

    #[test]
    fn collisions_get_deterministic_suffixes() {
        let mut ab = Alphabet::new();
        let a = ab.event("req.a");
        let b = ab.event("req_a");
        let c = ab.event("req-a");
        let map = NameMap::new(&ab, &[]);
        assert_eq!(map.name(a), "req_a");
        assert_eq!(map.name(b), "req_a_2");
        assert_eq!(map.name(c), "req_a_3");
        // counters are distinct too
        assert_eq!(map.counter(a), "sb_req_a");
        assert_eq!(map.counter(b), "sb_req_a_2");
    }

    #[test]
    fn reserved_identifiers_are_avoided() {
        let mut ab = Alphabet::new();
        let s = ab.event("state");
        let k = ab.event("begin");
        let r = ab.event("rst_n");
        let map = NameMap::new(&ab, &["rst_n"]);
        assert_eq!(map.name(s), "state_2");
        assert_eq!(map.name(k), "begin_2");
        assert_eq!(map.name(r), "rst_n_2");
    }

    #[test]
    fn counter_namespace_shared_with_symbols() {
        // an event literally named `sb_x` must not shadow the counter
        // register of event `x`
        let mut ab = Alphabet::new();
        let shadow = ab.event("sb_x");
        let x = ab.event("x");
        let map = NameMap::new(&ab, &[]);
        assert_eq!(map.name(shadow), "sb_x");
        assert_eq!(map.name(x), "x");
        assert_eq!(map.counter(x), "sb_x_2");
    }

    #[test]
    fn suffixed_name_colliding_with_later_symbol() {
        // `a_2` is interned as a real event before the suffix machinery
        // would invent it for the colliding `a:2`
        let mut ab = Alphabet::new();
        let a1 = ab.event("a");
        let a2 = ab.event("a_2");
        let a3 = ab.event("a:2");
        let map = NameMap::new(&ab, &[]);
        assert_eq!(map.name(a1), "a");
        assert_eq!(map.name(a2), "a_2");
        assert_eq!(map.name(a3), "a_2_2"); // sanitize("a:2") = "a_2", then suffix
    }
}
