//! Verilog-2001 emitter: a synthesizable RTL module per monitor.
//!
//! The emitted module is the hardware form of the paper's monitor: a
//! state register holding `0..=n`, the priority-ordered guard chain as
//! an `if`/`else if` cascade, and the scoreboard as per-event
//! saturating counters (`Chk_evt(e)` ⇔ `sb_e != 0`). A 1-cycle
//! `match_pulse` output fires on entry to the final state, so the
//! module drops into any simulation environment as a checker (Fig 4's
//! flow).
//!
//! [`emit_verilog`] is a thin wrapper over the structured pipeline in
//! [`crate::ir`]: [`crate::lower_monitor`] builds the [`crate::RtlModule`]
//! IR, [`crate::render_verilog`] prints it. Lower once yourself when
//! you also want to *execute* the RTL (through `cesc-rtl`'s
//! interpreter) — the rendered text and the interpreted behaviour then
//! come from the same object by construction.

use cesc_core::Monitor;
use cesc_expr::{Alphabet, Expr};

use crate::ir::{expr_to_verilog_named, lower_monitor, render_verilog};
use crate::names::NameMap;

/// Options for the Verilog emitter.
#[derive(Debug, Clone)]
pub struct VerilogOptions {
    /// Module name prefix (`<prefix>_<monitor name>`).
    pub module_prefix: String,
    /// Bit width of the scoreboard counters (clamped to `1..=64`).
    ///
    /// `None` (the default) infers the width from the monitor's
    /// counter-bounds analysis ([`cesc_core::infer_bounds`]): when
    /// every count has a finite upper bound `B`, the smallest width
    /// with `2^w - 1 ≥ B` is used — the saturating counters then
    /// provably never saturate, so the narrowed RTL stays exactly
    /// equivalent to the unbounded engine scoreboard. When some count
    /// is unbounded no width is safe; the lowering falls back to
    /// [`DEFAULT_COUNTER_WIDTH`] (and `cesc lint` flags the chart).
    pub counter_width: Option<u32>,
    /// Active-low asynchronous reset name.
    pub reset_name: String,
    /// Counter increments saturate at `2^counter_width - 1` (default)
    /// instead of wrapping. A wrapping counter that overflows reads as
    /// zero, silently turning `Chk_evt` guards false while the
    /// engine's unbounded scoreboard still holds occurrences — set
    /// this to `false` only to reproduce legacy netlists.
    pub saturating: bool,
}

/// Counter width used when no explicit width is given and the bounds
/// analysis cannot prove a finite ceiling.
pub const DEFAULT_COUNTER_WIDTH: u32 = 8;

impl Default for VerilogOptions {
    fn default() -> Self {
        VerilogOptions {
            module_prefix: "cesc_monitor".to_owned(),
            counter_width: None,
            reset_name: "rst_n".to_owned(),
            saturating: true,
        }
    }
}

/// Renders a guard expression as a Verilog boolean expression.
/// `Chk_evt(e)` compiles to a non-zero test of the scoreboard counter.
///
/// Convenience wrapper building a fresh collision-free [`NameMap`] over
/// the whole alphabet; emitters render against their module's
/// [`crate::RtlModule::names`] instead so declarations and uses always
/// agree.
pub fn expr_to_verilog(e: &Expr, alphabet: &Alphabet) -> String {
    expr_to_verilog_named(e, &NameMap::new(alphabet, &[]))
}

/// Emits a synthesizable Verilog-2001 monitor module.
///
/// Inputs: `clk`, the reset, and one 1-bit wire per alphabet symbol the
/// monitor observes. Outputs: `match_pulse` (high for one cycle when
/// the scenario completes) and the current `state`.
///
/// Equivalent to `render_verilog(&lower_monitor(monitor, alphabet,
/// opts))`; the interpreted form of the same lowering is available in
/// the `cesc-rtl` crate for co-simulation against the engine.
///
/// # Examples
///
/// ```
/// use cesc_chart::parse_document;
/// use cesc_core::{synthesize, SynthOptions};
/// use cesc_hdl::{emit_verilog, VerilogOptions};
/// let doc = parse_document(
///     "scesc hs on clk { instances { M } events { req, ack } \
///      tick { M: req } tick { M: ack } cause req -> ack; }",
/// ).unwrap();
/// let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
/// let v = emit_verilog(&m, &doc.alphabet, &VerilogOptions::default());
/// assert!(v.contains("module cesc_monitor_hs"));
/// assert!(v.contains("sb_req"));
/// ```
pub fn emit_verilog(monitor: &Monitor, alphabet: &Alphabet, opts: &VerilogOptions) -> String {
    render_verilog(&lower_monitor(monitor, alphabet, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_chart::parse_document;
    use cesc_core::{synthesize, SynthOptions};

    fn fig6_monitor() -> (cesc_chart::Document, Monitor) {
        let doc = parse_document(
            r#"
            scesc simple_read on clk {
                instances { Master, Slave }
                events { MCmd_rd, Addr, SCmd_accept, SResp, SData }
                tick { Master: MCmd_rd, Addr; Slave: SCmd_accept }
                tick { Slave: SResp, SData }
                cause MCmd_rd -> SResp;
            }
        "#,
        )
        .unwrap();
        let m = synthesize(doc.chart("simple_read").unwrap(), &SynthOptions::default()).unwrap();
        (doc, m)
    }

    #[test]
    fn module_structure_is_wellformed() {
        let (doc, m) = fig6_monitor();
        let v = emit_verilog(&m, &doc.alphabet, &VerilogOptions::default());
        assert!(v.contains("module cesc_monitor_simple_read ("));
        assert!(v.trim_end().ends_with("endmodule"));
        // balanced begin/end (word-level, excluding endcase/endmodule)
        let tokens: Vec<&str> = v
            .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
            .collect();
        let begins = tokens.iter().filter(|t| **t == "begin").count();
        let ends = tokens.iter().filter(|t| **t == "end").count();
        assert_eq!(begins, ends, "begin/end imbalance:\n{v}");
        // every input declared once
        for name in ["MCmd_rd", "Addr", "SCmd_accept", "SResp", "SData"] {
            assert_eq!(v.matches(&format!("input  wire {name},")).count(), 1);
        }
    }

    #[test]
    fn scoreboard_counters_emitted() {
        let (doc, m) = fig6_monitor();
        let v = emit_verilog(&m, &doc.alphabet, &VerilogOptions::default());
        assert!(v.contains("reg [7:0] sb_MCmd_rd;"));
        // default increments saturate at the counter ceiling
        assert!(
            v.contains("sb_MCmd_rd <= (sb_MCmd_rd > 8'd254) ? 8'd255 : sb_MCmd_rd + 1;"),
            "{v}"
        );
        assert!(v.contains("(sb_MCmd_rd != 0)"));
        assert!(v.contains("sb_MCmd_rd <= (sb_MCmd_rd > 1) ? sb_MCmd_rd - 1 : 0;"));
    }

    #[test]
    fn legacy_wrapping_increment_available() {
        let (doc, m) = fig6_monitor();
        let opts = VerilogOptions {
            saturating: false,
            ..Default::default()
        };
        let v = emit_verilog(&m, &doc.alphabet, &opts);
        assert!(v.contains("sb_MCmd_rd <= sb_MCmd_rd + 1;"), "{v}");
    }

    #[test]
    fn match_pulse_on_final_entry() {
        let (doc, m) = fig6_monitor();
        let v = emit_verilog(&m, &doc.alphabet, &VerilogOptions::default());
        let final_s = format!("state <= S{};", m.final_state().index());
        let pos = v.find(&final_s).expect("final transition present");
        let after = &v[pos..pos + 200];
        assert!(after.contains("match_pulse <= 1'b1;"));
    }

    #[test]
    fn custom_options_respected() {
        let (doc, m) = fig6_monitor();
        let opts = VerilogOptions {
            module_prefix: "chk".to_owned(),
            counter_width: Some(4),
            reset_name: "resetn".to_owned(),
            saturating: true,
        };
        let v = emit_verilog(&m, &doc.alphabet, &opts);
        assert!(v.contains("module chk_simple_read"));
        assert!(v.contains("reg [3:0] sb_"));
        assert!(v.contains("negedge resetn"));
        assert!(v.contains("4'd15"), "width-4 ceiling: {v}");
    }

    #[test]
    fn expr_conversion() {
        let mut ab = Alphabet::new();
        let a = ab.event("a");
        let b = ab.event("b.c"); // dot sanitised
        let e = (Expr::sym(a) & !Expr::sym(b)) | Expr::chk(a);
        assert_eq!(
            expr_to_verilog(&e, &ab),
            "((a && !(b_c)) || (sb_a != 0))"
        );
        assert_eq!(expr_to_verilog(&Expr::t(), &ab), "1'b1");
        assert_eq!(expr_to_verilog(&Expr::f(), &ab), "1'b0");
    }

    #[test]
    fn colliding_symbol_names_get_distinct_ports() {
        // `req.a` and `req_a` used to both render as port `req_a`,
        // producing a duplicate declaration with cross-wired guards
        let doc = parse_document(
            r#"
            scesc twins on clk {
                instances { M }
                events { req.a, req_a }
                tick { M: req.a }
                tick { M: req_a }
            }
        "#,
        )
        .unwrap();
        let m = synthesize(doc.chart("twins").unwrap(), &SynthOptions::default()).unwrap();
        let v = emit_verilog(&m, &doc.alphabet, &VerilogOptions::default());
        assert_eq!(v.matches("input  wire req_a,").count(), 1, "{v}");
        assert_eq!(v.matches("input  wire req_a_2,").count(), 1, "{v}");
        // both distinct symbols appear in guards
        assert!(v.contains("if (req_a)") || v.contains("(req_a &&"), "{v}");
        assert!(v.contains("req_a_2"), "{v}");
    }
}
