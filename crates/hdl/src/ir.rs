//! The structured RTL intermediate representation behind
//! [`crate::emit_verilog`].
//!
//! Lowering a [`Monitor`] to Verilog used to be one string-building
//! pass, which meant the emitted semantics (counter widths, guard
//! priority, name binding) existed *only* as text — nothing could
//! execute it short of an external simulator. [`lower_monitor`] now
//! produces an [`RtlModule`] first: ports, the state register, the
//! scoreboard counter bank and the per-state priority guard cascade as
//! data. Two consumers share it:
//!
//! * [`render_verilog`] (wrapped by [`crate::emit_verilog`]) prints the
//!   module as Verilog-2001 text;
//! * `cesc-rtl`'s `RtlInterp` executes the IR cycle-accurately —
//!   including the counter bit-width truncation/saturation the rendered
//!   registers would exhibit — so the emitted RTL can be co-simulated
//!   against the engine without any external toolchain.
//!
//! Counter updates aggregate each transition's `Add_evt`/`Del_evt`
//! actions into one *net* delta per event (the hardware applies all of
//! a cycle's updates in a single nonblocking assignment). For
//! synthesized monitors this is exact: the engine's sequential
//! application only differs from the net form when a `Del_evt` precedes
//! an `Add_evt` of the same event on one transition *and* the count is
//! at the zero floor — a shape the synthesis algorithm never emits (it
//! deletes only what an earlier tick added). The co-simulation harness
//! in `cesc-rtl` is the oracle that would flush out any future
//! violation of that invariant.

use std::collections::HashMap;
use std::fmt::Write as _;

use cesc_core::{infer_bounds, Action, BoundsOptions, Monitor, StateId};
use cesc_expr::{Alphabet, Expr, SymbolId};

use crate::names::NameMap;
use crate::verilog::VerilogOptions;

/// One input port of an [`RtlModule`]: a 1-bit wire per observed
/// alphabet symbol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlInput {
    /// The alphabet symbol driven on this port.
    pub symbol: SymbolId,
    /// The (collision-free) Verilog port name.
    pub port: String,
}

/// One scoreboard counter register (`reg [w-1:0] sb_<event>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlCounter {
    /// The event the counter tracks.
    pub event: SymbolId,
    /// The (collision-free) register name.
    pub reg: String,
}

/// A net counter update attached to one transition arm: counter slot
/// `counter` changes by `delta` (never 0) when the arm fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtlUpdate {
    /// Index into [`RtlModule::counters`].
    pub counter: u32,
    /// Net occurrence-count change; increments saturate or wrap at the
    /// counter width ([`RtlModule::saturating`]), decrements floor at
    /// zero.
    pub delta: i64,
}

/// One arm of a state's priority cascade (`if` / `else if` / `else`).
#[derive(Debug, Clone)]
pub struct RtlArm {
    guard: Expr,
    target: u32,
    pulse: bool,
    updates: Vec<RtlUpdate>,
}

impl RtlArm {
    /// The guard expression (over input symbols and `Chk_evt` counter
    /// tests) that enables this arm.
    pub fn guard(&self) -> &Expr {
        &self.guard
    }

    /// Next-state index when the arm fires.
    pub fn target(&self) -> u32 {
        self.target
    }

    /// Whether firing this arm raises `match_pulse` (the arm enters
    /// the final state).
    pub fn pulse(&self) -> bool {
        self.pulse
    }

    /// Counter updates applied when the arm fires.
    pub fn updates(&self) -> &[RtlUpdate] {
        &self.updates
    }
}

/// A synthesizable monitor module in structured form: what
/// [`crate::emit_verilog`] renders and what `cesc-rtl` interprets.
///
/// # Examples
///
/// ```
/// use cesc_chart::parse_document;
/// use cesc_core::{synthesize, SynthOptions};
/// use cesc_hdl::{lower_monitor, render_verilog, VerilogOptions};
/// let doc = parse_document(
///     "scesc hs on clk { instances { M } events { req, ack } \
///      tick { M: req } tick { M: ack } cause req -> ack; }",
/// ).unwrap();
/// let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
/// let module = lower_monitor(&m, &doc.alphabet, &VerilogOptions::default());
/// assert_eq!(module.state_count(), m.state_count());
/// assert!(render_verilog(&module).contains("module cesc_monitor_hs"));
/// ```
#[derive(Debug, Clone)]
pub struct RtlModule {
    name: String,
    chart: String,
    clock: String,
    reset: String,
    counter_width: u32,
    saturating: bool,
    state_width: u32,
    initial: u32,
    final_state: u32,
    inputs: Vec<RtlInput>,
    counters: Vec<RtlCounter>,
    states: Vec<Vec<RtlArm>>,
    names: NameMap,
}

impl RtlModule {
    /// The Verilog module name (`<prefix>_<chart>`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The source chart / monitor name.
    pub fn chart(&self) -> &str {
        &self.chart
    }

    /// The declared clock domain (documentation only; the module's
    /// clock port is always `clk`).
    pub fn clock(&self) -> &str {
        &self.clock
    }

    /// The active-low asynchronous reset port name.
    pub fn reset(&self) -> &str {
        &self.reset
    }

    /// Bit width of every scoreboard counter register.
    pub fn counter_width(&self) -> u32 {
        self.counter_width
    }

    /// Whether counter increments saturate at `2^width - 1` (the
    /// default) instead of wrapping like a bare `sb + d` adder.
    pub fn saturating(&self) -> bool {
        self.saturating
    }

    /// Bit width of the `state` output register (≥ 1 even for
    /// degenerate 1-state monitors).
    pub fn state_width(&self) -> u32 {
        self.state_width
    }

    /// Initial state index (the reset state).
    pub fn initial(&self) -> u32 {
        self.initial
    }

    /// Final (accepting) state index; entering it pulses
    /// `match_pulse`.
    pub fn final_state(&self) -> u32 {
        self.final_state
    }

    /// Number of FSM states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The 1-bit input ports, ascending by symbol index.
    pub fn inputs(&self) -> &[RtlInput] {
        &self.inputs
    }

    /// The scoreboard counter bank.
    pub fn counters(&self) -> &[RtlCounter] {
        &self.counters
    }

    /// The priority cascade of state `s` (first enabled arm wins).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn arms(&self, s: usize) -> &[RtlArm] {
        &self.states[s]
    }

    /// The symbol → identifier binding every consumer of this module
    /// (renderer, testbench, interpreter diagnostics) must share.
    pub fn names(&self) -> &NameMap {
        &self.names
    }

    /// Largest value a counter register can hold (`2^width - 1`; the
    /// lowering clamps widths to 1..=64, so this is always exact).
    pub fn counter_max(&self) -> u64 {
        if self.counter_width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.counter_width) - 1
        }
    }
}

/// Net scoreboard-counter deltas of a transition's action list
/// (`Add_evt` +1, `Del_evt` −1 per occurrence, same event aggregated).
fn action_deltas(actions: &[Action]) -> HashMap<SymbolId, i64> {
    let mut deltas: HashMap<SymbolId, i64> = HashMap::new();
    for a in actions {
        match a {
            Action::Null => {}
            Action::AddEvt(es) => {
                for &e in es {
                    *deltas.entry(e).or_insert(0) += 1;
                }
            }
            Action::DelEvt(es) => {
                for &e in es {
                    *deltas.entry(e).or_insert(0) -= 1;
                }
            }
        }
    }
    deltas
}

/// The counter width the lowering will use: the explicit override
/// when given, otherwise the smallest width the monitor's
/// counter-bounds analysis proves can never saturate, otherwise
/// [`crate::DEFAULT_COUNTER_WIDTH`] for unbounded charts.
pub fn resolve_counter_width(monitor: &Monitor, opts: &VerilogOptions) -> u32 {
    opts.counter_width
        .unwrap_or_else(|| {
            infer_bounds(monitor, &BoundsOptions::default())
                .counter_width()
                .unwrap_or(crate::DEFAULT_COUNTER_WIDTH)
        })
        .clamp(1, 64)
}

/// Lowers a synthesized [`Monitor`] into the structured RTL IR.
///
/// The module observes [`Monitor::observed_symbols`] as input ports and
/// keeps one counter per [`Monitor::scoreboard_events`] entry, so every
/// guard atom and counter update resolves inside the module. The state
/// register width is clamped to ≥ 1 bit (a degenerate 1-state monitor
/// would otherwise need a 0-bit register), and the counter width —
/// explicit or bounds-inferred, see [`resolve_counter_width`] — is
/// clamped to `1..=64`: the interpreter models counters in `u64`, and
/// a register wider than 64 bits could not be executed bit-for-bit.
pub fn lower_monitor(monitor: &Monitor, alphabet: &Alphabet, opts: &VerilogOptions) -> RtlModule {
    let names = NameMap::new(alphabet, &[opts.reset_name.as_str()]);

    let inputs: Vec<RtlInput> = monitor
        .observed_symbols()
        .iter()
        .map(|id| RtlInput {
            symbol: id,
            port: names.name(id).to_owned(),
        })
        .collect();

    let events = monitor.scoreboard_events();
    let counters: Vec<RtlCounter> = events
        .iter()
        .map(|&id| RtlCounter {
            event: id,
            reg: names.counter(id).to_owned(),
        })
        .collect();
    let slot_of = |id: SymbolId| -> u32 {
        events
            .iter()
            .position(|&e| e == id)
            .expect("scoreboard_events covers every action/chk target") as u32
    };

    let n_states = monitor.state_count();
    // bits needed to hold the largest state index, never less than one
    // (a 0-bit register is not Verilog, and `state_w - 1` must not
    // underflow in the part-select)
    let state_width = (usize::BITS - n_states.saturating_sub(1).leading_zeros()).max(1);

    let mut states = Vec::with_capacity(n_states);
    for s in 0..n_states {
        let mut arms = Vec::new();
        for t in monitor.transitions_from(StateId::from_index(s)) {
            let mut updates: Vec<(SymbolId, i64)> = action_deltas(&t.actions)
                .into_iter()
                .filter(|&(_, d)| d != 0)
                .collect();
            updates.sort_by_key(|&(id, _)| id.index());
            arms.push(RtlArm {
                guard: t.guard.clone(),
                target: t.target.index() as u32,
                pulse: t.target == monitor.final_state(),
                updates: updates
                    .into_iter()
                    .map(|(id, delta)| RtlUpdate {
                        counter: slot_of(id),
                        delta,
                    })
                    .collect(),
            });
        }
        states.push(arms);
    }

    RtlModule {
        name: format!(
            "{}_{}",
            opts.module_prefix,
            crate::names::sanitize(monitor.name())
        ),
        chart: monitor.name().to_owned(),
        clock: monitor.clock().to_owned(),
        reset: opts.reset_name.clone(),
        counter_width: resolve_counter_width(monitor, opts),
        saturating: opts.saturating,
        state_width,
        initial: monitor.initial().index() as u32,
        final_state: monitor.final_state().index() as u32,
        inputs,
        counters,
        states,
        names,
    }
}

/// Renders a guard expression against the module's name binding.
/// `Chk_evt(e)` compiles to a non-zero test of the counter register.
pub(crate) fn expr_to_verilog_named(e: &Expr, names: &NameMap) -> String {
    match e {
        Expr::Const(true) => "1'b1".to_owned(),
        Expr::Const(false) => "1'b0".to_owned(),
        Expr::Sym(id) => names.name(*id).to_owned(),
        Expr::ChkEvt(id) => format!("({} != 0)", names.counter(*id)),
        Expr::Not(inner) => format!("!({})", expr_to_verilog_named(inner, names)),
        Expr::And(es) => {
            let parts: Vec<String> = es.iter().map(|p| expr_to_verilog_named(p, names)).collect();
            format!("({})", parts.join(" && "))
        }
        Expr::Or(es) => {
            let parts: Vec<String> = es.iter().map(|p| expr_to_verilog_named(p, names)).collect();
            format!("({})", parts.join(" || "))
        }
    }
}

/// Renders an [`RtlModule`] as Verilog-2001 text.
///
/// This is the text half of the IR contract: `cesc-rtl`'s interpreter
/// executes the same [`RtlModule`] the renderer prints, so what the
/// co-simulation validates is exactly what this function emits.
pub fn render_verilog(module: &RtlModule) -> String {
    let rst = module.reset();
    let cw = module.counter_width;
    let max = module.counter_max();

    let mut v = String::new();
    let _ = writeln!(
        v,
        "// Generated by cesc-hdl from chart `{}` (clock {})",
        module.chart, module.clock
    );
    let _ = writeln!(
        v,
        "// Monitor: {} states, initial s{}, final s{}",
        module.state_count(),
        module.initial,
        module.final_state
    );
    let _ = writeln!(v, "module {} (", module.name);
    let _ = writeln!(v, "    input  wire clk,");
    let _ = writeln!(v, "    input  wire {rst},");
    for i in &module.inputs {
        let _ = writeln!(v, "    input  wire {},", i.port);
    }
    let _ = writeln!(v, "    output reg  match_pulse,");
    let _ = writeln!(v, "    output reg  [{}:0] state", module.state_width - 1);
    let _ = writeln!(v, ");");
    let _ = writeln!(v);
    for s in 0..module.state_count() {
        let _ = writeln!(v, "    localparam S{s} = {s};");
    }
    let _ = writeln!(v);
    for c in &module.counters {
        let _ = writeln!(v, "    reg [{}:0] {};", cw - 1, c.reg);
    }
    let _ = writeln!(v);
    let _ = writeln!(v, "    always @(posedge clk or negedge {rst}) begin");
    let _ = writeln!(v, "        if (!{rst}) begin");
    let _ = writeln!(v, "            state <= S{};", module.initial);
    let _ = writeln!(v, "            match_pulse <= 1'b0;");
    for c in &module.counters {
        let _ = writeln!(v, "            {} <= 0;", c.reg);
    }
    let _ = writeln!(v, "        end else begin");
    let _ = writeln!(v, "            match_pulse <= 1'b0;");
    let _ = writeln!(v, "            case (state)");
    for (s, arms) in module.states.iter().enumerate() {
        let _ = writeln!(v, "                S{s}: begin");
        for (idx, arm) in arms.iter().enumerate() {
            let cond = expr_to_verilog_named(&arm.guard, &module.names);
            let kw = if idx == 0 {
                format!("if ({cond})")
            } else if idx == arms.len() - 1 && arm.guard == Expr::t() {
                "else".to_owned()
            } else {
                format!("else if ({cond})")
            };
            let _ = writeln!(v, "                    {kw} begin");
            let _ = writeln!(v, "                        state <= S{};", arm.target);
            if arm.pulse {
                let _ = writeln!(v, "                        match_pulse <= 1'b1;");
            }
            for u in &arm.updates {
                let reg = &module.counters[u.counter as usize].reg;
                if u.delta > 0 {
                    let d = u.delta as u64;
                    if module.saturating {
                        if d > max {
                            // the increment alone overflows the
                            // register: pin at the ceiling
                            let _ = writeln!(
                                v,
                                "                        {reg} <= {cw}'d{max};"
                            );
                        } else {
                            let _ = writeln!(
                                v,
                                "                        {reg} <= ({reg} > {cw}'d{}) ? {cw}'d{max} : {reg} + {d};",
                                max - d
                            );
                        }
                    } else {
                        let _ = writeln!(v, "                        {reg} <= {reg} + {d};");
                    }
                } else {
                    let mag = -u.delta;
                    let _ = writeln!(
                        v,
                        "                        {reg} <= ({reg} > {mag}) ? {reg} - {mag} : 0;"
                    );
                }
            }
            let _ = writeln!(v, "                    end");
        }
        let _ = writeln!(v, "                end");
    }
    let _ = writeln!(v, "                default: state <= S{};", module.initial);
    let _ = writeln!(v, "            endcase");
    let _ = writeln!(v, "        end");
    let _ = writeln!(v, "    end");
    let _ = writeln!(v);
    let _ = writeln!(v, "endmodule");
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_chart::parse_document;
    use cesc_core::{synthesize, SynthOptions};

    fn hs() -> (cesc_chart::Document, Monitor) {
        let doc = parse_document(
            "scesc hs on clk { instances { M, S } events { req, ack } \
             tick { M: req } tick { S: ack } cause req -> ack; }",
        )
        .unwrap();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        (doc, m)
    }

    #[test]
    fn lowering_mirrors_monitor_shape() {
        let (doc, m) = hs();
        let module = lower_monitor(&m, &doc.alphabet, &VerilogOptions::default());
        assert_eq!(module.state_count(), m.state_count());
        assert_eq!(module.initial(), m.initial().index() as u32);
        assert_eq!(module.final_state(), m.final_state().index() as u32);
        assert_eq!(module.inputs().len(), m.observed_symbols().count() as usize);
        assert_eq!(module.counters().len(), m.scoreboard_events().len());
        for s in 0..module.state_count() {
            let ts = m.transitions_from(StateId::from_index(s));
            assert_eq!(module.arms(s).len(), ts.len());
            for (arm, t) in module.arms(s).iter().zip(ts) {
                assert_eq!(arm.target(), t.target.index() as u32);
                assert_eq!(arm.pulse(), t.target == m.final_state());
            }
        }
    }

    #[test]
    fn state_width_clamped_for_degenerate_monitors() {
        // hand-built 1-state monitor: `usize::BITS - lz(0)` is 0, which
        // used to underflow the `[state_w - 1:0]` part-select
        let mut ab = Alphabet::new();
        let a = ab.event("a");
        let m = Monitor::from_parts(
            "one",
            "clk",
            vec![vec![cesc_core::Transition {
                guard: Expr::t(),
                actions: vec![],
                target: StateId::from_index(0),
                kind: cesc_core::TransitionKind::Backward,
            }]],
            StateId::from_index(0),
            StateId::from_index(0),
            vec![Expr::sym(a)],
            vec![],
        );
        let module = lower_monitor(&m, &ab, &VerilogOptions::default());
        assert_eq!(module.state_width(), 1);
        let v = render_verilog(&module);
        assert!(v.contains("output reg  [0:0] state"), "{v}");
        assert!(v.contains("localparam S0 = 0;"), "{v}");
    }

    #[test]
    fn saturating_and_wrapping_increments_render_differently() {
        let (doc, m) = hs();
        let sat = render_verilog(&lower_monitor(&m, &doc.alphabet, &VerilogOptions::default()));
        assert!(
            sat.contains("sb_req <= (sb_req > 8'd254) ? 8'd255 : sb_req + 1;"),
            "{sat}"
        );
        let wrap = render_verilog(&lower_monitor(
            &m,
            &doc.alphabet,
            &VerilogOptions {
                saturating: false,
                ..Default::default()
            },
        ));
        assert!(wrap.contains("sb_req <= sb_req + 1;"), "{wrap}");
        // decrements floor at zero in both modes
        for v in [&sat, &wrap] {
            assert!(v.contains("sb_req <= (sb_req > 1) ? sb_req - 1 : 0;"), "{v}");
        }
    }

    #[test]
    fn counter_max_tracks_width() {
        let (doc, m) = hs();
        let module = lower_monitor(
            &m,
            &doc.alphabet,
            &VerilogOptions {
                counter_width: Some(3),
                ..Default::default()
            },
        );
        assert_eq!(module.counter_max(), 7);
        assert_eq!(module.counter_width(), 3);
        // widths outside 1..=64 are clamped — the interpreter models
        // counters in u64 and must stay exact
        let wide = lower_monitor(
            &m,
            &doc.alphabet,
            &VerilogOptions {
                counter_width: Some(200),
                ..Default::default()
            },
        );
        assert_eq!(wide.counter_width(), 64);
        assert_eq!(wide.counter_max(), u64::MAX);
        let zero = lower_monitor(
            &m,
            &doc.alphabet,
            &VerilogOptions {
                counter_width: Some(0),
                ..Default::default()
            },
        );
        assert_eq!(zero.counter_width(), 1);
    }
}
