//! # cesc-hdl — HDL back-ends for synthesized CESC monitors
//!
//! The paper's monitors live inside a simulation environment (Fig 4);
//! this crate emits them in the two forms an RTL verification flow
//! consumes:
//!
//! * [`emit_verilog`] — a synthesizable Verilog-2001 module: the monitor
//!   FSM plus the scoreboard as saturating counters, with a
//!   `match_pulse` output (full `Add_evt`/`Del_evt`/`Chk_evt` support).
//!   Emission is structured: [`lower_monitor`] builds the [`RtlModule`]
//!   IR, [`render_verilog`] prints it — and the `cesc-rtl` crate
//!   *executes* the same IR cycle-accurately for co-simulation against
//!   the engine;
//! * [`emit_sva_cover`] / [`emit_sva_implication`] — SystemVerilog
//!   Assertions: charts as `sequence`s (one grid line per cycle),
//!   detection as `cover property`, implication as
//!   `assert property (a |=> c)`;
//! * [`emit_testbench`] — a self-checking Verilog testbench driving a
//!   reference trace into the emitted module.
//!
//! All emitters share one collision-free identifier mangler
//! ([`NameMap`]), so symbols like `req.a` and `req_a` never fold onto
//! the same port.
//!
//! # Example
//!
//! ```
//! use cesc_chart::parse_document;
//! use cesc_core::{synthesize, SynthOptions};
//! use cesc_hdl::{emit_verilog, VerilogOptions};
//!
//! let doc = parse_document(
//!     "scesc hs on clk { instances { M } events { req, ack } \
//!      tick { M: req } tick { M: ack } cause req -> ack; }",
//! ).unwrap();
//! let monitor = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
//! let rtl = emit_verilog(&monitor, &doc.alphabet, &VerilogOptions::default());
//! assert!(rtl.contains("endmodule"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ir;
mod names;
mod sva;
mod testbench;
mod verilog;

pub use ir::{
    lower_monitor, render_verilog, resolve_counter_width, RtlArm, RtlCounter, RtlInput, RtlModule,
    RtlUpdate,
};
pub use names::{sanitize, NameMap};
pub use sva::{emit_sva_cover, emit_sva_implication, sva_loses_scoreboard, SvaOptions};
pub use testbench::{emit_testbench, TestbenchOptions};
pub use verilog::{emit_verilog, expr_to_verilog, VerilogOptions, DEFAULT_COUNTER_WIDTH};
