//! Offline shim for `crossbeam`: the [`channel`] module, backed by
//! `std::sync::mpsc`. Only the MPSC subset is provided (senders clone,
//! receivers do not), which is what this workspace's decoupled
//! monitoring harness uses.

#![warn(missing_docs)]

/// Multi-producer channels with crossbeam's constructor/return-type
/// shapes (`bounded`, `unbounded`, `Result`-returning `send`/`recv`).
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: SenderKind<T>,
    }

    #[derive(Debug)]
    enum SenderKind<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: match &self.inner {
                    SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
                    SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
                },
            }
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the value back if the receiving side disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderKind::Bounded(s) => s.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Unbounded(s) => s.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives the next value, blocking until one is available.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is empty and every
        /// sender has disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when empty or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }

    /// A channel buffering at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: SenderKind::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// A channel with an unbounded buffer.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: SenderKind::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_round_trip() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn unbounded_and_threads() {
        let (tx, rx) = channel::unbounded::<u32>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        h.join().unwrap();
        drop(tx);
        let got: Vec<u32> = rx.into_iter().collect();
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(channel::SendError(9)));
    }
}
