//! Offline shim for `parking_lot`: a [`Mutex`] whose `lock()` returns
//! the guard directly (no `Result`), built on `std::sync::Mutex` with
//! poison recovery.

#![warn(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's panic-free locking
/// API (`lock()` returns the guard, recovering from poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike
    /// `std::sync::Mutex`, a poisoned lock is recovered rather than
    /// surfaced as an error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn poison_is_recovered() {
        let m = Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
