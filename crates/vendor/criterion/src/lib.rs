//! Offline shim for `criterion`: a minimal wall-clock benchmark
//! harness with criterion's call-site API.
//!
//! Each benchmark is warmed up for `warm_up_time`, then measured over
//! `sample_size` samples sized to fill `measurement_time`; the
//! min/median/max per-iteration times are printed, plus throughput
//! when configured. No baselines, HTML reports or statistical tests.

#![warn(missing_docs)]

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration preceding measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self, name, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput
/// configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs, enabling
    /// elements/second reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &name, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &name, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering the parameter with `Display`.
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new(function: &str, p: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{p}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing context passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    /// Number of iterations the harness requests for this sample.
    iters: u64,
    /// Measured duration of the sample, set by [`Bencher::iter`].
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back executions of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(
    c: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up: also yields a per-iteration estimate for sample sizing.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < c.warm_up_time {
        f(&mut b);
        warm_iters += b.iters;
        if !b.elapsed.is_zero() {
            per_iter = b.elapsed / b.iters.max(1) as u32;
        }
        // grow geometrically so fast routines don't spin on overhead
        b.iters = (b.iters * 2).min(1 << 20);
    }
    let _ = warm_iters;

    // Size samples so all of them together fit the measurement budget.
    let budget_per_sample = c.measurement_time / c.sample_size as u32;
    let iters_per_sample = (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, u64::MAX as u128) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, x| a.partial_cmp(x).expect("finite timings"));
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];

    print!(
        "{name:<50} time: [{} {} {}]",
        fmt_time(min),
        fmt_time(median),
        fmt_time(max)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = count as f64 / median;
        print!("  thrpt: {}/s", fmt_rate(rate, unit));
    }
    println!();
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

fn fmt_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}", rate / 1e3)
    } else {
        format!("{rate:.2} {unit}")
    }
}

/// Declares a benchmark group function (criterion's
/// `name/config/targets` form, plus the positional form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        assert!(ran);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.bench_function("plain", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn formatting() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_time(5.0).contains(" s"));
        assert!(fmt_rate(2.5e6, "elem").contains("Melem"));
    }
}
