//! The case runner behind the `proptest!` macro.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`ProptestConfig::with_cases(n)`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure of one test case, produced by the `prop_assert*` macros or
/// an explicit `Err` return.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; the string explains why.
    Fail(String),
    /// The case was rejected (inputs outside the property's domain).
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The RNG handed to strategies: deterministic per (test name, case).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    pub(crate) fn for_case(test_hash: u64, case: u64) -> Self {
        TestRng {
            inner: StdRng::seed_from_u64(test_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `u64` below `n` (`n > 0`).
    pub fn u64_below(&mut self, n: u64) -> u64 {
        self.inner.random_range(0..n)
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.inner.random_range(lo..hi)
    }

    /// `true` with probability `num / den`.
    pub fn ratio(&mut self, num: u64, den: u64) -> bool {
        self.u64_below(den) < num
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Executes the per-case closure `cases` times, panicking with the
/// generated inputs on the first failure.
#[derive(Debug)]
pub struct Runner {
    config: ProptestConfig,
    test_hash: u64,
    name: &'static str,
}

impl Runner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        Runner {
            config,
            test_hash: fnv1a(name),
            name,
        }
    }

    /// Runs all cases. `case` returns the inputs' rendered form plus
    /// the outcome; panics inside the case body are caught and
    /// re-raised with the inputs attached via stderr.
    pub fn run<F>(&mut self, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        for k in 0..self.config.cases {
            let mut rng = TestRng::for_case(self.test_hash, k as u64);
            let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
            match outcome {
                Ok((_, Ok(()))) => {}
                Ok((_, Err(TestCaseError::Reject(_)))) => {}
                Ok((inputs, Err(TestCaseError::Fail(msg)))) => {
                    panic!(
                        "proptest `{}` failed at case {k}/{}: {msg}\n  inputs: {inputs}",
                        self.name, self.config.cases
                    );
                }
                Err(payload) => {
                    eprintln!(
                        "proptest `{}` panicked at case {k}/{} (inputs unavailable: generated before panic)",
                        self.name, self.config.cases
                    );
                    resume_unwind(payload);
                }
            }
        }
    }
}
