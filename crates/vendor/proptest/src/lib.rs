//! Offline shim for `proptest`: the strategy combinators and the
//! `proptest!` macro used by this workspace's property tests.
//!
//! Differences from the real crate, by design:
//!
//! * no shrinking — a failing case reports the generated inputs'
//!   `Debug` form and the case number, not a minimal counterexample;
//! * generation is deterministic: case `k` of test `t` derives its RNG
//!   seed from `hash(t) ⊕ k`, so failures reproduce across runs;
//! * only the combinators this workspace uses are provided
//!   ([`strategy::Strategy::prop_map`],
//!   [`strategy::Strategy::prop_recursive`],
//!   [`strategy::Strategy::boxed`], [`collection::vec`], tuples,
//!   ranges, [`strategy::Just`], [`strategy::any`], `prop_oneof!`).

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Value-collection strategies ([`collection::vec`]).
pub mod collection {
    use std::fmt;
    use std::ops::Range;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Sizes accepted by [`vec()`]: a fixed length or a half-open
    /// range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy for `Vec<T>` built by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for VecStrategy<S>
    where
        S: Strategy,
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` with a length drawn
    /// from `size` (a `usize` or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias so `prop::collection::vec` works as in the real
    /// crate.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Disjunction of strategies: `prop_oneof![a, b, c]` picks one arm
/// uniformly per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property-test failure assertion: like `assert!` but returns a
/// [`test_runner::TestCaseError`] so the runner can report the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Property-test equality assertion (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
                    l, r, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Property-test inequality assertion (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left != right`\n  both: {:?}", l),
            ));
        }
    }};
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` random
/// cases, reporting the generated inputs on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::Runner::new(config, stringify!($name));
                runner.run(|rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, rng);)+
                    let inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}", &$arg));
                            s.push_str("; ");
                        )+
                        s
                    };
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    (inputs, outcome)
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, b in 0u8..32) {
            prop_assert!(x < 10);
            prop_assert!(b < 32);
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0usize..5, 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4, "len {}", v.len());
            for x in v {
                prop_assert!(x < 5);
            }
        }

        #[test]
        fn tuples_and_any(pair in (0usize..3, any::<bool>())) {
            prop_assert!(pair.0 < 3);
            let _: bool = pair.1;
        }

        #[test]
        fn map_and_oneof(x in prop_oneof![Just(1usize), (5usize..7).prop_map(|v| v * 10)]) {
            prop_assert!(x == 1 || x == 50 || x == 60, "{x}");
        }

        #[test]
        fn early_return_ok(x in 0usize..2) {
            if x == 0 {
                return Ok(());
            }
            prop_assert_eq!(x, 1);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(usize),
        Node(Vec<Tree>),
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_respects_depth(
            t in (0usize..4).prop_map(Tree::Leaf).prop_recursive(3, 24, 3, |inner| {
                prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
            })
        ) {
            prop_assert!(depth(&t) <= 3, "depth {} of {:?}", depth(&t), t);
        }
    }

    #[test]
    fn determinism_across_runners() {
        use crate::strategy::Strategy;
        use crate::test_runner::{ProptestConfig, Runner};
        let collect = || {
            let mut out = Vec::new();
            let mut r = Runner::new(ProptestConfig::with_cases(16), "determinism");
            r.run(|rng| {
                out.push((0usize..1000).generate(rng));
                (String::new(), Ok(()))
            });
            out
        };
        assert_eq!(collect(), collect());
    }
}
