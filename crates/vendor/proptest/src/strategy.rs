//! Strategies: composable random-value generators.

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of random values of type [`Strategy::Value`].
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves, `branch`
    /// wraps an inner strategy into a composite, and recursion stops
    /// after `depth` levels. (`_desired_size` and `_expected_branch`
    /// are accepted for call-site compatibility and ignored.)
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        branch: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
        S: Strategy<Value = Self::Value> + 'static,
    {
        Recursive {
            leaf: self.boxed(),
            branch: Rc::new(move |inner| branch(inner).boxed()),
            depth,
        }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    branch: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive {
            leaf: self.leaf.clone(),
            branch: Rc::clone(&self.branch),
            depth: self.depth,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Recursive<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recursive").field("depth", &self.depth).finish()
    }
}

impl<T: fmt::Debug + 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // 40% leaves keep expected size small while still exercising
        // nesting up to `depth`.
        if self.depth == 0 || rng.ratio(2, 5) {
            self.leaf.generate(rng)
        } else {
            let inner = Recursive {
                leaf: self.leaf.clone(),
                branch: Rc::clone(&self.branch),
                depth: self.depth - 1,
            };
            (self.branch)(inner.boxed()).generate(rng)
        }
    }
}

/// Uniform choice between type-erased alternatives — the engine behind
/// `prop_oneof!`.
#[derive(Debug)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: fmt::Debug> Union<T> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.ratio(1, 2)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

/// Strategy over the whole domain of `T` (`any::<bool>()` etc.).
#[derive(Debug, Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.u64_below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                // u128 arithmetic: a full-domain u64/usize range has a
                // span of 2^64, which overflows the u64 the bounded
                // sampler takes — fall back to raw 64-bit draws there
                let span = (*self.end() as u128) - (*self.start() as u128) + 1;
                let offset = if span > u64::MAX as u128 {
                    rng.next_u64()
                } else {
                    rng.u64_below(span as u64)
                };
                self.start() + (offset as $t)
            }
        }
    )*};
}

impl_range_inclusive_strategy!(usize, u64, u32, u16, u8);

#[cfg(test)]
mod range_tests {
    use super::*;

    #[test]
    fn inclusive_ranges_cover_both_endpoints() {
        let mut rng = TestRng::for_case(7, 0);
        let strat = 1usize..=4;
        let mut seen = [false; 5];
        for _ in 0..256 {
            let v = strat.generate(&mut rng);
            assert!((1..=4).contains(&v), "{v}");
            seen[v] = true;
        }
        assert!(seen[1] && seen[4], "endpoints reachable: {seen:?}");
    }

    #[test]
    fn degenerate_inclusive_range_is_constant() {
        let mut rng = TestRng::for_case(3, 1);
        assert_eq!((9u32..=9).generate(&mut rng), 9);
    }

    #[test]
    fn full_domain_inclusive_range_does_not_overflow() {
        let mut rng = TestRng::for_case(11, 0);
        for _ in 0..64 {
            let _ = (0u64..=u64::MAX).generate(&mut rng);
            let _ = (0usize..=usize::MAX).generate(&mut rng);
            let _ = (0u8..=u8::MAX).generate(&mut rng);
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}
