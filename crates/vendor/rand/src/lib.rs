//! Offline shim for the `rand` crate.
//!
//! Implements the slice of the rand 0.9 API this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random_bool`] and [`Rng::random_range`]. The generator is
//! xoshiro256** seeded via splitmix64 — deterministic per seed, which
//! is all the trace generators and noise transactors require.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator: the core sampling interface.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // 53-bit uniform in [0,1)
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A uniformly random value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Seedable construction of a generator.
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types [`Rng::random_range`] can sample uniformly.
pub trait UniformInt: Copy + PartialOrd {
    /// Widens to `u64` relative to `lo` (the range's start).
    fn offset_from(self, lo: Self) -> u64;
    /// Inverse of [`UniformInt::offset_from`].
    fn offset_to(lo: Self, delta: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn offset_from(self, lo: Self) -> u64 {
                self.wrapping_sub(lo) as u64
            }
            fn offset_to(lo: Self, delta: u64) -> Self {
                lo.wrapping_add(delta as $t)
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8, i64, i32);

/// Ranges that can be sampled by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

fn uniform_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    // Lemire's rejection-free-ish multiply-shift with a retry loop to
    // remove modulo bias.
    assert!(n > 0, "cannot sample an empty range");
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let span = self.end.offset_from(self.start);
        assert!(span > 0, "cannot sample empty range");
        T::offset_to(self.start, uniform_below(rng, span))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        let span = hi.offset_from(lo);
        if span == u64::MAX {
            return T::offset_to(lo, rng.next_u64());
        }
        T::offset_to(lo, uniform_below(rng, span + 1))
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded via
    /// splitmix64 (not the real `StdRng`'s ChaCha12, but the same
    /// reproducibility contract: identical seeds give identical
    /// streams).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!r.random_bool(0.0));
            assert!(r.random_bool(1.0));
        }
    }

    #[test]
    fn random_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: usize = r.random_range(3..10);
            assert!((3..10).contains(&x));
            let y: usize = r.random_range(0..=5);
            assert!(y <= 5);
        }
        assert_eq!(r.random_range(4..=4usize), 4);
    }

    #[test]
    fn random_bool_roughly_fair() {
        let mut r = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.random_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "{heads}");
    }
}
