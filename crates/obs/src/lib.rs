//! # cesc-obs — the workspace's observability layer
//!
//! Monitoring cost is a first-class correctness concern for a runtime
//! verification pipeline: before `cesc serve` or a vectorized engine
//! can claim a speedup, something has to *measure* where the ticks go.
//! This crate is that something — a hand-rolled (no tokio, no
//! `tracing`; std-only, like the rest of the offline workspace)
//! instrumentation substrate with three pieces:
//!
//! * a **metrics registry** ([`Obs`]) of monotonic [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket power-of-two [`Histogram`]s, recorded
//!   through cheap cloneable handles whose hot path is one relaxed
//!   atomic op — and one `None` branch when the registry is disabled,
//!   so instrumented code compiled into release binaries costs nothing
//!   measurable when nobody asked for stats;
//! * **span timing** for the pipeline stages (`parse` → `resolve` →
//!   `compile` → `optimize` → `prove` → `plan` →
//!   `execute`/`cosim`/`fuzz.*`),
//!   recorded manually ([`Obs::time`], [`Obs::span`]) because the
//!   stages are few and the registry should not dictate control flow;
//! * a **[`RunReport`]** snapshot rendered as human text (`--stats`)
//!   or the documented [`OBS_JSON_SCHEMA`] JSON (`--stats-json`), plus
//!   a stderr [`Heartbeat`] (`--progress`) for long streaming runs.
//!
//! The per-shard execution picture ([`ShardStats`]: steps, chunks,
//! busy vs queue-wait nanoseconds, utilization) comes from `cesc-par`'s
//! workers; everything funnels into the one registry so a run has one
//! report.
//!
//! ```
//! use cesc_obs::{key, Obs};
//!
//! let obs = Obs::enabled();
//! let ticks = obs.counter(key::ENGINE_TICKS);
//! ticks.add(128);
//! let sum = obs.time("execute", || (0..4u64).sum::<u64>());
//! assert_eq!(sum, 6);
//! let report = obs.report("demo");
//! assert_eq!(report.counter(key::ENGINE_TICKS), 128);
//! assert!(report.render_json().starts_with("{\"schema\":\"cesc-obs/1\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

pub mod json;

mod io;
mod progress;
mod report;

pub use io::CountingReader;
pub use progress::{format_progress, Heartbeat};
pub use report::{HistogramSnapshot, RunReport, SpanSnapshot, OBS_JSON_SCHEMA};

/// Canonical metric names, so producers (`cesc-par`, the CLI, the fuzz
/// oracle) and consumers (reports, tests, the progress heartbeat)
/// agree without stringly-typed drift.
pub mod key {
    /// Ticks consumed by monitor engines (summed over fleet members).
    pub const ENGINE_TICKS: &str = "engine.ticks";
    /// Full-spec matches detected (summed over fleet members).
    pub const ENGINE_MATCHES: &str = "engine.matches";
    /// `Del_evt` scoreboard underflows (summed over fleet members).
    pub const ENGINE_UNDERFLOWS: &str = "engine.underflows";
    /// 64-tick word evaluations the bit-sliced engine performed.
    pub const ENGINE_WORDS: &str = "engine.words";
    /// Word evaluations that paid at least one scalar fallback.
    pub const ENGINE_DENSE_WORDS: &str = "engine.dense_words";
    /// Trace windows a segmented scan split the dump into.
    pub const SEGMENT_WINDOWS: &str = "segment.windows";
    /// Ticks executed speculatively across all window × state runs.
    pub const SEGMENT_SPECULATIVE_STEPS: &str = "segment.speculative_steps";
    /// Windows stitched by adopting a clean speculative run.
    pub const SEGMENT_ADOPTED: &str = "segment.adopted";
    /// Windows replayed exactly from the stitch carry state.
    pub const SEGMENT_REPLAYED: &str = "segment.replayed";
    /// Global steps fed through the streaming check loop.
    pub const FLEET_STEPS: &str = "fleet.steps";
    /// Chunks broadcast to the shard workers.
    pub const FLEET_CHUNKS: &str = "fleet.chunks";
    /// Per-clock ticks carried by the fed global steps.
    pub const FLEET_TICKS: &str = "fleet.ticks";
    /// Cycles driven through the RTL co-simulator.
    pub const COSIM_TICKS: &str = "cosim.ticks";
    /// Matches the RTL co-simulator agreed on.
    pub const COSIM_MATCHES: &str = "cosim.matches";
    /// Ticks where interpreted RTL and engine disagreed.
    pub const COSIM_DIVERGENCES: &str = "cosim.divergences";
    /// Differential fuzz cases executed.
    pub const FUZZ_CASES: &str = "fuzz.cases";
    /// Generated documents the pipeline legitimately rejected.
    pub const FUZZ_REJECTED: &str = "fuzz.rejected";
    /// Oracle discrepancies recorded by the campaign.
    pub const FUZZ_DISCREPANCIES: &str = "fuzz.discrepancies";
    /// Matches observed across agreeing fuzz cases.
    pub const FUZZ_MATCHES: &str = "fuzz.matches";
    /// Lint findings reported.
    pub const LINT_FINDINGS: &str = "lint.findings";
    /// Lint findings gating `--deny`.
    pub const LINT_DENIED: &str = "lint.denied";
    /// `implies(...)` asserts the static prover examined.
    pub const PROVE_ASSERTS: &str = "prove.asserts";
    /// Asserts proved (vacuously or not).
    pub const PROVE_PROVED: &str = "prove.proved";
    /// Asserts refuted with an engine-confirmed counterexample.
    pub const PROVE_REFUTED: &str = "prove.refuted";
    /// Product states explored across all proof searches.
    pub const PROVE_PRODUCT_STATES: &str = "prove.product_states";
    /// Guard-SAT queries issued by the prover (cache hits included).
    pub const PROVE_SAT_QUERIES: &str = "prove.sat_queries";
}

/// Histogram buckets: values bucketed by bit length (`⌊log2⌋ + 1`),
/// bucket 0 holding zero, bucket 64 holding the top half of the `u64`
/// range — fixed so recording is a shift, never an allocation.
pub const HISTOGRAM_BUCKETS: usize = 65;

struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Inclusive upper bound of histogram bucket `i` (`2^i - 1`; the last
/// bucket absorbs everything up to `u64::MAX`).
pub fn bucket_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// One accumulated pipeline-stage timing.
#[derive(Debug, Clone)]
struct SpanStat {
    name: String,
    calls: u64,
    total_ns: u64,
}

/// Final execution accounting of one `cesc-par` shard worker: what it
/// ran, how much it consumed, and how its wall time split between
/// doing work (`busy_ns`) and waiting on the feed channel (`wait_ns`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardStats {
    /// Shard index within the plan.
    pub shard: usize,
    /// Fleet members the shard owned.
    pub members: usize,
    /// Global steps / valuations consumed.
    pub steps: u64,
    /// Chunks received over the feed channel.
    pub chunks: u64,
    /// Nanoseconds spent executing chunks.
    pub busy_ns: u64,
    /// Nanoseconds spent blocked on the feed channel — high wait on
    /// one shard with high busy on another is the planner-imbalance
    /// signal.
    pub wait_ns: u64,
}

impl ShardStats {
    /// Fraction of the worker's accounted time spent executing
    /// (`busy / (busy + wait)`); `0.0` for a worker that never ran.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.wait_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

/// Everything one run records, behind one mutex that only non-hot-path
/// operations (handle registration, span recording, snapshots) take.
#[derive(Default)]
struct Registry {
    counters: Vec<(String, Arc<AtomicU64>)>,
    gauges: Vec<(String, Arc<AtomicU64>)>,
    histograms: Vec<(String, Arc<HistogramCells>)>,
    spans: Vec<SpanStat>,
    shards: Vec<ShardStats>,
}

struct Inner {
    started: Instant,
    registry: Mutex<Registry>,
}

/// The observability handle: a cheaply cloneable reference to one
/// run's registry, or — the [`Obs::disabled`] default — nothing at
/// all, in which case every recording operation is a `None` branch.
///
/// Instrumented code holds `Obs` (or pre-registered [`Counter`] /
/// [`Gauge`] / [`Histogram`] handles) unconditionally; whether a run
/// is observed is decided once, where the run starts.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs").field("enabled", &self.is_enabled()).finish()
    }
}

impl Obs {
    /// A live registry recording from now.
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Arc::new(Inner {
                started: Instant::now(),
                registry: Mutex::new(Registry::default()),
            })),
        }
    }

    /// The no-op handle (also [`Obs::default`]): every recording
    /// operation returns immediately.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// This handle if it records, otherwise a fresh enabled registry —
    /// for paths (like `cesc check --json`) that always want timings
    /// even when the caller brought no registry of their own.
    pub fn or_enabled(&self) -> Obs {
        if self.is_enabled() {
            self.clone()
        } else {
            Obs::enabled()
        }
    }

    /// Wall time since the registry was created (zero when disabled).
    pub fn elapsed(&self) -> Duration {
        self.inner.as_ref().map_or(Duration::ZERO, |i| i.started.elapsed())
    }

    fn with_registry<T>(&self, f: impl FnOnce(&mut Registry) -> T) -> Option<T> {
        let inner = self.inner.as_ref()?;
        Some(f(&mut inner.registry.lock().expect("obs registry poisoned")))
    }

    /// The counter handle named `name`, registering it on first use.
    /// Disabled registries hand back a no-op handle.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.with_registry(|r| {
            match r.counters.iter().find(|(n, _)| n == name) {
                Some((_, c)) => Arc::clone(c),
                None => {
                    let c = Arc::new(AtomicU64::new(0));
                    r.counters.push((name.to_owned(), Arc::clone(&c)));
                    c
                }
            }
        }))
    }

    /// The gauge handle named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.with_registry(|r| {
            match r.gauges.iter().find(|(n, _)| n == name) {
                Some((_, g)) => Arc::clone(g),
                None => {
                    let g = Arc::new(AtomicU64::new(0));
                    r.gauges.push((name.to_owned(), Arc::clone(&g)));
                    g
                }
            }
        }))
    }

    /// The histogram handle named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram(self.with_registry(|r| {
            match r.histograms.iter().find(|(n, _)| n == name) {
                Some((_, h)) => Arc::clone(h),
                None => {
                    let h = Arc::new(HistogramCells::new());
                    r.histograms.push((name.to_owned(), Arc::clone(&h)));
                    h
                }
            }
        }))
    }

    /// Accumulates `dur` into the pipeline span `name` (insertion
    /// order is report order).
    pub fn record_span(&self, name: &str, dur: Duration) {
        self.with_registry(|r| {
            let ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
            match r.spans.iter_mut().find(|s| s.name == name) {
                Some(s) => {
                    s.calls += 1;
                    s.total_ns = s.total_ns.saturating_add(ns);
                }
                None => r.spans.push(SpanStat {
                    name: name.to_owned(),
                    calls: 1,
                    total_ns: ns,
                }),
            }
        });
    }

    /// Runs `f` under the span `name`, recording its duration.
    pub fn time<T>(&self, name: &str, f: impl FnOnce() -> T) -> T {
        if self.is_enabled() {
            let t0 = Instant::now();
            let out = f();
            self.record_span(name, t0.elapsed());
            out
        } else {
            f()
        }
    }

    /// A drop-guard timer for the span `name` — for stages that span a
    /// scope rather than a closure.
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer {
            obs: self.clone(),
            name: name.to_owned(),
            start: self.is_enabled().then(Instant::now),
        }
    }

    /// Records one shard worker's final accounting.
    pub fn record_shard(&self, stats: ShardStats) {
        self.with_registry(|r| r.shards.push(stats));
    }

    /// Snapshots everything recorded so far into a renderable
    /// [`RunReport`] (the registry keeps recording; disabled handles
    /// snapshot an empty report with zero wall time).
    pub fn report(&self, command: &str) -> RunReport {
        let wall_ns = u64::try_from(self.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut out = RunReport {
            command: command.to_owned(),
            wall_ns,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
            spans: Vec::new(),
            shards: Vec::new(),
        };
        self.with_registry(|r| {
            out.counters = r
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.load(Ordering::Relaxed)))
                .collect();
            out.gauges = r
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.load(Ordering::Relaxed)))
                .collect();
            out.histograms = r
                .histograms
                .iter()
                .map(|(n, h)| {
                    let buckets: Vec<(u64, u64)> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let count = b.load(Ordering::Relaxed);
                            (count > 0).then_some((bucket_bound(i), count))
                        })
                        .collect();
                    HistogramSnapshot {
                        name: n.clone(),
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets,
                    }
                })
                .collect();
            out.spans = r
                .spans
                .iter()
                .map(|s| SpanSnapshot {
                    name: s.name.clone(),
                    calls: s.calls,
                    total_ns: s.total_ns,
                })
                .collect();
            out.shards = r.shards.clone();
            out.shards.sort_by_key(|s| s.shard);
        });
        out
    }
}

/// A monotonic counter handle. Cloneable, sendable, and a no-op when
/// it came from a disabled registry — hold it unconditionally on the
/// hot path.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (zero for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last/max-value gauge handle.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

impl Gauge {
    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if higher.
    #[inline]
    pub fn max(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (zero for a disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram handle (power-of-two buckets — see
/// [`bucket_bound`]).
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCells>>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let count = self.0.as_ref().map_or(0, |h| h.count.load(Ordering::Relaxed));
        f.debug_tuple("Histogram").field(&count).finish()
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
        }
    }
}

/// Drop-guard returned by [`Obs::span`]: records the elapsed time into
/// its span when dropped.
#[derive(Debug)]
pub struct SpanTimer {
    obs: Obs,
    name: String,
    start: Option<Instant>,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            self.obs.record_span(&self.name, t0.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_by_name() {
        let obs = Obs::enabled();
        let a = obs.counter("x");
        let b = obs.counter("x");
        a.add(3);
        b.incr();
        assert_eq!(obs.counter("x").get(), 4);
        assert_eq!(obs.counter("y").get(), 0);
        let report = obs.report("t");
        assert_eq!(report.counter("x"), 4);
    }

    #[test]
    fn gauges_store_and_max() {
        let obs = Obs::enabled();
        let g = obs.gauge("depth");
        g.set(7);
        g.max(3); // lower: no change
        assert_eq!(g.get(), 7);
        g.max(12);
        assert_eq!(obs.gauge("depth").get(), 12);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let obs = Obs::enabled();
        let h = obs.histogram("chunk");
        h.record(0);
        h.record(1);
        h.record(1023);
        h.record(1024);
        h.record(u64::MAX);
        let report = obs.report("t");
        let snap = &report.histograms[0];
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 0u64.wrapping_add(1 + 1023 + 1024).wrapping_add(u64::MAX));
        // buckets: 0 → le 0; 1 → le 1; 1023 → le 1023; 1024 → le 2047;
        // u64::MAX → the terminal bucket
        let les: Vec<u64> = snap.buckets.iter().map(|&(le, _)| le).collect();
        assert_eq!(les, vec![0, 1, 1023, 2047, u64::MAX]);
        assert!(snap.buckets.iter().all(|&(_, c)| c == 1));
    }

    #[test]
    fn bucket_bounds_are_monotonic() {
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1), "bucket {i}");
        }
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn spans_keep_insertion_order_and_accumulate() {
        let obs = Obs::enabled();
        obs.record_span("parse", Duration::from_micros(10));
        obs.record_span("execute", Duration::from_micros(30));
        obs.record_span("parse", Duration::from_micros(5));
        let spans = obs.report("t").spans;
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "parse");
        assert_eq!(spans[0].calls, 2);
        assert_eq!(spans[0].total_ns, 15_000);
        assert_eq!(spans[1].name, "execute");
    }

    #[test]
    fn time_and_span_guard_record() {
        let obs = Obs::enabled();
        let v = obs.time("compile", || 41 + 1);
        assert_eq!(v, 42);
        {
            let _guard = obs.span("execute");
        }
        let spans = obs.report("t").spans;
        assert_eq!(spans.iter().filter(|s| s.calls == 1).count(), 2);
    }

    #[test]
    fn shard_stats_utilization() {
        let s = ShardStats {
            shard: 0,
            members: 2,
            steps: 100,
            chunks: 4,
            busy_ns: 750,
            wait_ns: 250,
        };
        assert!((s.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(ShardStats::default().utilization(), 0.0);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let c = obs.counter(key::ENGINE_TICKS);
        c.add(1000);
        assert_eq!(c.get(), 0);
        obs.gauge("g").set(5);
        obs.histogram("h").record(9);
        obs.record_span("parse", Duration::from_secs(1));
        obs.record_shard(ShardStats::default());
        assert_eq!(obs.time("execute", || 7), 7);
        let report = obs.report("noop");
        assert!(report.counters.is_empty());
        assert!(report.gauges.is_empty());
        assert!(report.histograms.is_empty());
        assert!(report.spans.is_empty());
        assert!(report.shards.is_empty());
        assert_eq!(report.wall_ns, 0);
    }

    #[test]
    fn or_enabled_upgrades_only_disabled_handles() {
        let live = Obs::enabled();
        live.counter("x").incr();
        let same = live.or_enabled();
        assert_eq!(same.counter("x").get(), 1, "same registry");
        let fresh = Obs::disabled().or_enabled();
        assert!(fresh.is_enabled());
        assert_eq!(fresh.counter("x").get(), 0, "fresh registry");
    }

    #[test]
    fn handles_cross_threads() {
        let obs = Obs::enabled();
        let c = obs.counter("t");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }
}
