//! Minimal JSON emission helpers shared by the report renderers.
//!
//! Hand-rolled like `cesc-check`'s and `cesc-lint`'s emitters — the
//! workspace has no serde, and the report shapes are small enough
//! that explicit `format!` assembly stays readable and auditable.

/// Escapes `s` as the *contents* of a JSON string literal and wraps
/// it in quotes.
pub fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float with enough precision for throughput/utilization
/// fields while staying valid JSON (no NaN/inf — those clamp to 0).
pub fn float(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0.0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(string("plain"), "\"plain\"");
        assert_eq!(string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(string("n\nr\rt\t"), "\"n\\nr\\rt\\t\"");
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_are_finite_json() {
        assert_eq!(float(0.75), "0.7500");
        assert_eq!(float(f64::NAN), "0.0");
        assert_eq!(float(f64::INFINITY), "0.0");
    }
}
