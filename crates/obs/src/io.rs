//! [`CountingReader`]: a `BufRead` adapter that counts consumed bytes.
//!
//! The streaming check loop reads VCDs through `BufRead::read_line`,
//! which drains data via `fill_buf`/`consume` — so counting inside
//! `consume` sees every byte exactly once. The count lives in a
//! shared atomic cell so the progress heartbeat thread can read it
//! while the reader is mid-stream.

use std::io::{self, BufRead, Read};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wraps any [`BufRead`], tallying bytes as they are consumed.
#[derive(Debug)]
pub struct CountingReader<R> {
    inner: R,
    count: Arc<AtomicU64>,
}

impl<R: BufRead> CountingReader<R> {
    /// Wraps `inner` with a fresh zeroed byte counter.
    pub fn new(inner: R) -> Self {
        CountingReader {
            inner,
            count: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Bytes consumed so far.
    pub fn bytes_read(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A shareable handle on the byte counter, for observers on
    /// other threads (the progress heartbeat).
    pub fn cell(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.count)
    }
}

impl<R: BufRead> Read for CountingReader<R> {
    // Route plain reads through fill_buf/consume so every byte is
    // counted exactly once regardless of the access pattern.
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let available = self.inner.fill_buf()?;
        let n = available.len().min(buf.len());
        buf[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl<R: BufRead> BufRead for CountingReader<R> {
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        self.inner.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.count.fetch_add(amt as u64, Ordering::Relaxed);
        self.inner.consume(amt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_line_counts_every_byte() {
        let data = "one\ntwo\nthree\n";
        let mut r = CountingReader::new(data.as_bytes());
        let cell = r.cell();
        let mut line = String::new();
        let mut total = 0;
        loop {
            line.clear();
            let n = r.read_line(&mut line).unwrap();
            if n == 0 {
                break;
            }
            total += n;
        }
        assert_eq!(total, data.len());
        assert_eq!(r.bytes_read(), data.len() as u64);
        assert_eq!(cell.load(Ordering::Relaxed), data.len() as u64);
    }

    #[test]
    fn plain_read_counts_too() {
        let data = b"abcdefgh";
        let mut r = CountingReader::new(&data[..]);
        let mut buf = [0u8; 3];
        let mut total = 0;
        loop {
            let n = r.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            total += n;
        }
        assert_eq!(total, data.len());
        assert_eq!(r.bytes_read(), data.len() as u64);
    }
}
