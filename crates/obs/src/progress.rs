//! [`Heartbeat`]: the `--progress` stderr ticker for long runs.
//!
//! A background thread wakes on an interval, reads the shared tick
//! counter (and optionally the [`CountingReader`](crate::CountingReader)
//! byte cell plus the input's total size, for percent + ETA) and
//! prints one line to stderr. The line itself comes from the pure
//! [`format_progress`] so rendering is testable without threads or
//! timers; the thread is stopped-and-joined on drop so a finished run
//! never leaves a stray ticker printing over the final report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::Counter;

/// Renders one progress line: ticks so far, throughput, and — when
/// the input size is known — percent complete and a remaining-time
/// estimate extrapolated from bytes consumed.
pub fn format_progress(
    ticks: u64,
    elapsed: Duration,
    bytes: u64,
    total_bytes: Option<u64>,
) -> String {
    let secs = elapsed.as_secs_f64();
    let rate = if secs > 0.0 { ticks as f64 / secs } else { 0.0 };
    let mut out = format!("progress: {ticks} ticks | {:.2} Mticks/s", rate / 1e6);
    if let Some(total) = total_bytes {
        if total > 0 {
            let done = bytes.min(total);
            let pct = done as f64 * 100.0 / total as f64;
            out.push_str(&format!(" | {pct:.0}%"));
            if done > 0 && done < total && secs > 0.0 {
                let eta = secs * (total - done) as f64 / done as f64;
                if eta >= 90.0 {
                    out.push_str(&format!(" | ETA {:.0}m{:02.0}s", (eta / 60.0).floor(), eta % 60.0));
                } else {
                    out.push_str(&format!(" | ETA {eta:.0}s"));
                }
            }
        }
    }
    out
}

/// A join-on-drop stderr progress ticker.
#[derive(Debug)]
pub struct Heartbeat {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Heartbeat {
    /// Starts the ticker: every `interval`, print the current
    /// progress line. `ticks` is the live counter to report;
    /// `bytes` optionally pairs the consumed-bytes cell with the
    /// input's total size for percent/ETA.
    pub fn start(
        interval: Duration,
        ticks: Counter,
        bytes: Option<(Arc<AtomicU64>, u64)>,
    ) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let shared = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let started = Instant::now();
            let (lock, cvar) = &*shared;
            let mut stopped = lock.lock().expect("heartbeat lock poisoned");
            while !*stopped {
                let (guard, timeout) = cvar
                    .wait_timeout(stopped, interval)
                    .expect("heartbeat lock poisoned");
                stopped = guard;
                if *stopped || !timeout.timed_out() {
                    continue;
                }
                let (consumed, total) = match &bytes {
                    Some((cell, total)) => (cell.load(Ordering::Relaxed), Some(*total)),
                    None => (0, None),
                };
                eprintln!(
                    "{}",
                    format_progress(ticks.get(), started.elapsed(), consumed, total)
                );
            }
        });
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the ticker and joins its thread (also done on drop).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().expect("heartbeat lock poisoned") = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn format_without_size() {
        let line = format_progress(2_000_000, Duration::from_secs(1), 0, None);
        assert_eq!(line, "progress: 2000000 ticks | 2.00 Mticks/s");
    }

    #[test]
    fn format_with_size_and_eta() {
        let line = format_progress(500_000, Duration::from_secs(2), 250, Some(1000));
        assert_eq!(line, "progress: 500000 ticks | 0.25 Mticks/s | 25% | ETA 6s");
        let long = format_progress(1, Duration::from_secs(100), 100, Some(1000));
        assert!(long.ends_with("| 10% | ETA 15m00s"), "{long}");
    }

    #[test]
    fn format_clamps_and_omits_degenerate_eta() {
        // bytes past the total: clamp to 100%, no ETA
        let done = format_progress(10, Duration::from_secs(1), 2000, Some(1000));
        assert!(done.ends_with("| 100%"), "{done}");
        // nothing consumed yet: percent but no ETA
        let fresh = format_progress(0, Duration::from_secs(1), 0, Some(1000));
        assert!(fresh.ends_with("| 0%"), "{fresh}");
        // zero elapsed: no rate blowup
        let zero = format_progress(10, Duration::ZERO, 0, None);
        assert!(zero.contains("0.00 Mticks/s"), "{zero}");
    }

    #[test]
    fn heartbeat_stops_promptly() {
        let obs = Obs::enabled();
        let hb = Heartbeat::start(Duration::from_secs(60), obs.counter("t"), None);
        let t0 = Instant::now();
        hb.stop();
        assert!(t0.elapsed() < Duration::from_secs(5));
    }
}
