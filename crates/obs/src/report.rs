//! [`RunReport`]: the rendered end-of-run snapshot.
//!
//! One report carries everything a run recorded — counters, gauges,
//! histograms, pipeline spans, per-shard execution stats — and knows
//! how to print itself as human text (`--stats`) or as one line of
//! the documented [`OBS_JSON_SCHEMA`] JSON (`--stats-json`).

use crate::{json, ShardStats};

/// Schema identifier for the JSON rendering of a [`RunReport`].
///
/// The document is a single JSON object:
///
/// ```json
/// {
///   "schema": "cesc-obs/1",
///   "command": "check",
///   "wall_ms": 41.2708,
///   "counters": { "engine.ticks": 240000, "engine.matches": 4 },
///   "gauges": { "fleet.shards": 4 },
///   "spans": [
///     { "name": "parse", "calls": 1, "ms": 0.1031 },
///     { "name": "execute", "calls": 1, "ms": 39.8210 }
///   ],
///   "histograms": [
///     { "name": "chunk.steps", "count": 30, "sum": 240000,
///       "buckets": [ { "le": 8191, "count": 30 } ] }
///   ],
///   "shards": [
///     { "shard": 0, "members": 3, "steps": 240000, "chunks": 30,
///       "busy_ms": 31.0042, "wait_ms": 8.1001, "utilization": 0.7928 }
///   ]
/// }
/// ```
///
/// Contract:
/// * `schema` is always first and always `"cesc-obs/1"`.
/// * `counters` / `gauges` map metric name → non-negative integer;
///   absent metrics were simply never touched.
/// * `spans` preserve recording order (pipeline order); `ms` values
///   are milliseconds with four decimal places.
/// * Histogram `buckets` list only non-empty buckets, ascending by
///   inclusive upper bound `le` (`2^i - 1`; the terminal bucket's
///   `le` is `u64::MAX`).
/// * `shards` are sorted by shard index; `utilization` is
///   `busy / (busy + wait)` in `[0, 1]`.
/// * New fields may be appended in later schema revisions; existing
///   fields keep their meaning.
pub const OBS_JSON_SCHEMA: &str = "cesc-obs/1";

/// One pipeline stage's accumulated timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Stage name (`parse`, `resolve`, `compile`, `optimize`, `plan`,
    /// `execute`, `cosim`, `fuzz.*`, ...).
    pub name: String,
    /// How many times the stage ran.
    pub calls: u64,
    /// Total nanoseconds across all calls.
    pub total_ns: u64,
}

/// One histogram's rendered state: only non-empty buckets, ascending
/// by inclusive upper bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// `(inclusive upper bound, observations)` for non-empty buckets.
    pub buckets: Vec<(u64, u64)>,
}

/// A point-in-time snapshot of one run's registry, produced by
/// [`Obs::report`](crate::Obs::report).
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// The subcommand that produced the run (`check`, `fuzz`, ...).
    pub command: String,
    /// Wall-clock nanoseconds from registry creation to snapshot.
    pub wall_ns: u64,
    /// Counter values in registration order.
    pub counters: Vec<(String, u64)>,
    /// Gauge values in registration order.
    pub gauges: Vec<(String, u64)>,
    /// Histogram snapshots in registration order.
    pub histograms: Vec<HistogramSnapshot>,
    /// Pipeline spans in recording order.
    pub spans: Vec<SpanSnapshot>,
    /// Per-shard execution stats, sorted by shard index.
    pub shards: Vec<ShardStats>,
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

impl RunReport {
    /// Value of counter `name`, zero if never recorded.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Value of gauge `name`, zero if never recorded.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Total nanoseconds recorded for span `name`, if it ran.
    pub fn span_ns(&self, name: &str) -> Option<u64> {
        self.spans.iter().find(|s| s.name == name).map(|s| s.total_ns)
    }

    /// Wall time in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        ms(self.wall_ns)
    }

    /// Renders the human-readable `--stats` block.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== run stats ({}) ==\nwall time      {:.3} ms\n",
            self.command,
            self.wall_ms()
        ));
        if !self.spans.is_empty() {
            out.push_str("pipeline:\n");
            for s in &self.spans {
                out.push_str(&format!(
                    "  {:<12} {:>12.3} ms  ({} call{})\n",
                    s.name,
                    ms(s.total_ns),
                    s.calls,
                    if s.calls == 1 { "" } else { "s" }
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (n, v) in &self.counters {
                out.push_str(&format!("  {n:<20} {v}\n"));
            }
            let ticks = self.counter(crate::key::ENGINE_TICKS);
            if ticks > 0 && self.wall_ns > 0 {
                out.push_str(&format!(
                    "  {:<20} {:.3}\n",
                    "engine.mticks_per_s",
                    ticks as f64 * 1e3 / self.wall_ns as f64
                ));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (n, v) in &self.gauges {
                out.push_str(&format!("  {n:<20} {v}\n"));
            }
        }
        for h in &self.histograms {
            let mean = if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 };
            out.push_str(&format!(
                "histogram {}: count {} sum {} mean {:.1}\n",
                h.name, h.count, h.sum, mean
            ));
            for &(le, c) in &h.buckets {
                if le == u64::MAX {
                    out.push_str(&format!("  le max        {c}\n"));
                } else {
                    out.push_str(&format!("  le {le:<11} {c}\n"));
                }
            }
        }
        if !self.shards.is_empty() {
            out.push_str("shards:\n");
            for s in &self.shards {
                out.push_str(&format!(
                    "  #{:<3} members {:<4} steps {:<10} chunks {:<6} busy {:>10.3} ms  wait {:>10.3} ms  util {:>5.1}%\n",
                    s.shard,
                    s.members,
                    s.steps,
                    s.chunks,
                    ms(s.busy_ns),
                    ms(s.wait_ns),
                    s.utilization() * 100.0
                ));
            }
        }
        out
    }

    /// Renders the [`OBS_JSON_SCHEMA`] JSON document (one line, with
    /// trailing newline).
    pub fn render_json(&self) -> String {
        let map = |entries: &[(String, u64)]| {
            entries
                .iter()
                .map(|(n, v)| format!("{}:{}", json::string(n), v))
                .collect::<Vec<_>>()
                .join(",")
        };
        let spans = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\":{},\"calls\":{},\"ms\":{}}}",
                    json::string(&s.name),
                    s.calls,
                    json::float(ms(s.total_ns))
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|&(le, c)| format!("{{\"le\":{le},\"count\":{c}}}"))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"name\":{},\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                    json::string(&h.name),
                    h.count,
                    h.sum,
                    buckets
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        let shards = self
            .shards
            .iter()
            .map(|s| {
                format!(
                    "{{\"shard\":{},\"members\":{},\"steps\":{},\"chunks\":{},\"busy_ms\":{},\"wait_ms\":{},\"utilization\":{}}}",
                    s.shard,
                    s.members,
                    s.steps,
                    s.chunks,
                    json::float(ms(s.busy_ns)),
                    json::float(ms(s.wait_ns)),
                    json::float(s.utilization())
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema\":{},\"command\":{},\"wall_ms\":{},\"counters\":{{{}}},\"gauges\":{{{}}},\"spans\":[{}],\"histograms\":[{}],\"shards\":[{}]}}\n",
            json::string(OBS_JSON_SCHEMA),
            json::string(&self.command),
            json::float(self.wall_ms()),
            map(&self.counters),
            map(&self.gauges),
            spans,
            histograms,
            shards,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{key, Obs};
    use std::time::Duration;

    fn sample() -> RunReport {
        let obs = Obs::enabled();
        obs.counter(key::ENGINE_TICKS).add(240_000);
        obs.counter(key::ENGINE_MATCHES).add(4);
        obs.gauge("fleet.shards").set(2);
        obs.record_span("parse", Duration::from_micros(100));
        obs.record_span("execute", Duration::from_millis(4));
        let h = obs.histogram("chunk.steps");
        h.record(8000);
        h.record(8000);
        obs.record_shard(ShardStats {
            shard: 1,
            members: 1,
            steps: 120_000,
            chunks: 15,
            busy_ns: 2_000_000,
            wait_ns: 1_000_000,
        });
        obs.record_shard(ShardStats {
            shard: 0,
            members: 2,
            steps: 120_000,
            chunks: 15,
            busy_ns: 3_000_000,
            wait_ns: 100_000,
        });
        obs.report("check")
    }

    #[test]
    fn json_shape_and_order() {
        let r = sample();
        let json = r.render_json();
        assert!(json.starts_with("{\"schema\":\"cesc-obs/1\",\"command\":\"check\""), "{json}");
        assert!(json.ends_with("}\n"), "{json}");
        assert!(json.contains("\"engine.ticks\":240000"), "{json}");
        assert!(json.contains("\"name\":\"parse\",\"calls\":1,\"ms\":0.1000"), "{json}");
        assert!(json.contains("\"chunk.steps\",\"count\":2,\"sum\":16000"), "{json}");
        assert!(json.contains("\"le\":8191,\"count\":2"), "{json}");
        // shards sorted by index
        let s0 = json.find("\"shard\":0").expect("shard 0");
        let s1 = json.find("\"shard\":1").expect("shard 1");
        assert!(s0 < s1, "{json}");
        assert!(json.contains("\"utilization\":0.6667"), "{json}");
        // exactly one line of output
        assert_eq!(json.matches('\n').count(), 1);
    }

    #[test]
    fn text_lists_everything() {
        let r = sample();
        let text = r.render_text();
        assert!(text.contains("== run stats (check) =="), "{text}");
        assert!(text.contains("parse"), "{text}");
        assert!(text.contains("engine.ticks"), "{text}");
        assert!(text.contains("engine.mticks_per_s"), "{text}");
        assert!(text.contains("histogram chunk.steps: count 2 sum 16000 mean 8000.0"), "{text}");
        assert!(text.contains("#0"), "{text}");
        assert!(text.contains("util"), "{text}");
    }

    #[test]
    fn accessors() {
        let r = sample();
        assert_eq!(r.counter(key::ENGINE_TICKS), 240_000);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("fleet.shards"), 2);
        assert_eq!(r.span_ns("execute"), Some(4_000_000));
        assert_eq!(r.span_ns("cosim"), None);
    }

    #[test]
    fn empty_report_renders_cleanly() {
        let r = Obs::disabled().report("noop");
        let json = r.render_json();
        assert!(json.contains("\"counters\":{}"), "{json}");
        assert!(json.contains("\"spans\":[]"), "{json}");
        let text = r.render_text();
        assert!(text.contains("== run stats (noop) =="), "{text}");
    }
}
