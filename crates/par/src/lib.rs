//! # cesc-par — sharded parallel monitor-fleet execution
//!
//! The paper deploys synthesized monitors as a *fleet*: one observer
//! per scenario, all watching the same simulation (Fig 4). The batch
//! engine in `cesc-core` already drives a whole fleet over one decoded
//! stream — on a single core. This crate shards that fleet across
//! worker threads:
//!
//! * [`Fleet`] — the compiled plan: single-clock monitors
//!   ([`cesc_core::CompiledMonitor`]), multi-clock monitors
//!   ([`cesc_core::CompiledMultiClock`]) and `implies(...)` assertion
//!   checkers ([`AssertSpec`]);
//! * [`plan_shards`] — the cost-model-driven planner: LPT balancing on
//!   the compiled tables' footprint-derived
//!   [`step_cost`](cesc_core::CompiledMonitor::step_cost), with
//!   scoreboard-footprint affinity co-locating coupled monitors;
//! * [`run_sharded`] — the executor: one worker per shard, decoded
//!   `Step`/[`GlobalStep`](cesc_trace::GlobalStep) chunks broadcast as
//!   reference-counted messages over bounded channels, zero
//!   cross-shard locking on the hot path, per-shard results merged at
//!   join into a [`FleetReport`];
//! * [`scan_segmented`] — trace-segment speculative parallelism for
//!   the *single-big-monitor* case fleet sharding cannot touch: the
//!   dump is cut into windows, every window runs speculatively from
//!   every reachable state, and clean runs are stitched at the joins
//!   (unclean ones replay exactly), bit-identical to serial;
//! * [`MatchLog`] — bounded match tallies, so a bulk-traffic run's
//!   residency stays constant unless the caller asks for every hit.
//!
//! Verdicts are **bit-identical to the serial engine**: for every
//! member, any shard count and any chunking produce exactly the
//! hits/underflows of [`cesc_core::MonitorBank::feed`] /
//! [`feed_global`](cesc_core::MonitorBank::feed_global) — pinned by
//! the `batch_equivalence` property suite at the workspace root.
//!
//! # Quickstart
//!
//! ```
//! use cesc_chart::parse_document;
//! use cesc_core::{synthesize, SynthOptions};
//! use cesc_expr::Valuation;
//! use cesc_par::{plan_shards, scan_sharded, Fleet, ParOptions};
//!
//! let doc = parse_document(
//!     "scesc hs on clk { instances { M, S } events { req, ack } \
//!      tick { M: req } tick { S: ack } cause req -> ack; }",
//! ).unwrap();
//! let mut fleet = Fleet::new();
//! let hs = fleet.add(&synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap());
//!
//! let req = doc.alphabet.lookup("req").unwrap();
//! let ack = doc.alphabet.lookup("ack").unwrap();
//! let trace = vec![Valuation::of([req]), Valuation::of([ack])];
//!
//! let plan = plan_shards(&fleet, 4);
//! let report = scan_sharded(&fleet, &plan, &ParOptions::default(), &trace, 1024);
//! assert_eq!(report.singles[hs].log.all(), Some(&[1][..]));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fleet;
mod plan;
mod segment;
mod tally;

pub use fleet::{
    run_sharded, scan_sharded, scan_sharded_global, AssertReport, AssertSpec, Fleet, FleetFeeder,
    FleetReport, MultiReport, ParOptions, SingleReport, ASSERT_VIOLATION_KEEP,
};
pub use plan::{plan_shards, FleetItem, ShardPlan};
pub use segment::{scan_segmented, SegmentOptions, SegmentReport};
pub use tally::MatchLog;

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_chart::parse_document;
    use cesc_core::{
        synthesize, synthesize_multiclock, MonitorBank, SynthOptions, Verdict,
    };
    use cesc_expr::Valuation;
    use cesc_trace::{ClockDomain, ClockSet, GlobalRun, Trace};

    const PLAN_SRC: &str = r#"
        scesc hs on clk1 {
            instances { M, S }
            events { req, ack }
            tick { M: req }
            tick { S: ack }
            cause req -> ack;
        }
        scesc pulse on clk1 { instances { M } events { req } tick { M: req } }
        scesc m2 on clk2 { instances { B } events { done } tick { B: done } }
        multiclock pair { charts { hs, m2 } cause req -> done; }
    "#;

    fn doc() -> cesc_chart::Document {
        parse_document(PLAN_SRC).unwrap()
    }

    fn ev(d: &cesc_chart::Document, n: &str) -> cesc_expr::SymbolId {
        d.alphabet.lookup(n).unwrap()
    }

    #[test]
    fn sharded_local_feed_matches_serial_bank() {
        let d = doc();
        let hs = synthesize(d.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        let pulse = synthesize(d.chart("pulse").unwrap(), &SynthOptions::default()).unwrap();
        let trace: Vec<Valuation> = (0..500)
            .map(|k| {
                if k % 3 == 0 {
                    Valuation::of([ev(&d, "req")])
                } else {
                    Valuation::of([ev(&d, "ack")])
                }
            })
            .collect();

        let mut bank = MonitorBank::new();
        bank.add(&hs);
        bank.add(&pulse);
        bank.feed(&trace);

        for jobs in [1, 2, 3, 5] {
            let mut fleet = Fleet::new();
            fleet.add(&hs);
            fleet.add(&pulse);
            let plan = plan_shards(&fleet, jobs);
            let report = scan_sharded(&fleet, &plan, &ParOptions::default(), &trace, 64);
            assert_eq!(report.singles[0].log.all(), Some(bank.hits(0)), "jobs={jobs}");
            assert_eq!(report.singles[1].log.all(), Some(bank.hits(1)), "jobs={jobs}");
            assert_eq!(report.singles[0].ticks, 500);
        }
    }

    #[test]
    fn sharded_global_feed_matches_serial_bank() {
        let d = doc();
        let pulse = synthesize(d.chart("pulse").unwrap(), &SynthOptions::default()).unwrap();
        let mm = synthesize_multiclock(d.multiclock_spec("pair").unwrap(), &SynthOptions::default())
            .unwrap();
        let mut clocks = ClockSet::new();
        let c1 = clocks.add(ClockDomain::new("clk1", 2, 0));
        let c2 = clocks.add(ClockDomain::new("clk2", 2, 1));
        let n = 200;
        let run = GlobalRun::interleave(
            &clocks,
            &[
                (c1, Trace::from_elements(vec![Valuation::of([ev(&d, "req")]); n])),
                (c2, Trace::from_elements(vec![Valuation::of([ev(&d, "done")]); n])),
            ],
        )
        .unwrap();

        let mut bank = MonitorBank::new();
        let bs = bank.add(&pulse);
        let bm = bank.add_multiclock(&mm);
        bank.feed_global(&clocks, run.as_slice());

        for jobs in [1, 2, 4] {
            let mut fleet = Fleet::new();
            let fs = fleet.add(&pulse);
            let fm = fleet.add_multiclock(&mm);
            let plan = plan_shards(&fleet, jobs);
            let report = scan_sharded_global(
                &fleet,
                &plan,
                &clocks,
                &ParOptions::default(),
                run.as_slice(),
                33,
            );
            assert_eq!(report.singles[fs].log.all(), Some(bank.hits(bs)), "jobs={jobs}");
            assert_eq!(
                report.multis[fm].log.all(),
                Some(bank.multiclock_hits(bm)),
                "jobs={jobs}"
            );
            assert_eq!(report.multis[fm].underflows, bank.multiclock_underflows(bm));
        }
    }

    #[test]
    fn assert_members_pass_and_fail() {
        let d = parse_document(
            r#"
            scesc a on clk { instances { M } events { r } tick { M: r } }
            scesc b on clk { instances { M } events { s } tick { M: s } }
        "#,
        )
        .unwrap();
        let ante = synthesize(d.chart("a").unwrap(), &SynthOptions::default()).unwrap();
        let cons = synthesize(d.chart("b").unwrap(), &SynthOptions::default()).unwrap();
        let r = ev(&d, "r");
        let s = ev(&d, "s");

        for (trace, expect) in [
            (vec![Valuation::of([r]), Valuation::of([s])], Verdict::Passed),
            (vec![Valuation::of([r]), Valuation::empty()], Verdict::Failed),
        ] {
            let mut fleet = Fleet::new();
            let ai = fleet.add_assert(AssertSpec::new("gate", "clk", ante.clone(), cons.clone()));
            let plan = plan_shards(&fleet, 2);
            let report = scan_sharded(&fleet, &plan, &ParOptions::default(), &trace, 1);
            let a = &report.asserts[ai];
            assert_eq!(a.verdict, expect, "{a:?}");
            assert_eq!(a.name, "gate");
            assert_eq!(a.ticks, 2);
            assert_eq!(report.any_failed(), expect == Verdict::Failed);
            if expect == Verdict::Failed {
                assert_eq!(a.violations.len(), 1);
            } else {
                assert_eq!(a.fulfilled, 1);
            }
        }
    }

    #[test]
    fn assert_members_follow_their_clock_in_global_feeds() {
        let d = doc();
        let ante = synthesize(d.chart("pulse").unwrap(), &SynthOptions::default()).unwrap();
        let cons = synthesize(d.chart("pulse").unwrap(), &SynthOptions::default()).unwrap();
        let mut clocks = ClockSet::new();
        let c1 = clocks.add(ClockDomain::new("clk1", 2, 0));
        let c2 = clocks.add(ClockDomain::new("clk2", 2, 1));
        let run = GlobalRun::interleave(
            &clocks,
            &[
                (c1, Trace::from_elements(vec![Valuation::of([ev(&d, "req")]); 4])),
                (c2, Trace::from_elements(vec![Valuation::empty(); 4])),
            ],
        )
        .unwrap();

        let mut fleet = Fleet::new();
        // bound to clk1: sees the 4 req ticks, every obligation is
        // fulfilled by the immediately following antecedent completion
        let on1 = fleet.add_assert(AssertSpec::new("on1", "clk1", ante.clone(), cons.clone()));
        // bound to a clock absent from the set: sees nothing
        let off = fleet.add_assert(AssertSpec::new("off", "nope", ante, cons));
        let plan = plan_shards(&fleet, 2);
        let report =
            scan_sharded_global(&fleet, &plan, &clocks, &ParOptions::default(), run.as_slice(), 3);
        assert_eq!(report.asserts[on1].ticks, 4);
        assert!(report.asserts[on1].fulfilled >= 1);
        assert_eq!(report.asserts[off].ticks, 0);
        assert_eq!(report.asserts[off].verdict, Verdict::Idle);
    }

    #[test]
    fn violating_bulk_traffic_keeps_bounded_violation_records() {
        // antecedent fires every tick, the consequent never follows:
        // one violation per tick. The report must carry the exact
        // count but retain only the first ASSERT_VIOLATION_KEEP
        // records, so shard residency stays bounded.
        let d = parse_document(
            r#"
            scesc a on clk { instances { M } events { r } tick { M: r } }
            scesc b on clk { instances { M } events { s } tick { M: s } }
        "#,
        )
        .unwrap();
        let ante = synthesize(d.chart("a").unwrap(), &SynthOptions::default()).unwrap();
        let cons = synthesize(d.chart("b").unwrap(), &SynthOptions::default()).unwrap();
        let r = ev(&d, "r");
        let n = 10_000usize;
        let trace = vec![Valuation::of([r]); n];

        let mut fleet = Fleet::new();
        let ai = fleet.add_assert(AssertSpec::new("gate", "clk", ante, cons));
        let plan = plan_shards(&fleet, 2);
        let report = scan_sharded(&fleet, &plan, &ParOptions::default(), &trace, 128);
        let a = &report.asserts[ai];
        assert_eq!(a.verdict, Verdict::Failed);
        // every tick after the first spawns-and-breaks one obligation
        assert_eq!(a.violation_count, n as u64 - 1);
        assert_eq!(a.violations.len(), ASSERT_VIOLATION_KEEP);
        assert_eq!(a.violations[0].antecedent_at, 0);
        assert!(report.any_failed());
    }

    #[test]
    fn bounded_logs_summarise_without_retaining() {
        let d = doc();
        let pulse = synthesize(d.chart("pulse").unwrap(), &SynthOptions::default()).unwrap();
        let trace = vec![Valuation::of([ev(&d, "req")]); 10_000];
        let mut fleet = Fleet::new();
        fleet.add(&pulse);
        let plan = plan_shards(&fleet, 2);
        let opts = ParOptions {
            keep_all_hits: false,
            ..Default::default()
        };
        let report = scan_sharded(&fleet, &plan, &opts, &trace, 256);
        let log = &report.singles[0].log;
        assert_eq!(log.count(), 10_000);
        assert!(log.all().is_none());
        assert_eq!(log.first(), &[0, 1, 2, 3, 4]);
        assert!(log.render().contains("more"));
    }

    #[test]
    fn oversubscribed_jobs_clamp_to_member_count() {
        let d = doc();
        let pulse = synthesize(d.chart("pulse").unwrap(), &SynthOptions::default()).unwrap();
        let mut fleet = Fleet::new();
        fleet.add(&pulse);
        assert_eq!(fleet.len(), 1);
        assert!(!fleet.is_empty());
        // an empty shard is a worker thread that only costs broadcast
        // traffic — requesting 8 jobs for 1 member plans 1 shard
        let plan = plan_shards(&fleet, 8);
        assert_eq!(plan.jobs(), 1);
        let report = scan_sharded(
            &fleet,
            &plan,
            &ParOptions::default(),
            &[Valuation::of([ev(&d, "req")])],
            16,
        );
        assert_eq!(report.singles[0].log.count(), 1);
    }

    #[test]
    fn direct_single_shard_path_matches_and_records_stats() {
        // jobs=1 plans one shard, which takes the inline no-broadcast
        // path — same verdicts, and the observed run still records one
        // ShardStats entry (wait_ns structurally zero: no queue)
        let d = doc();
        let pulse = synthesize(d.chart("pulse").unwrap(), &SynthOptions::default()).unwrap();
        let trace = vec![Valuation::of([ev(&d, "req")]); 500];
        let mut fleet = Fleet::new();
        fleet.add(&pulse);
        let plan = plan_shards(&fleet, 1);
        assert_eq!(plan.jobs(), 1);
        let obs = cesc_obs::Obs::enabled();
        let opts = ParOptions {
            obs: obs.clone(),
            ..Default::default()
        };
        let report = scan_sharded(&fleet, &plan, &opts, &trace, 64);
        assert_eq!(report.singles[0].log.count(), 500);
        let run = obs.report("check");
        assert_eq!(run.counter(cesc_obs::key::FLEET_STEPS), 500);
        assert_eq!(run.counter(cesc_obs::key::ENGINE_TICKS), 500);
        assert_eq!(run.shards.len(), 1);
        assert_eq!(run.shards[0].steps, 500);
        assert_eq!(run.shards[0].wait_ns, 0);
    }

    #[test]
    fn feeder_drive_result_is_returned() {
        let fleet = Fleet::new();
        let plan = plan_shards(&fleet, 2);
        let (report, answer) =
            run_sharded(&fleet, &plan, None, &ParOptions::default(), |_feeder| 42);
        assert_eq!(answer, 42);
        assert!(report.singles.is_empty());
        assert!(!report.any_failed());
    }
}
