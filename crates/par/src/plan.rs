//! The cost-model-driven shard planner.
//!
//! Partitioning a fleet across workers is a scheduling problem: every
//! member costs a different amount per tick (a 3-state pulse monitor
//! is far cheaper than the OCP burst-read scoreboard program), and a
//! bad split leaves one worker the straggler every chunk. The planner
//! reuses the compiled engines' footprint analysis
//! ([`CompiledMonitor::step_cost`] / scoreboard `touched_symbols`
//! masks) to
//!
//! * **balance** — members are placed greedily in descending cost
//!   order onto the least-loaded shard (LPT scheduling, within 4/3 of
//!   the optimal makespan);
//! * **co-locate** — among shards whose load is close enough that the
//!   choice doesn't matter for balance, a shard already holding a
//!   member with an *overlapping scoreboard footprint* wins, keeping
//!   scoreboard-coupled monitors (e.g. the locals of one multi-clock
//!   spec travel together anyway, but also independent charts over the
//!   same protocol events) on one core's cache.
//!
//! Plans are deterministic: same fleet, same `jobs`, same plan.

use std::fmt;

use cesc_core::CompiledMonitor;

use crate::fleet::Fleet;

/// One fleet member, by kind and per-kind index — what a shard holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetItem {
    /// `Fleet::add`-ed single-clock monitor.
    Single(usize),
    /// `Fleet::add_multiclock`-ed multi-clock monitor.
    Multi(usize),
    /// `Fleet::add_assert`-ed implication checker.
    Assert(usize),
}

/// A partition of a [`Fleet`] into shards, one worker thread each.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: Vec<Vec<FleetItem>>,
    loads: Vec<u64>,
}

impl ShardPlan {
    /// Number of shards (= worker threads).
    pub fn jobs(&self) -> usize {
        self.shards.len()
    }

    /// The members assigned to each shard.
    pub fn shards(&self) -> &[Vec<FleetItem>] {
        &self.shards
    }

    /// The modelled per-tick cost of shard `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn shard_cost(&self, i: usize) -> u64 {
        self.loads[i]
    }

    /// Ratio of the heaviest shard's modelled load to the ideal
    /// (total/jobs) — 1.0 is a perfect split. Empty fleets report 1.0.
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.loads.iter().sum();
        let max = self.loads.iter().copied().max().unwrap_or(0);
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.shards.len() as f64;
        max as f64 / ideal
    }
}

impl fmt::Display for ShardPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "shard plan: {} shard(s), imbalance {:.2}",
            self.jobs(),
            self.imbalance()
        )?;
        for (i, (shard, load)) in self.shards.iter().zip(&self.loads).enumerate() {
            write!(f, "  shard {i} (cost {load}):")?;
            for item in shard {
                match item {
                    FleetItem::Single(k) => write!(f, " single#{k}")?,
                    FleetItem::Multi(k) => write!(f, " multi#{k}")?,
                    FleetItem::Assert(k) => write!(f, " assert#{k}")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A member with its modelled cost and scoreboard footprint.
struct CostedItem {
    item: FleetItem,
    cost: u64,
    footprint: u128,
}

fn cost_items(fleet: &Fleet) -> Vec<CostedItem> {
    let mut items = Vec::with_capacity(fleet.len());
    for (i, m) in fleet.singles.iter().enumerate() {
        items.push(CostedItem {
            item: FleetItem::Single(i),
            cost: m.step_cost(),
            footprint: m.touched_symbols(),
        });
    }
    for (i, m) in fleet.multis.iter().enumerate() {
        items.push(CostedItem {
            item: FleetItem::Multi(i),
            cost: m.step_cost(),
            footprint: m.touched_symbols(),
        });
    }
    for (i, a) in fleet.asserts.iter().enumerate() {
        // the implication checker walks the step-wise interpreter, so
        // its per-tick work is the two monitors' modelled cost with an
        // interpretive surcharge
        let ante = CompiledMonitor::new(&a.antecedent);
        let cons = CompiledMonitor::new(&a.consequent);
        items.push(CostedItem {
            item: FleetItem::Assert(i),
            cost: 2 * (ante.step_cost() + cons.step_cost()),
            footprint: ante.touched_symbols() | cons.touched_symbols(),
        });
    }
    items
}

/// Plans `fleet` onto `jobs` shards — clamped to `1..=fleet.len()`
/// (one worker minimum; a shard per member maximum, since an empty
/// shard is a thread that only costs broadcast traffic). `--jobs
/// 10000` on a two-monitor fleet therefore runs two workers, not ten
/// thousand.
///
/// # Examples
///
/// ```
/// use cesc_chart::parse_document;
/// use cesc_core::{synthesize, SynthOptions};
/// use cesc_par::{plan_shards, Fleet};
///
/// let doc = parse_document(
///     "scesc a on clk { instances { M } events { x } tick { M: x } }\
///      scesc b on clk { instances { M } events { x } tick { M: x } tick { M: x } }",
/// ).unwrap();
/// let mut fleet = Fleet::new();
/// for chart in &doc.charts {
///     fleet.add(&synthesize(chart, &SynthOptions::default()).unwrap());
/// }
/// let plan = plan_shards(&fleet, 2);
/// assert_eq!(plan.jobs(), 2);
/// assert_eq!(plan.shards().iter().map(Vec::len).sum::<usize>(), 2);
/// ```
pub fn plan_shards(fleet: &Fleet, jobs: usize) -> ShardPlan {
    let jobs = jobs.clamp(1, fleet.len().max(1));
    let mut items = cost_items(fleet);
    // LPT: heaviest first; ties broken by insertion order for
    // determinism (sort is stable)
    items.sort_by_key(|item| std::cmp::Reverse(item.cost));

    let mut shards: Vec<Vec<FleetItem>> = vec![Vec::new(); jobs];
    let mut loads = vec![0u64; jobs];
    let mut footprints = vec![0u128; jobs];
    for it in items {
        let min_load = loads.iter().copied().min().expect("jobs >= 1");
        // shards still within one item-cost of the emptiest are
        // equally good for balance; among them, prefer scoreboard
        // affinity, then the emptiest, then the lowest index
        let slack = min_load + it.cost;
        let chosen = (0..jobs)
            .filter(|&s| loads[s] <= slack)
            .min_by_key(|&s| {
                let affine = it.footprint != 0 && footprints[s] & it.footprint != 0;
                (!affine, loads[s], s)
            })
            .expect("at least the emptiest shard qualifies");
        shards[chosen].push(it.item);
        loads[chosen] += it.cost;
        footprints[chosen] |= it.footprint;
    }
    ShardPlan { shards, loads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_chart::parse_document;
    use cesc_core::{synthesize, synthesize_multiclock, SynthOptions};

    fn fleet_of(n: usize) -> Fleet {
        let mut fleet = Fleet::new();
        for k in 0..n {
            // charts of varying depth → varying step cost
            let ticks: String = (0..=k % 4).map(|_| "tick { M: x }".to_owned()).collect();
            let src = format!("scesc c{k} on clk {{ instances {{ M }} events {{ x }} {ticks} }}");
            let doc = parse_document(&src).unwrap();
            fleet.add(&synthesize(&doc.charts[0], &SynthOptions::default()).unwrap());
        }
        fleet
    }

    #[test]
    fn every_member_lands_on_exactly_one_shard() {
        let fleet = fleet_of(13);
        for jobs in 1..=8 {
            let plan = plan_shards(&fleet, jobs);
            assert_eq!(plan.jobs(), jobs);
            let mut seen = vec![0usize; fleet.single_len()];
            for shard in plan.shards() {
                for item in shard {
                    match item {
                        FleetItem::Single(i) => seen[*i] += 1,
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "jobs={jobs}: {seen:?}");
        }
    }

    #[test]
    fn lpt_balances_within_bound() {
        let fleet = fleet_of(16);
        let plan = plan_shards(&fleet, 4);
        // LPT guarantees max load ≤ 4/3 · optimal ≤ 4/3 · (total/jobs
        // rounded up to the largest item); sanity-check a loose bound
        assert!(plan.imbalance() < 2.0, "{plan}");
        assert!(plan.shard_cost(0) > 0);
    }

    #[test]
    fn plans_are_deterministic() {
        let fleet = fleet_of(9);
        let a = plan_shards(&fleet, 3);
        let b = plan_shards(&fleet, 3);
        assert_eq!(a.shards(), b.shards());
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        let fleet = fleet_of(3);
        let plan = plan_shards(&fleet, 0);
        assert_eq!(plan.jobs(), 1);
        assert_eq!(plan.shards()[0].len(), 3);
    }

    #[test]
    fn coupled_charts_co_locate_when_balance_permits() {
        // two pairs of scoreboard-coupled charts (same cause events)
        // plus independent fillers: each pair should share a shard
        let src = r#"
            scesc p1a on clk { instances { A, B } events { q, r } tick { A: q } tick { B: r } cause q -> r; }
            scesc p1b on clk { instances { A, B } events { q, r } tick { A: q } tick { B: r } cause q -> r; }
            scesc p2a on clk { instances { A, B } events { s, t } tick { A: s } tick { B: t } cause s -> t; }
            scesc p2b on clk { instances { A, B } events { s, t } tick { A: s } tick { B: t } cause s -> t; }
        "#;
        let doc = parse_document(src).unwrap();
        let mut fleet = Fleet::new();
        for chart in &doc.charts {
            fleet.add(&synthesize(chart, &SynthOptions::default()).unwrap());
        }
        let plan = plan_shards(&fleet, 2);
        let shard_of = |idx: usize| {
            plan.shards()
                .iter()
                .position(|s| s.contains(&FleetItem::Single(idx)))
                .unwrap()
        };
        assert_eq!(shard_of(0), shard_of(1), "{plan}");
        assert_eq!(shard_of(2), shard_of(3), "{plan}");
        assert_ne!(shard_of(0), shard_of(2), "balance still splits the pairs: {plan}");
    }

    #[test]
    fn multiclock_and_assert_items_are_costed() {
        let doc = parse_document(
            r#"
            scesc m1 on clk1 { instances { A } events { go } tick { A: go } }
            scesc m2 on clk2 { instances { B } events { done } tick { B: done } }
            multiclock pair { charts { m1, m2 } cause go -> done; }
        "#,
        )
        .unwrap();
        let mm = synthesize_multiclock(doc.multiclock_spec("pair").unwrap(), &SynthOptions::default())
            .unwrap();
        let m1 = synthesize(doc.chart("m1").unwrap(), &SynthOptions::default()).unwrap();
        let m2 = synthesize(doc.chart("m2").unwrap(), &SynthOptions::default()).unwrap();
        let mut fleet = Fleet::new();
        fleet.add_multiclock(&mm);
        fleet.add_assert(crate::AssertSpec::new("gate", "clk1", m1, m2));
        let plan = plan_shards(&fleet, 2);
        let total: u64 = (0..2).map(|s| plan.shard_cost(s)).sum();
        assert!(total > 0);
        let shown = plan.to_string();
        assert!(shown.contains("multi#0"), "{shown}");
        assert!(shown.contains("assert#0"), "{shown}");
    }
}
