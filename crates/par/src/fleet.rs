//! The monitor fleet and its sharded executor.
//!
//! A [`Fleet`] is the compiled verification plan: single-clock
//! monitors, multi-clock monitors and `implies(...)` assertion
//! checkers. [`run_sharded`] executes it across worker threads:
//!
//! ```text
//!                        ┌────────────────────┐
//!   VCD / simulation ──▶ │ FleetFeeder        │  one bounded channel
//!   (decoded chunks)     │ (Arc<chunk> clone  │  per shard; the chunk
//!                        │  per shard)        │  itself is shared
//!                        └───┬────┬────┬──────┘
//!                            ▼    ▼    ▼
//!                        shard0 shard1 shard2   each: own MonitorBank
//!                            │    │    │        + assert checkers, no
//!                            ▼    ▼    ▼        cross-shard state
//!                        ┌────────────────────┐
//!                        │ merge (at join)    │ → FleetReport
//!                        └────────────────────┘
//! ```
//!
//! Every shard owns its monitors' complete mutable state (control
//! states, scoreboards, tallies), so the hot path takes **no lock and
//! shares no cache line** with other shards; the only synchronisation
//! is the bounded channel hand-off of reference-counted chunks, and the
//! per-shard results merge once, at join time. Verdicts are
//! bit-identical to a serial [`MonitorBank`] run over the same chunks
//! (pinned by the workspace `batch_equivalence` property suite).
//!
//! **Single-shard plans skip all of it.** With `--jobs 1` or a
//! one-shard plan there is nobody to overlap with, so the broadcast
//! machinery — chunk copy, `Arc`, channel hop, worker thread — would
//! be pure overhead (measured at ~15% on chunked streams). The feeder
//! instead runs the one worker *inline on the caller thread*
//! ([`FeedMode::Direct`]): `feed` borrows the chunk straight into the
//! bank, no allocation, no thread, identical results.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use cesc_core::{
    CompiledMonitor, CompiledMultiClock, ImplicationChecker, Monitor, MonitorBank,
    MultiClockMonitor, Verdict, Violation,
};
use cesc_expr::Valuation;
use cesc_obs::{key, Counter, Histogram, Obs, ShardStats};
use cesc_trace::{ClockId, ClockSet, GlobalStep};
use crossbeam::channel;

use crate::plan::{FleetItem, ShardPlan};
use crate::tally::MatchLog;

/// An `implies(antecedent, consequent)` assertion attached to a fleet:
/// the two synthesized monitors plus the clock domain whose ticks
/// drive the checker.
#[derive(Debug, Clone)]
pub struct AssertSpec {
    pub(crate) name: String,
    pub(crate) clock: String,
    pub(crate) antecedent: Monitor,
    pub(crate) consequent: Monitor,
}

impl AssertSpec {
    /// Assembles an assertion item. `clock` names the domain whose
    /// ticks the checker consumes when the fleet is fed globally (a
    /// locally-fed fleet steps it on every valuation).
    pub fn new(name: &str, clock: &str, antecedent: Monitor, consequent: Monitor) -> Self {
        AssertSpec {
            name: name.to_owned(),
            clock: clock.to_owned(),
            antecedent,
            consequent,
        }
    }

    /// The assertion's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The clock domain driving the checker.
    pub fn clock(&self) -> &str {
        &self.clock
    }
}

/// A compiled monitor fleet — the unit the shard planner partitions
/// and [`run_sharded`] executes.
///
/// Indices are per kind and stable: the `usize` returned by each
/// `add_*` addresses the matching slot of the final [`FleetReport`].
#[derive(Debug, Default)]
pub struct Fleet {
    pub(crate) singles: Vec<CompiledMonitor>,
    pub(crate) multis: Vec<CompiledMultiClock>,
    pub(crate) asserts: Vec<AssertSpec>,
}

impl Fleet {
    /// Creates an empty fleet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles and adds a single-clock monitor; returns its index.
    pub fn add(&mut self, monitor: &Monitor) -> usize {
        self.add_compiled(monitor.compiled())
    }

    /// Adds an already-compiled single-clock monitor; returns its
    /// index.
    pub fn add_compiled(&mut self, compiled: CompiledMonitor) -> usize {
        self.singles.push(compiled);
        self.singles.len() - 1
    }

    /// Compiles and adds a multi-clock monitor; returns its index (a
    /// slot space separate from single-clock indices).
    pub fn add_multiclock(&mut self, monitor: &MultiClockMonitor) -> usize {
        self.add_compiled_multiclock(monitor.compiled())
    }

    /// Adds an already-compiled multi-clock monitor; returns its
    /// index.
    pub fn add_compiled_multiclock(&mut self, compiled: CompiledMultiClock) -> usize {
        self.multis.push(compiled);
        self.multis.len() - 1
    }

    /// Adds an assertion checker; returns its index (its own slot
    /// space).
    pub fn add_assert(&mut self, assert: AssertSpec) -> usize {
        self.asserts.push(assert);
        self.asserts.len() - 1
    }

    /// Number of single-clock monitors.
    pub fn single_len(&self) -> usize {
        self.singles.len()
    }

    /// Number of multi-clock monitors.
    pub fn multiclock_len(&self) -> usize {
        self.multis.len()
    }

    /// Number of assertion checkers.
    pub fn assert_len(&self) -> usize {
        self.asserts.len()
    }

    /// Total number of fleet members of all kinds.
    pub fn len(&self) -> usize {
        self.singles.len() + self.multis.len() + self.asserts.len()
    }

    /// Whether the fleet has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Execution knobs for [`run_sharded`].
#[derive(Debug, Clone)]
pub struct ParOptions {
    /// In-flight chunks buffered per shard channel. Bounds the
    /// producer's lead over the slowest shard, and with it the
    /// executor's peak chunk residency.
    pub channel_depth: usize,
    /// Retain every hit time in the [`MatchLog`]s (exact but
    /// unbounded — what the equivalence suite and the `cesc-sim`
    /// harnesses want). `false` keeps the logs bounded to
    /// [`ParOptions::edge`] head/tail entries plus the count — the CLI
    /// summary mode.
    pub keep_all_hits: bool,
    /// Head/tail entries each [`MatchLog`] retains.
    pub edge: usize,
    /// Observability registry. When enabled, [`run_sharded`] records
    /// per-shard execution stats (steps, chunks, busy vs queue-wait
    /// time), per-member execution time, the fed-chunk size histogram
    /// and the merged semantic counters (`engine.ticks`,
    /// `engine.matches`, `engine.underflows`). Disabled (the default)
    /// the hot path stays timer-free.
    pub obs: Obs,
}

impl Default for ParOptions {
    fn default() -> Self {
        ParOptions {
            channel_depth: 8,
            keep_all_hits: true,
            edge: 5,
            obs: Obs::disabled(),
        }
    }
}

/// Final state of one single-clock fleet member.
#[derive(Debug, Clone)]
pub struct SingleReport {
    /// Detection times (tick indices under [`FleetFeeder::feed`],
    /// global times under [`FleetFeeder::feed_global`]).
    pub log: MatchLog,
    /// Ticks the monitor consumed.
    pub ticks: u64,
    /// `Del_evt` scoreboard underflows.
    pub underflows: u64,
    /// Execution nanoseconds this member consumed on its shard (zero
    /// unless [`ParOptions::obs`] was enabled).
    pub exec_ns: u64,
}

/// Final state of one multi-clock fleet member.
#[derive(Debug, Clone)]
pub struct MultiReport {
    /// Global times of full-spec matches.
    pub log: MatchLog,
    /// Shared-scoreboard `Del_evt` underflows.
    pub underflows: u64,
    /// Execution nanoseconds this member consumed on its shard (zero
    /// unless [`ParOptions::obs`] was enabled).
    pub exec_ns: u64,
}

/// How many violation records each assert member retains
/// ([`AssertReport::violations`]); the exact total is always in
/// [`AssertReport::violation_count`]. Keeps a non-compliant bulk trace
/// (one violation per tick, potentially) from growing shard residency
/// with trace length.
pub const ASSERT_VIOLATION_KEEP: usize = 100;

/// Final state of one assertion checker.
#[derive(Debug, Clone)]
pub struct AssertReport {
    /// The assertion's name (copied from its [`AssertSpec`]).
    pub name: String,
    /// The closing verdict.
    pub verdict: Verdict,
    /// Obligations fulfilled.
    pub fulfilled: u64,
    /// Obligations still open when the stream closed.
    pub outstanding: usize,
    /// The earliest violations, up to [`ASSERT_VIOLATION_KEEP`].
    pub violations: Vec<Violation>,
    /// Total violations recorded (may exceed `violations.len()`).
    pub violation_count: u64,
    /// Ticks the checker consumed.
    pub ticks: u64,
    /// Execution nanoseconds this checker consumed on its shard (zero
    /// unless [`ParOptions::obs`] was enabled).
    pub exec_ns: u64,
}

/// Merged per-member results of a sharded run, indexed exactly as the
/// members were added to the [`Fleet`].
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// One report per single-clock monitor.
    pub singles: Vec<SingleReport>,
    /// One report per multi-clock monitor.
    pub multis: Vec<MultiReport>,
    /// One report per assertion checker.
    pub asserts: Vec<AssertReport>,
    /// 64-tick word evaluations the bit-sliced engine performed,
    /// summed over shards (zero when no member compiled with
    /// `bit_slice`).
    pub engine_words: u64,
    /// Word evaluations that contained at least one scalar fallback.
    pub engine_dense_words: u64,
}

impl FleetReport {
    /// Whether any assertion checker finished with
    /// [`Verdict::Failed`].
    pub fn any_failed(&self) -> bool {
        self.asserts.iter().any(|a| a.verdict == Verdict::Failed)
    }
}

/// One broadcast unit: a reference-counted decoded chunk. Cloning per
/// shard copies the `Arc`, not the samples.
#[derive(Debug, Clone)]
enum Msg {
    Local(Arc<Vec<Valuation>>),
    Global(Arc<Vec<GlobalStep>>),
}

/// How chunks reach the shard worker(s) — see the module docs.
enum FeedMode {
    /// Multi-shard: reference-counted chunks over one bounded channel
    /// per shard.
    Broadcast(Vec<channel::Sender<Msg>>),
    /// Single-shard fast path: the one worker runs inline on the
    /// caller thread — chunks are borrowed, never copied, and there is
    /// no channel hop. `wait_ns` of the recorded [`ShardStats`] stays
    /// zero (there is no queue to wait on).
    Direct(Box<RefCell<DirectWorker>>),
}

impl std::fmt::Debug for FeedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedMode::Broadcast(txs) => write!(f, "Broadcast({} shard(s))", txs.len()),
            FeedMode::Direct(_) => write!(f, "Direct"),
        }
    }
}

/// The inline worker of a [`FeedMode::Direct`] run, plus its stats
/// accumulator when the run is observed.
struct DirectWorker {
    worker: ShardWorker,
    stats: Option<ShardStats>,
}

/// The producer half of a sharded run: hands decoded chunks to the
/// shard worker(s) — broadcast over channels for multi-shard plans,
/// inline for single-shard ones. Handed to `drive` by [`run_sharded`].
#[derive(Debug)]
pub struct FleetFeeder {
    mode: FeedMode,
    /// Live-updated feed metrics (`fleet.steps` / `fleet.chunks` /
    /// the `chunk.steps` histogram) — no-ops when the run's registry
    /// is disabled. The steps counter updates as chunks are fed,
    /// which is what the `--progress` heartbeat watches.
    steps: Counter,
    chunks: Counter,
    chunk_sizes: Histogram,
}

impl FleetFeeder {
    fn record_feed(&self, len: usize) {
        self.steps.add(len as u64);
        self.chunks.incr();
        self.chunk_sizes.record(len as u64);
    }

    fn broadcast(&self, msg: Msg) {
        let FeedMode::Broadcast(txs) = &self.mode else {
            unreachable!("direct mode handled by the caller")
        };
        for tx in txs {
            tx.send(msg.clone()).expect("shard worker alive");
        }
    }

    /// Runs `consume` on the inline worker, timing it when observed.
    fn direct(cell: &RefCell<DirectWorker>, len: usize, consume: impl FnOnce(&mut ShardWorker)) {
        let dw = &mut *cell.borrow_mut();
        match &mut dw.stats {
            Some(stats) => {
                let ran = Instant::now();
                consume(&mut dw.worker);
                stats.busy_ns += ran.elapsed().as_nanos() as u64;
                stats.chunks += 1;
                stats.steps += len as u64;
            }
            None => consume(&mut dw.worker),
        }
    }

    /// Feeds one chunk of same-clock valuations; every single-clock
    /// monitor sees each element as one tick (the sharded form of
    /// [`MonitorBank::feed`]). Assertion checkers step on every
    /// element; multi-clock members ignore locally-fed chunks.
    pub fn feed(&self, chunk: &[Valuation]) {
        if chunk.is_empty() {
            return;
        }
        self.record_feed(chunk.len());
        match &self.mode {
            FeedMode::Direct(cell) => {
                Self::direct(cell, chunk.len(), |w| w.consume_local(chunk));
            }
            FeedMode::Broadcast(_) => self.broadcast(Msg::Local(Arc::new(chunk.to_vec()))),
        }
    }

    /// Feeds one chunk of global steps (the sharded form of
    /// [`MonitorBank::feed_global`]); requires the run to have been
    /// started with a clock set.
    pub fn feed_global(&self, chunk: &[GlobalStep]) {
        if chunk.is_empty() {
            return;
        }
        self.record_feed(chunk.len());
        match &self.mode {
            FeedMode::Direct(cell) => {
                Self::direct(cell, chunk.len(), |w| w.consume_global(chunk));
            }
            FeedMode::Broadcast(_) => self.broadcast(Msg::Global(Arc::new(chunk.to_vec()))),
        }
    }
}

/// Per-shard runtime: the shard's own bank plus assertion checkers,
/// built once per worker from the fleet's compiled artifacts.
struct ShardWorker {
    bank: MonitorBank,
    /// Bank single-clock slot → fleet single index.
    single_map: Vec<usize>,
    /// Bank multi-clock slot → fleet multi index.
    multi_map: Vec<usize>,
    single_logs: Vec<MatchLog>,
    multi_logs: Vec<MatchLog>,
    asserts: Vec<AssertRunner>,
    clocks: Option<ClockSet>,
    /// Per-member execution timing (mirrors `bank.set_member_timing`
    /// for the assert runners). On only when the run is observed.
    timing: bool,
}

struct AssertRunner {
    fleet_idx: usize,
    name: String,
    clock: String,
    /// Resolved against the run's clock set on first global chunk.
    clock_id: Option<Option<ClockId>>,
    checker: ImplicationChecker,
    /// The earliest [`ASSERT_VIOLATION_KEEP`] violations, drained out
    /// of the checker chunk by chunk so its log stays empty.
    kept_violations: Vec<Violation>,
    ticks: u64,
    exec_ns: u64,
}

impl AssertRunner {
    /// Folds this chunk's violation records into the bounded sample.
    fn drain_violations(&mut self) {
        if self.checker.violations().is_empty() {
            return;
        }
        for v in self.checker.take_violations() {
            if self.kept_violations.len() < ASSERT_VIOLATION_KEEP {
                self.kept_violations.push(v);
            }
        }
    }
}

struct ShardResult {
    singles: Vec<(usize, SingleReport)>,
    multis: Vec<(usize, MultiReport)>,
    asserts: Vec<(usize, AssertReport)>,
    words: u64,
    dense_words: u64,
}

impl ShardWorker {
    fn build(fleet: &Fleet, items: &[FleetItem], clocks: Option<&ClockSet>, opts: &ParOptions) -> Self {
        let mut w = ShardWorker {
            bank: MonitorBank::new(),
            single_map: Vec::new(),
            multi_map: Vec::new(),
            single_logs: Vec::new(),
            multi_logs: Vec::new(),
            asserts: Vec::new(),
            clocks: clocks.cloned(),
            timing: opts.obs.is_enabled(),
        };
        w.bank.set_member_timing(w.timing);
        for item in items {
            match *item {
                FleetItem::Single(i) => {
                    w.bank.add_compiled(fleet.singles[i].clone());
                    w.single_map.push(i);
                    w.single_logs.push(MatchLog::new(opts.edge, opts.keep_all_hits));
                }
                FleetItem::Multi(i) => {
                    w.bank.add_compiled_multiclock(fleet.multis[i].clone());
                    w.multi_map.push(i);
                    w.multi_logs.push(MatchLog::new(opts.edge, opts.keep_all_hits));
                }
                FleetItem::Assert(i) => {
                    let spec = &fleet.asserts[i];
                    w.asserts.push(AssertRunner {
                        fleet_idx: i,
                        name: spec.name.clone(),
                        clock: spec.clock.clone(),
                        clock_id: None,
                        checker: ImplicationChecker::new(
                            spec.antecedent.clone(),
                            spec.consequent.clone(),
                        ),
                        kept_violations: Vec::new(),
                        ticks: 0,
                        exec_ns: 0,
                    });
                }
            }
        }
        w
    }

    fn consume(&mut self, msg: &Msg) {
        match msg {
            Msg::Local(chunk) => self.consume_local(chunk),
            Msg::Global(chunk) => self.consume_global(chunk),
        }
    }

    fn consume_local(&mut self, chunk: &[Valuation]) {
        self.bank.feed(chunk);
        for a in &mut self.asserts {
            let started = self.timing.then(Instant::now);
            for &v in chunk {
                a.checker.step(v);
                a.ticks += 1;
            }
            a.drain_violations();
            if let Some(t0) = started {
                a.exec_ns += t0.elapsed().as_nanos() as u64;
            }
        }
        self.drain_logs();
    }

    fn consume_global(&mut self, chunk: &[GlobalStep]) {
        let clocks = self
            .clocks
            .as_ref()
            .expect("feed_global requires run_sharded to be given a ClockSet");
        self.bank.feed_global(clocks, chunk);
        for a in &mut self.asserts {
            let id = *a
                .clock_id
                .get_or_insert_with(|| clocks.lookup(&a.clock));
            // an assert whose clock is absent from the set sees
            // no ticks — mirroring MonitorBank::feed_global's
            // treatment of unresolvable single-clock members
            let Some(id) = id else { continue };
            let started = self.timing.then(Instant::now);
            for step in chunk {
                if let Some(v) = step.tick_of(id) {
                    a.checker.step(v);
                    a.ticks += 1;
                }
            }
            a.drain_violations();
            if let Some(t0) = started {
                a.exec_ns += t0.elapsed().as_nanos() as u64;
            }
        }
        self.drain_logs();
    }

    /// Folds this chunk's hits into the bounded tallies so shard
    /// residency never grows with the match count.
    fn drain_logs(&mut self) {
        let logs = &mut self.single_logs;
        self.bank.drain_hits(|slot, hits| logs[slot].absorb(hits));
        let logs = &mut self.multi_logs;
        self.bank.drain_multiclock_hits(|slot, hits| logs[slot].absorb(hits));
    }

    fn finish(mut self) -> ShardResult {
        let words = self.bank.engine_words();
        let dense_words = self.bank.engine_dense_words();
        let bank_reports = self.bank.reports();
        let singles = self
            .single_map
            .iter()
            .zip(self.single_logs)
            .zip(bank_reports)
            .enumerate()
            .map(|(slot, ((&fleet_idx, log), report))| {
                (
                    fleet_idx,
                    SingleReport {
                        log,
                        ticks: report.ticks,
                        underflows: report.underflows,
                        exec_ns: self.bank.member_exec_ns(slot),
                    },
                )
            })
            .collect();
        let multis = self
            .multi_map
            .iter()
            .zip(self.multi_logs)
            .enumerate()
            .map(|(slot, (&fleet_idx, log))| {
                (
                    fleet_idx,
                    MultiReport {
                        log,
                        underflows: self.bank.multiclock_underflows(slot),
                        exec_ns: self.bank.multiclock_exec_ns(slot),
                    },
                )
            })
            .collect();
        let asserts = self
            .asserts
            .drain(..)
            .map(|mut a| {
                a.drain_violations();
                (
                    a.fleet_idx,
                    AssertReport {
                        name: a.name,
                        verdict: a.checker.verdict(),
                        fulfilled: a.checker.fulfilled(),
                        outstanding: a.checker.outstanding(),
                        violation_count: a.checker.violation_count(),
                        violations: a.kept_violations,
                        ticks: a.ticks,
                        exec_ns: a.exec_ns,
                    },
                )
            })
            .collect();
        ShardResult {
            singles,
            multis,
            asserts,
            words,
            dense_words,
        }
    }
}

/// Runs `fleet` sharded per `plan`: one worker thread per shard, each
/// owning its members' complete mutable state, fed by `drive` through
/// a [`FleetFeeder`] over bounded channels.
///
/// `clocks` is required when `drive` uses
/// [`FleetFeeder::feed_global`]; locally-fed (single-clock) runs may
/// pass `None`. Returns the merged [`FleetReport`] plus `drive`'s own
/// result once every shard has drained.
///
/// # Examples
///
/// ```
/// use cesc_chart::parse_document;
/// use cesc_core::{synthesize, SynthOptions};
/// use cesc_expr::Valuation;
/// use cesc_par::{plan_shards, run_sharded, Fleet, ParOptions};
///
/// let doc = parse_document(
///     "scesc a on clk { instances { M } events { x, y } tick { M: x } }\
///      scesc b on clk { instances { M } events { x, y } tick { M: x } tick { M: y } }",
/// ).unwrap();
/// let mut fleet = Fleet::new();
/// for chart in &doc.charts {
///     fleet.add(&synthesize(chart, &SynthOptions::default()).unwrap());
/// }
/// let plan = plan_shards(&fleet, 2);
/// let x = doc.alphabet.lookup("x").unwrap();
/// let y = doc.alphabet.lookup("y").unwrap();
///
/// let (report, ()) = run_sharded(&fleet, &plan, None, &ParOptions::default(), |feeder| {
///     feeder.feed(&[Valuation::of([x]), Valuation::of([y])]);
/// });
/// assert_eq!(report.singles[0].log.all(), Some(&[0][..])); // `a` fires on x
/// assert_eq!(report.singles[1].log.all(), Some(&[1][..])); // `b` fires on x→y
/// ```
pub fn run_sharded<R>(
    fleet: &Fleet,
    plan: &ShardPlan,
    clocks: Option<&ClockSet>,
    opts: &ParOptions,
    drive: impl FnOnce(&FleetFeeder) -> R,
) -> (FleetReport, R) {
    let (report, driven) = if plan.shards().len() <= 1 {
        run_direct(fleet, plan, clocks, opts, drive)
    } else {
        run_broadcast(fleet, plan, clocks, opts, drive)
    };
    record_semantics(&opts.obs, &report);
    (report, driven)
}

/// The single-shard fast path: no threads, no channels, no chunk
/// copies — the one worker consumes borrowed chunks inline on the
/// caller thread. Results and stats match the broadcast path except
/// that `wait_ns` is structurally zero.
fn run_direct<R>(
    fleet: &Fleet,
    plan: &ShardPlan,
    clocks: Option<&ClockSet>,
    opts: &ParOptions,
    drive: impl FnOnce(&FleetFeeder) -> R,
) -> (FleetReport, R) {
    let items: &[FleetItem] = plan.shards().first().map_or(&[], Vec::as_slice);
    let feeder = FleetFeeder {
        mode: FeedMode::Direct(Box::new(RefCell::new(DirectWorker {
            worker: ShardWorker::build(fleet, items, clocks, opts),
            stats: opts.obs.is_enabled().then(|| ShardStats {
                shard: 0,
                members: items.len(),
                ..ShardStats::default()
            }),
        }))),
        steps: opts.obs.counter(key::FLEET_STEPS),
        chunks: opts.obs.counter(key::FLEET_CHUNKS),
        chunk_sizes: opts.obs.histogram("chunk.steps"),
    };
    let driven = drive(&feeder);
    let FeedMode::Direct(cell) = feeder.mode else {
        unreachable!("run_direct builds a direct feeder")
    };
    let dw = cell.into_inner();
    if let Some(stats) = dw.stats {
        opts.obs.record_shard(stats);
    }
    (merge_results(fleet, [dw.worker.finish()]), driven)
}

/// The multi-shard path: one worker thread per shard, fed
/// reference-counted chunks over bounded channels.
fn run_broadcast<R>(
    fleet: &Fleet,
    plan: &ShardPlan,
    clocks: Option<&ClockSet>,
    opts: &ParOptions,
    drive: impl FnOnce(&FleetFeeder) -> R,
) -> (FleetReport, R) {
    let depth = plan_depth(opts);
    std::thread::scope(|scope| {
        let mut txs = Vec::with_capacity(plan.jobs());
        let mut workers = Vec::with_capacity(plan.jobs());
        for (shard_idx, shard) in plan.shards().iter().enumerate() {
            let (tx, rx) = channel::bounded::<Msg>(depth);
            txs.push(tx);
            workers.push(scope.spawn(move || {
                let mut worker = ShardWorker::build(fleet, shard, clocks, opts);
                if opts.obs.is_enabled() {
                    // observed run: account each worker's wall time as
                    // queue-wait (blocked on recv) vs busy (executing),
                    // the planner-imbalance signal
                    let mut stats = ShardStats {
                        shard: shard_idx,
                        members: shard.len(),
                        ..ShardStats::default()
                    };
                    loop {
                        let waited = Instant::now();
                        let Ok(msg) = rx.recv() else { break };
                        stats.wait_ns += waited.elapsed().as_nanos() as u64;
                        let steps = match &msg {
                            Msg::Local(chunk) => chunk.len(),
                            Msg::Global(chunk) => chunk.len(),
                        } as u64;
                        let ran = Instant::now();
                        worker.consume(&msg);
                        stats.busy_ns += ran.elapsed().as_nanos() as u64;
                        stats.chunks += 1;
                        stats.steps += steps;
                    }
                    opts.obs.record_shard(stats);
                } else {
                    while let Ok(msg) = rx.recv() {
                        worker.consume(&msg);
                    }
                }
                worker.finish()
            }));
        }
        let feeder = FleetFeeder {
            mode: FeedMode::Broadcast(txs),
            steps: opts.obs.counter(key::FLEET_STEPS),
            chunks: opts.obs.counter(key::FLEET_CHUNKS),
            chunk_sizes: opts.obs.histogram("chunk.steps"),
        };
        let driven = drive(&feeder);
        drop(feeder); // close every channel: workers drain and return
        let results: Vec<ShardResult> = workers
            .into_iter()
            .map(|w| w.join().expect("shard worker panicked"))
            .collect();
        (merge_results(fleet, results), driven)
    })
}

/// Merges per-shard results into the fleet-indexed report.
fn merge_results(fleet: &Fleet, results: impl IntoIterator<Item = ShardResult>) -> FleetReport {
    let mut singles: Vec<Option<SingleReport>> = vec![None; fleet.single_len()];
    let mut multis: Vec<Option<MultiReport>> = vec![None; fleet.multiclock_len()];
    let mut asserts: Vec<Option<AssertReport>> = vec![None; fleet.assert_len()];
    let mut words = 0u64;
    let mut dense_words = 0u64;
    for result in results {
        words += result.words;
        dense_words += result.dense_words;
        for (i, r) in result.singles {
            singles[i] = Some(r);
        }
        for (i, r) in result.multis {
            multis[i] = Some(r);
        }
        for (i, r) in result.asserts {
            asserts[i] = Some(r);
        }
    }
    FleetReport {
        singles: singles
            .into_iter()
            .map(|r| r.expect("plan covers every single-clock member"))
            .collect(),
        multis: multis
            .into_iter()
            .map(|r| r.expect("plan covers every multi-clock member"))
            .collect(),
        asserts: asserts
            .into_iter()
            .map(|r| r.expect("plan covers every assert member"))
            .collect(),
        engine_words: words,
        engine_dense_words: dense_words,
    }
}

/// Folds a merged report's semantic totals into the run's registry —
/// the counters the serial-vs-sharded equivalence property pins.
fn record_semantics(obs: &Obs, report: &FleetReport) {
    if !obs.is_enabled() {
        return;
    }
    let mut ticks = 0u64;
    let mut matches = 0u64;
    let mut underflows = 0u64;
    for s in &report.singles {
        ticks += s.ticks;
        matches += s.log.count();
        underflows += s.underflows;
    }
    for m in &report.multis {
        matches += m.log.count();
        underflows += m.underflows;
    }
    for a in &report.asserts {
        ticks += a.ticks;
        matches += a.fulfilled;
    }
    obs.counter(key::ENGINE_TICKS).add(ticks);
    obs.counter(key::ENGINE_MATCHES).add(matches);
    obs.counter(key::ENGINE_UNDERFLOWS).add(underflows);
    obs.counter(key::ENGINE_WORDS).add(report.engine_words);
    obs.counter(key::ENGINE_DENSE_WORDS).add(report.engine_dense_words);
}

fn plan_depth(opts: &ParOptions) -> usize {
    opts.channel_depth.max(1)
}

/// One-call sharded scan of a resident single-clock trace, chunked at
/// `chunk` elements — the parallel counterpart of
/// [`MonitorBank::feed`] over one resident slice.
pub fn scan_sharded(
    fleet: &Fleet,
    plan: &ShardPlan,
    opts: &ParOptions,
    trace: &[Valuation],
    chunk: usize,
) -> FleetReport {
    let chunk = chunk.max(1);
    run_sharded(fleet, plan, None, opts, |feeder| {
        for c in trace.chunks(chunk) {
            feeder.feed(c);
        }
    })
    .0
}

/// One-call sharded scan of a resident global run, chunked at `chunk`
/// steps — the parallel counterpart of [`MonitorBank::feed_global`].
pub fn scan_sharded_global(
    fleet: &Fleet,
    plan: &ShardPlan,
    clocks: &ClockSet,
    opts: &ParOptions,
    steps: &[GlobalStep],
    chunk: usize,
) -> FleetReport {
    let chunk = chunk.max(1);
    run_sharded(fleet, plan, Some(clocks), opts, |feeder| {
        for c in steps.chunks(chunk) {
            feeder.feed_global(c);
        }
    })
    .0
}
