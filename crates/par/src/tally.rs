//! Bounded match accounting.
//!
//! A fleet run over bulk traffic produces millions of detections;
//! retaining every hit time in every shard would make the executor's
//! residency proportional to the match count, defeating the streaming
//! pipeline's constant-memory guarantee. [`MatchLog`] is the shared
//! accumulator: it always keeps the exact count plus the first/last
//! `edge` hit times (enough for the CLI's elided summary), and only
//! optionally the complete list (the equivalence test suite and the
//! `cesc-sim` harnesses, whose callers own the memory trade-off).

use std::collections::VecDeque;

/// Streaming accumulator of detection times: exact count, the first
/// and last `edge` entries, and — only when requested — the full list.
///
/// # Examples
///
/// ```
/// use cesc_par::MatchLog;
///
/// let mut log = MatchLog::new(2, false);
/// log.absorb(&[1, 4, 9, 16, 25]);
/// assert_eq!(log.count(), 5);
/// assert_eq!(log.first(), &[1, 4]);
/// assert_eq!(log.last(), vec![16, 25]);
/// assert_eq!(log.render(), "[1, 4, ... 1 more ..., 16, 25]");
/// assert!(log.all().is_none()); // bounded mode retains no full list
/// ```
#[derive(Debug, Clone)]
pub struct MatchLog {
    edge: usize,
    count: u64,
    first: Vec<u64>,
    last: VecDeque<u64>,
    all: Option<Vec<u64>>,
}

impl MatchLog {
    /// Creates a log keeping the first/last `edge` entries; with
    /// `keep_all` the complete hit list is retained too (unbounded).
    pub fn new(edge: usize, keep_all: bool) -> Self {
        MatchLog {
            edge,
            count: 0,
            first: Vec::with_capacity(edge),
            last: VecDeque::with_capacity(edge),
            all: keep_all.then(Vec::new),
        }
    }

    /// Records one detection time.
    pub fn push(&mut self, t: u64) {
        self.count += 1;
        if self.first.len() < self.edge {
            self.first.push(t);
        } else if self.edge > 0 {
            // `>=` (not `==`): the deque must never outgrow `edge`,
            // including the degenerate edge-0 log (count-only)
            if self.last.len() >= self.edge {
                self.last.pop_front();
            }
            self.last.push_back(t);
        }
        if let Some(all) = &mut self.all {
            all.push(t);
        }
    }

    /// Records a batch of detection times (ascending within the batch,
    /// as the batch engines emit them).
    pub fn absorb(&mut self, hits: &[u64]) {
        for &t in hits {
            self.push(t);
        }
    }

    /// Total number of detections.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether at least one detection was recorded.
    pub fn detected(&self) -> bool {
        self.count > 0
    }

    /// The earliest retained detection times (up to `edge`).
    pub fn first(&self) -> &[u64] {
        &self.first
    }

    /// The latest retained detection times (up to `edge`), oldest
    /// first.
    pub fn last(&self) -> Vec<u64> {
        self.last.iter().copied().collect()
    }

    /// The complete hit list, if the log was created with `keep_all`.
    pub fn all(&self) -> Option<&[u64]> {
        self.all.as_deref()
    }

    /// How many detections fall between the retained head and tail.
    pub fn elided(&self) -> u64 {
        self.count - (self.first.len() + self.last.len()) as u64
    }

    /// Renders the hits: the complete list when retained (or when
    /// everything fits in the head), otherwise head/tail entries with
    /// an elision count — bulk traffic must not turn a summary into
    /// MBs of tick numbers.
    pub fn render(&self) -> String {
        if let Some(all) = &self.all {
            return format!("{all:?}");
        }
        let join =
            |ts: &mut dyn Iterator<Item = u64>| ts.map(|t| t.to_string()).collect::<Vec<_>>().join(", ");
        let head = join(&mut self.first.iter().copied());
        if self.last.is_empty() {
            return format!("[{head}]");
        }
        let tail = join(&mut self.last.iter().copied());
        let elided = self.elided();
        if elided == 0 {
            format!("[{head}, {tail}]")
        } else {
            format!("[{head}, ... {elided} more ..., {tail}]")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_logs_render_whole() {
        let mut log = MatchLog::new(5, false);
        log.absorb(&[3, 7]);
        assert_eq!(log.render(), "[3, 7]");
        assert_eq!(log.elided(), 0);
        assert!(log.detected());
    }

    #[test]
    fn exact_fit_has_no_elision_marker() {
        let mut log = MatchLog::new(2, false);
        log.absorb(&[1, 2, 3, 4]);
        assert_eq!(log.render(), "[1, 2, 3, 4]");
    }

    #[test]
    fn keep_all_retains_everything() {
        let mut log = MatchLog::new(1, true);
        log.absorb(&[10, 20, 30]);
        assert_eq!(log.all(), Some(&[10, 20, 30][..]));
        assert_eq!(log.render(), "[10, 20, 30]");
        assert_eq!(log.count(), 3);
    }

    #[test]
    fn edge_zero_log_is_count_only() {
        let mut log = MatchLog::new(0, false);
        for t in 0..1000u64 {
            log.push(t);
        }
        assert_eq!(log.count(), 1000);
        assert!(log.first().is_empty());
        assert!(log.last().is_empty(), "edge-0 retains nothing");
        assert_eq!(log.render(), "[]");
    }

    #[test]
    fn bounded_memory_over_bulk_hits() {
        let mut log = MatchLog::new(5, false);
        for t in 0..100_000u64 {
            log.push(t);
        }
        assert_eq!(log.count(), 100_000);
        assert_eq!(log.first(), &[0, 1, 2, 3, 4]);
        assert_eq!(log.last(), vec![99_995, 99_996, 99_997, 99_998, 99_999]);
        assert_eq!(log.elided(), 99_990);
        assert!(log.render().contains("... 99990 more ..."));
    }
}
