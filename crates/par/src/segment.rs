//! Trace-segment speculative parallelism for a single big monitor.
//!
//! Fleet sharding ([`crate::run_sharded`]) parallelizes across
//! monitors; it cannot speed up one expensive monitor over one long
//! dump. This module splits the *trace* instead: the dump is cut into
//! fixed-size windows, every window is run speculatively from every
//! reachable start state
//! ([`cesc_core::CompiledMonitor::speculate_window`] — the state count
//! is small post-optimization), and the runs are stitched serially at
//! the joins:
//!
//! ```text
//!   trace   ─┬─ window 0 ──┬─ window 1 ──┬─ window 2 ──┬─ …
//!            │ from s_init │ from s0..sN │ from s0..sN │   (parallel)
//!            ▼             ▼             ▼
//!   stitch:  carry state → clean run? adopt : replay    (serial)
//! ```
//!
//! A speculative run is adoptable ([`cesc_core::WindowRun::clean`])
//! only when the empty-scoreboard evaluation provably matches the real
//! one under *any* incoming scoreboard: the run executed no scoreboard
//! actions and never scanned a guard reading a counter the
//! [`cesc_core::infer_bounds`] interval analysis says may be non-zero
//! (the `may_chk` argument). Windows whose carry-state run is unclean
//! are replayed exactly through the serial engine, so the stitched
//! verdict — hits, end state, tick count, underflows, including any
//! "transition relation not total" panic — is bit-identical to a
//! serial [`cesc_core::BatchExec::feed`] over the whole trace.

use std::sync::atomic::{AtomicUsize, Ordering};

use cesc_core::{CompiledMonitor, ScanReport, WindowRun};
use cesc_expr::Valuation;
use cesc_obs::{key, Obs};

/// Knobs for [`scan_segmented`].
#[derive(Debug, Clone)]
pub struct SegmentOptions {
    /// Worker threads the speculative window runs fan out across.
    /// `1` skips speculation entirely and feeds the serial engine.
    pub jobs: usize,
    /// Ticks per window. Clamped to at least 1; a window at least as
    /// long as the trace degenerates to the serial scan.
    pub window: usize,
    /// Observability registry: `segment.windows`, `segment.adopted`,
    /// `segment.replayed` and `segment.speculative_steps` accumulate
    /// here. Disabled (no-op) by default.
    pub obs: Obs,
}

impl Default for SegmentOptions {
    fn default() -> Self {
        SegmentOptions {
            jobs: 1,
            window: 1 << 16,
            obs: Obs::disabled(),
        }
    }
}

/// What a segmented scan produced: the serial-identical verdict plus
/// the stitch accounting.
#[derive(Debug, Clone)]
pub struct SegmentReport {
    /// The scan verdict — bit-identical to the serial engine's.
    pub report: ScanReport,
    /// Windows the trace was split into.
    pub windows: usize,
    /// Windows stitched by adopting a clean speculative run.
    pub adopted: usize,
    /// Windows replayed exactly from the carry state.
    pub replayed: usize,
    /// Ticks executed speculatively across all window × state runs
    /// (adopted or not — the wasted work is the price of speculation).
    pub speculative_steps: u64,
}

/// Runs `trace` through `compiled` with trace-segment speculative
/// parallelism — verdicts bit-identical to a serial
/// [`cesc_core::BatchExec::feed`] over the whole trace.
///
/// `may_chk` is the global-symbol bitmask of scoreboard events whose
/// count may ever be non-zero; pass the events [`cesc_core::infer_bounds`]
/// could not prove `[0, 0]`, or
/// [`cesc_core::CompiledMonitor::touched_symbols`] as the conservative
/// fallback (sound, just adopts fewer windows).
///
/// # Panics
///
/// Panics exactly where the serial engine would: a window replay hits
/// the same "transition relation not total" panic on the same tick.
pub fn scan_segmented(
    compiled: &CompiledMonitor,
    may_chk: u128,
    trace: &[Valuation],
    opts: &SegmentOptions,
) -> SegmentReport {
    let window = opts.window.max(1);
    let windows: Vec<&[Valuation]> = trace.chunks(window).collect();
    let n_windows = windows.len();
    let jobs = opts.jobs.max(1);

    let mut exec = compiled.executor();
    let mut hits = Vec::new();
    let mut adopted = 0usize;
    let mut replayed = 0usize;
    let mut speculative_steps = 0u64;

    if jobs == 1 || n_windows <= 1 {
        // nothing to overlap: the serial engine, counted as replays
        for w in &windows {
            exec.feed(w, &mut hits);
        }
        replayed = n_windows;
    } else {
        // -- fan out: window 0 only continues the initial state; every
        // later window speculates from every state --------------------
        let states = compiled.state_count();
        let tasks: Vec<(usize, usize)> = (0..n_windows)
            .flat_map(|wi| {
                let from: Vec<usize> = if wi == 0 {
                    vec![exec.state_index()]
                } else {
                    (0..states).collect()
                };
                from.into_iter().map(move |s| (wi, s))
            })
            .collect();
        let next = AtomicUsize::new(0);
        let workers = jobs.min(tasks.len());
        let mut done: Vec<Vec<(usize, WindowRun)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&(wi, s)) = tasks.get(i) else { break };
                            local.push((i, compiled.speculate_window(s, windows[wi], may_chk)));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("segment worker panicked"))
                .collect()
        });
        let mut runs: Vec<Option<WindowRun>> = vec![None; tasks.len()];
        for (i, run) in done.drain(..).flatten() {
            speculative_steps += run.steps();
            runs[i] = Some(run);
        }
        // task index of (window wi, start state s): window 0
        // contributed exactly one task, later windows `states` each
        let task_of =
            |wi: usize, s: usize| if wi == 0 { 0 } else { 1 + (wi - 1) * states + s };

        // -- stitch: adopt the carry state's clean run, else replay ---
        for (wi, w) in windows.iter().enumerate() {
            let carry = exec.state_index();
            let run = if wi == 0 && carry != tasks[0].1 {
                None // unreachable today; guards a future carry change
            } else {
                runs[task_of(wi, carry)].as_ref().filter(|r| r.clean())
            };
            match run {
                Some(r) => {
                    exec.adopt_run(r, &mut hits);
                    adopted += 1;
                }
                None => {
                    exec.feed(w, &mut hits);
                    replayed += 1;
                }
            }
        }
    }

    opts.obs.counter(key::SEGMENT_WINDOWS).add(n_windows as u64);
    opts.obs.counter(key::SEGMENT_ADOPTED).add(adopted as u64);
    opts.obs.counter(key::SEGMENT_REPLAYED).add(replayed as u64);
    opts.obs.counter(key::SEGMENT_SPECULATIVE_STEPS).add(speculative_steps);
    opts.obs.counter(key::ENGINE_WORDS).add(exec.words());
    opts.obs.counter(key::ENGINE_DENSE_WORDS).add(exec.dense_words());
    opts.obs.counter(key::ENGINE_TICKS).add(exec.ticks());
    opts.obs.counter(key::ENGINE_UNDERFLOWS).add(exec.underflows());

    SegmentReport {
        report: exec.finish(hits),
        windows: n_windows,
        adopted,
        replayed,
        speculative_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_chart::parse_document;
    use cesc_core::{synthesize, CompileOptions, SynthOptions};

    fn handshake() -> (cesc_core::Monitor, cesc_chart::Document) {
        let doc = parse_document(
            "scesc hs on clk { instances { M, S } events { req, ack } \
             tick { M: req } tick { S: ack } }",
        )
        .unwrap();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        (m, doc)
    }

    #[test]
    fn segmented_matches_serial_and_adopts() {
        let (m, doc) = handshake();
        let req = doc.alphabet.lookup("req").unwrap();
        let ack = doc.alphabet.lookup("ack").unwrap();
        let trace: Vec<Valuation> = (0..4000)
            .map(|i| match i % 37 {
                5 => Valuation::of([req]),
                6 => Valuation::of([ack]),
                _ => Valuation::empty(),
            })
            .collect();
        let compiled = m.compiled_with(&CompileOptions::optimized());
        let reference = m.scan_batch(&trace);
        let may = compiled.touched_symbols();
        for jobs in [1, 2, 3, 8] {
            for window in [100, 64, 4096, 5000] {
                let opts = SegmentOptions {
                    jobs,
                    window,
                    obs: Obs::disabled(),
                };
                let got = scan_segmented(&compiled, may, &trace, &opts);
                assert_eq!(got.report, reference, "jobs={jobs} window={window}");
                assert_eq!(got.windows, trace.len().div_ceil(window));
                assert_eq!(got.adopted + got.replayed, got.windows);
                if jobs > 1 && window < trace.len() {
                    // a scoreboard-free chart speculates cleanly
                    assert!(got.adopted > 0, "jobs={jobs} window={window}");
                }
            }
        }
    }

    #[test]
    fn scoreboard_windows_replay_exactly() {
        // causality arrows force scoreboard traffic: runs touching it
        // are unclean, the stitch replays them, verdicts still match
        let doc = parse_document(
            "scesc c on clk { instances { A, B } events { e1, e3 } \
             tick { A: e1 } tick { B: e3 } cause e1 -> e3; }",
        )
        .unwrap();
        let m = synthesize(doc.chart("c").unwrap(), &SynthOptions::default()).unwrap();
        let e1 = doc.alphabet.lookup("e1").unwrap();
        let e3 = doc.alphabet.lookup("e3").unwrap();
        let trace: Vec<Valuation> = (0..900)
            .map(|i| match i % 9 {
                2 => Valuation::of([e1]),
                4 => Valuation::of([e3]),
                _ => Valuation::empty(),
            })
            .collect();
        let compiled = m.compiled_with(&CompileOptions::optimized());
        let reference = m.scan_batch(&trace);
        let may = compiled.touched_symbols();
        for jobs in [2, 4] {
            let opts = SegmentOptions {
                jobs,
                window: 50,
                obs: Obs::disabled(),
            };
            let got = scan_segmented(&compiled, may, &trace, &opts);
            assert_eq!(got.report, reference, "jobs={jobs}");
            assert!(got.replayed > 0);
        }
    }

    #[test]
    fn segment_counters_accumulate() {
        let (m, doc) = handshake();
        let req = doc.alphabet.lookup("req").unwrap();
        let trace: Vec<Valuation> = (0..256)
            .map(|i| {
                if i % 64 == 0 {
                    Valuation::of([req])
                } else {
                    Valuation::empty()
                }
            })
            .collect();
        let compiled = m.compiled_with(&CompileOptions::optimized());
        let obs = Obs::enabled();
        let opts = SegmentOptions {
            jobs: 2,
            window: 64,
            obs: obs.clone(),
        };
        scan_segmented(&compiled, compiled.touched_symbols(), &trace, &opts);
        let report = obs.report("segment");
        assert_eq!(report.counter(key::SEGMENT_WINDOWS), 4);
        assert_eq!(
            report.counter(key::SEGMENT_ADOPTED) + report.counter(key::SEGMENT_REPLAYED),
            4
        );
        assert!(report.counter(key::SEGMENT_SPECULATIVE_STEPS) > 0);
        assert_eq!(report.counter(key::ENGINE_TICKS), 256);
    }
}
