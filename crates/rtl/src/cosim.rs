//! Differential co-simulation: interpreted RTL vs the batch engine.
//!
//! The [`CoSim`] harness drives one stimulus stream into both halves
//! of the monitor's double life — the [`RtlInterp`] executing the
//! lowered [`RtlModule`] and the [`cesc_core::BatchExec`] executing
//! the [`cesc_core::CompiledMonitor`] — and checks after *every* cycle
//! that the RTL `match_pulse` equals the engine's match verdict. Any
//! disagreement surfaces as a [`Divergence`] carrying the cycle index
//! and both sides' observations, which is exactly the evidence an
//! emitter bug leaves behind (cross-wired ports, wrapped counters,
//! weakened guards).
//!
//! Memory stays constant in stream length: the harness keeps counts
//! and the current cycle only, so it rides the same chunked feeds as
//! `cesc check` (the `--cosim` flag wraps this type).

use std::fmt;

use cesc_core::{BatchExec, CompiledMonitor, Monitor, ScanReport};
use cesc_expr::{Alphabet, Valuation};
use cesc_hdl::{lower_monitor, RtlModule, VerilogOptions};

use crate::interp::RtlInterp;

/// One cycle where the interpreted RTL and the engine disagreed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// 0-based cycle index of the first disagreement.
    pub tick: u64,
    /// `match_pulse` of the interpreted RTL at that cycle.
    pub rtl_pulse: bool,
    /// The engine's match verdict at that cycle.
    pub engine_pulse: bool,
    /// RTL FSM state *after* the divergent cycle.
    pub rtl_state: u32,
    /// Engine state index after the divergent cycle.
    pub engine_state: u32,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RTL/engine divergence at tick {}: rtl match_pulse={} (state s{}), \
             engine matched={} (state s{})",
            self.tick, self.rtl_pulse, self.rtl_state, self.engine_pulse, self.engine_state
        )
    }
}

impl std::error::Error for Divergence {}

/// Lock-step differential executor over one monitor's two forms.
///
/// # Examples
///
/// ```
/// use cesc_chart::parse_document;
/// use cesc_core::{synthesize, SynthOptions};
/// use cesc_hdl::{lower_monitor, VerilogOptions};
/// use cesc_rtl::CoSim;
/// use cesc_expr::Valuation;
///
/// let doc = parse_document(
///     "scesc hs on clk { instances { M } events { req, ack } \
///      tick { M: req } tick { M: ack } cause req -> ack; }",
/// ).unwrap();
/// let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
/// let module = lower_monitor(&m, &doc.alphabet, &VerilogOptions::default());
/// let compiled = m.compiled();
/// let req = doc.alphabet.lookup("req").unwrap();
/// let ack = doc.alphabet.lookup("ack").unwrap();
///
/// let mut cosim = CoSim::new(&module, &compiled);
/// cosim.feed(&[Valuation::of([req]), Valuation::of([ack])]).unwrap();
/// assert_eq!(cosim.matches(), 1); // both sides agreed, one detection
/// ```
#[derive(Debug)]
pub struct CoSim<'m> {
    rtl: RtlInterp<'m>,
    engine: BatchExec<'m>,
    diverged: Option<Divergence>,
}

impl<'m> CoSim<'m> {
    /// Pairs an interpreted module with a compiled engine. The two must
    /// come from the *same* [`Monitor`] for the comparison to be
    /// meaningful (use [`cosim_scan`] for the one-shot convenience
    /// that guarantees it).
    pub fn new(module: &'m RtlModule, compiled: &'m CompiledMonitor) -> Self {
        CoSim {
            rtl: RtlInterp::new(module),
            engine: compiled.executor(),
            diverged: None,
        }
    }

    /// Steps both sides one cycle; `Err` on the first disagreement.
    ///
    /// After a divergence the harness is poisoned: further calls keep
    /// returning the same error without advancing either side.
    pub fn step(&mut self, v: Valuation) -> Result<bool, Divergence> {
        if let Some(d) = self.diverged {
            return Err(d);
        }
        let rtl_pulse = self.rtl.step(v);
        let engine_pulse = self.engine.step(v);
        if rtl_pulse != engine_pulse {
            let d = Divergence {
                tick: self.rtl.ticks() - 1,
                rtl_pulse,
                engine_pulse,
                rtl_state: self.rtl.state(),
                engine_state: self.engine.state_index() as u32,
            };
            self.diverged = Some(d);
            return Err(d);
        }
        Ok(rtl_pulse)
    }

    /// Feeds a chunk through both sides; `Err` on the first
    /// disagreement (earlier cycles of the chunk remain consumed).
    pub fn feed(&mut self, chunk: &[Valuation]) -> Result<(), Divergence> {
        for &v in chunk {
            self.step(v)?;
        }
        Ok(())
    }

    /// Cycles both sides have agreed on so far.
    pub fn ticks(&self) -> u64 {
        self.rtl.ticks()
    }

    /// Agreed detections so far.
    pub fn matches(&self) -> u64 {
        self.rtl.match_count()
    }

    /// The recorded divergence, if any.
    pub fn divergence(&self) -> Option<Divergence> {
        self.diverged
    }
}

/// Result of a successful [`cosim_scan`]: both sides agreed on every
/// cycle and produced this (shared) report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CosimReport {
    /// Detection ticks both sides agreed on.
    pub matches: Vec<u64>,
    /// Cycles executed.
    pub ticks: u64,
}

/// One-shot convenience: lowers `monitor`, compiles it, and
/// co-simulates the two over `trace`.
///
/// This is the property-test oracle: `Ok` proves the emitted RTL's
/// `match_pulse` tick sequence is bit-identical to the engine's match
/// sequence on that stimulus.
pub fn cosim_scan(
    monitor: &Monitor,
    alphabet: &Alphabet,
    opts: &VerilogOptions,
    trace: impl IntoIterator<Item = Valuation>,
) -> Result<CosimReport, Divergence> {
    let module = lower_monitor(monitor, alphabet, opts);
    let compiled = monitor.compiled();
    let mut cosim = CoSim::new(&module, &compiled);
    let mut matches = Vec::new();
    for v in trace {
        let tick = cosim.ticks();
        if cosim.step(v)? {
            matches.push(tick);
        }
    }
    Ok(CosimReport {
        matches,
        ticks: cosim.ticks(),
    })
}

/// Checks a [`ScanReport`] from any engine path against a successful
/// co-simulation report (same match ticks, same length).
pub fn report_agrees(cosim: &CosimReport, engine: &ScanReport) -> bool {
    cosim.matches == engine.matches && cosim.ticks == engine.ticks
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_chart::parse_document;
    use cesc_core::{synthesize, SynthOptions};

    fn hs() -> (cesc_chart::Document, Monitor) {
        let doc = parse_document(
            "scesc hs on clk { instances { M, S } events { req, ack } \
             tick { M: req } tick { S: ack } cause req -> ack; }",
        )
        .unwrap();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        (doc, m)
    }

    #[test]
    fn agreement_over_exhaustive_stimulus() {
        let (doc, m) = hs();
        let trace: Vec<Valuation> =
            (0..256u32).map(|i| Valuation::from_bits((i % 4) as u128)).collect();
        let report = cosim_scan(&m, &doc.alphabet, &VerilogOptions::default(), trace.clone())
            .expect("no divergence");
        assert!(report_agrees(&report, &m.scan(trace)));
    }

    /// Accumulating monitor: every return-to-idle adds one `a`
    /// occurrence that is never deleted, so the scoreboard count grows
    /// without bound — the shape that overflows a finite counter.
    /// (Chart-synthesized monitors net-zero their slides; unbounded
    /// accumulation needs the shared scoreboard of a multi-clock spec
    /// or a hand-built program like this one.)
    fn accumulator(ab: &mut cesc_expr::Alphabet) -> Monitor {
        use cesc_core::{Action, StateId, Transition, TransitionKind};
        use cesc_expr::Expr;
        let a = ab.event("a");
        Monitor::from_parts(
            "accum",
            "clk",
            vec![
                vec![
                    Transition {
                        guard: Expr::chk(a),
                        actions: vec![],
                        target: StateId::from_index(1),
                        kind: TransitionKind::Forward,
                    },
                    Transition {
                        guard: Expr::t(),
                        actions: vec![Action::AddEvt(vec![a])],
                        target: StateId::from_index(0),
                        kind: TransitionKind::Backward,
                    },
                ],
                vec![Transition {
                    guard: Expr::t(),
                    actions: vec![Action::AddEvt(vec![a])],
                    target: StateId::from_index(0),
                    kind: TransitionKind::Backward,
                }],
            ],
            StateId::from_index(0),
            StateId::from_index(1),
            vec![Expr::chk(a)],
            vec![a],
        )
    }

    #[test]
    fn wrapping_counter_diverges_and_poisons_the_harness() {
        // pre-fix emitter semantics: `sb <= sb + 1` wraps at the
        // counter width, so after 2^w adds the RTL reads `sb == 0`
        // while the engine scoreboard still holds occurrences — the
        // Chk_evt guard disagrees and the match streams split
        let mut ab = cesc_expr::Alphabet::new();
        let m = accumulator(&mut ab);
        let opts = VerilogOptions {
            counter_width: Some(2),
            saturating: false,
            ..Default::default()
        };
        let module = lower_monitor(&m, &ab, &opts);
        let compiled = m.compiled();
        let mut cosim = CoSim::new(&module, &compiled);
        let mut err = None;
        for _ in 0..32 {
            if let Err(d) = cosim.step(Valuation::empty()) {
                err = Some(d);
                break;
            }
        }
        let d = err.expect("wrapping counter must diverge");
        assert!(d.engine_pulse && !d.rtl_pulse, "{d}");
        // poisoned: same divergence returned, no progress
        let ticks = cosim.ticks();
        assert_eq!(cosim.step(Valuation::empty()), Err(d));
        assert_eq!(cosim.ticks(), ticks);
        assert_eq!(cosim.divergence(), Some(d));
    }

    #[test]
    fn saturating_default_survives_counter_overflow() {
        // same accumulating stimulus, default (saturating) emitter:
        // the pinned counter keeps reading non-zero, so Chk_evt agrees
        // with the engine for the whole stream
        let mut ab = cesc_expr::Alphabet::new();
        let m = accumulator(&mut ab);
        let opts = VerilogOptions {
            counter_width: Some(2),
            saturating: true,
            ..Default::default()
        };
        let trace = vec![Valuation::empty(); 64];
        let report = cosim_scan(&m, &ab, &opts, trace.clone())
            .unwrap_or_else(|d| panic!("saturating mode diverged: {d}"));
        assert!(report_agrees(&report, &m.scan(trace)));
        assert!(!report.matches.is_empty());
    }
}
