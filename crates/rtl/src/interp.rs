//! The cycle-accurate [`RtlModule`] interpreter.
//!
//! [`RtlInterp`] executes the exact IR object that
//! [`cesc_hdl::render_verilog`] prints, mimicking the rendered
//! netlist's register semantics bit for bit:
//!
//! * guards are evaluated against the *registered* (pre-update)
//!   counter values, as nonblocking assignments would read them;
//! * counter increments saturate at `2^width - 1` or wrap modulo the
//!   width, matching the rendered saturating ternary / bare adder;
//! * counter decrements floor at zero via the rendered
//!   `(sb > m) ? sb - m : 0` ternary;
//! * a state with no enabled arm *holds* (the cascade has no `else`),
//!   whereas the engine executor panics on a non-total monitor — the
//!   one place the hardware and the software reference intentionally
//!   differ.
//!
//! One step corresponds to one rising clock edge with the inputs of
//! the consumed [`Valuation`] applied; the returned flag is the value
//! `match_pulse` holds *after* that edge, so step `t`'s flag aligns
//! with the engine's match verdict for trace element `t`.

use cesc_expr::{ScoreboardView, SymbolId, Valuation};
use cesc_hdl::RtlModule;

/// Marker for "symbol has no counter slot" in the lookup table.
const NO_SLOT: u32 = u32::MAX;

/// [`ScoreboardView`] over the interpreter's counter registers, so
/// guard `Chk_evt` atoms read `sb != 0` exactly like the rendered
/// comparison.
struct CounterView<'a> {
    slot_of: &'a [u32],
    counters: &'a [u64],
}

impl ScoreboardView for CounterView<'_> {
    fn has_event(&self, event: SymbolId) -> bool {
        match self.slot_of.get(event.index()) {
            Some(&slot) if slot != NO_SLOT => self.counters[slot as usize] != 0,
            // an event with no counter register reads as an undeclared
            // net; the lowering never emits this (scoreboard_events
            // covers every Chk target), so default to "empty"
            _ => false,
        }
    }
}

/// Cycle-accurate executor of one [`RtlModule`].
///
/// # Examples
///
/// ```
/// use cesc_chart::parse_document;
/// use cesc_core::{synthesize, SynthOptions};
/// use cesc_hdl::{lower_monitor, VerilogOptions};
/// use cesc_rtl::RtlInterp;
/// use cesc_expr::Valuation;
///
/// let doc = parse_document(
///     "scesc hs on clk { instances { M } events { req, ack } \
///      tick { M: req } tick { M: ack } }",
/// ).unwrap();
/// let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
/// let module = lower_monitor(&m, &doc.alphabet, &VerilogOptions::default());
/// let req = doc.alphabet.lookup("req").unwrap();
/// let ack = doc.alphabet.lookup("ack").unwrap();
///
/// let mut rtl = RtlInterp::new(&module);
/// assert!(!rtl.step(Valuation::of([req])));
/// assert!(rtl.step(Valuation::of([ack]))); // match_pulse fires
/// ```
#[derive(Debug)]
pub struct RtlInterp<'m> {
    module: &'m RtlModule,
    /// symbol index → counter slot (or [`NO_SLOT`]).
    slot_of: Vec<u32>,
    state: u32,
    counters: Vec<u64>,
    /// Scratch for the cycle's nonblocking counter updates.
    pending: Vec<(u32, i64)>,
    ticks: u64,
    matches: u64,
}

impl<'m> RtlInterp<'m> {
    /// Creates an interpreter positioned at the module's reset state
    /// (initial FSM state, all counters zero).
    pub fn new(module: &'m RtlModule) -> Self {
        let max_symbol = module
            .counters()
            .iter()
            .map(|c| c.event.index())
            .max()
            .map_or(0, |m| m + 1);
        let mut slot_of = vec![NO_SLOT; max_symbol];
        for (slot, c) in module.counters().iter().enumerate() {
            slot_of[c.event.index()] = slot as u32;
        }
        RtlInterp {
            module,
            slot_of,
            state: module.initial(),
            counters: vec![0; module.counters().len()],
            pending: Vec::new(),
            ticks: 0,
            matches: 0,
        }
    }

    /// The module being interpreted.
    pub fn module(&self) -> &'m RtlModule {
        self.module
    }

    /// Current FSM state index (the `state` output register).
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Current value of the counter register for slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn counter(&self, slot: usize) -> u64 {
        self.counters[slot]
    }

    /// Rising clock edges consumed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Number of cycles `match_pulse` has been high so far.
    pub fn match_count(&self) -> u64 {
        self.matches
    }

    /// Applies reset: initial state, all counters zero, tick and match
    /// counters cleared.
    pub fn reset(&mut self) {
        self.state = self.module.initial();
        self.counters.iter_mut().for_each(|c| *c = 0);
        self.ticks = 0;
        self.matches = 0;
    }

    /// One rising clock edge with inputs `v`; returns the resulting
    /// `match_pulse` value.
    pub fn step(&mut self, v: Valuation) -> bool {
        let mut pulse = false;
        let mut next = self.state;
        self.pending.clear();
        {
            let view = CounterView {
                slot_of: &self.slot_of,
                counters: &self.counters,
            };
            let arms = self.module.arms(self.state as usize);
            if let Some(arm) = arms.iter().find(|a| a.guard().eval(v, &view)) {
                next = arm.target();
                pulse = arm.pulse();
                self.pending.extend(arm.updates().iter().map(|u| (u.counter, u.delta)));
            }
            // no enabled arm: the rendered cascade has no else branch,
            // so every register holds its value
        }
        let max = self.module.counter_max();
        let wrap_mask = max; // counter registers truncate to `width` bits
        for &(slot, delta) in &self.pending {
            let c = &mut self.counters[slot as usize];
            if delta > 0 {
                let d = delta as u64;
                *c = if self.module.saturating() {
                    c.saturating_add(d).min(max)
                } else {
                    c.wrapping_add(d) & wrap_mask
                };
            } else {
                let mag = (-delta) as u64;
                // the rendered `(sb > m) ? sb - m : 0` ternary
                *c = (*c).saturating_sub(mag);
            }
        }
        self.state = next;
        self.ticks += 1;
        if pulse {
            self.matches += 1;
        }
        pulse
    }

    /// Consumes a chunk of valuations, appending the absolute tick
    /// index of every `match_pulse` to `hits` — the signature of
    /// [`cesc_core::BatchExec::feed`], so the two engines slot into
    /// the same harnesses.
    pub fn feed(&mut self, chunk: &[Valuation], hits: &mut Vec<u64>) {
        for &v in chunk {
            let tick = self.ticks;
            if self.step(v) {
                hits.push(tick);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_chart::parse_document;
    use cesc_core::{synthesize, StateId, SynthOptions, Transition, TransitionKind};
    use cesc_expr::{Alphabet, Expr};
    use cesc_hdl::{lower_monitor, VerilogOptions};

    #[test]
    fn interprets_causality_chart() {
        let doc = parse_document(
            "scesc hs on clk { instances { M, S } events { req, ack } \
             tick { M: req } tick { S: ack } cause req -> ack; }",
        )
        .unwrap();
        let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
        let module = lower_monitor(&m, &doc.alphabet, &VerilogOptions::default());
        let req = doc.alphabet.lookup("req").unwrap();
        let ack = doc.alphabet.lookup("ack").unwrap();

        let mut rtl = RtlInterp::new(&module);
        let mut hits = Vec::new();
        rtl.feed(
            &[
                Valuation::of([req]),
                Valuation::of([ack]),
                Valuation::empty(),
                Valuation::of([req]),
                Valuation::of([ack]),
            ],
            &mut hits,
        );
        assert_eq!(hits, m.scan([
            Valuation::of([req]),
            Valuation::of([ack]),
            Valuation::empty(),
            Valuation::of([req]),
            Valuation::of([ack]),
        ]).matches);
        assert_eq!(rtl.match_count(), 2);
        assert_eq!(rtl.ticks(), 5);
        rtl.reset();
        assert_eq!(rtl.ticks(), 0);
        assert_eq!(rtl.state(), module.initial());
    }

    /// Monitor that Adds `a` every tick — the counter-overflow probe.
    fn adder_monitor(ab: &mut Alphabet) -> cesc_core::Monitor {
        let a = ab.event("a");
        let guard_chk = Expr::chk(a);
        cesc_core::Monitor::from_parts(
            "adder",
            "clk",
            vec![vec![
                Transition {
                    guard: guard_chk,
                    actions: vec![cesc_core::Action::AddEvt(vec![a])],
                    target: StateId::from_index(1),
                    kind: TransitionKind::Forward,
                },
                Transition {
                    guard: Expr::t(),
                    actions: vec![cesc_core::Action::AddEvt(vec![a])],
                    target: StateId::from_index(0),
                    kind: TransitionKind::Backward,
                },
            ], vec![Transition {
                guard: Expr::t(),
                actions: vec![cesc_core::Action::AddEvt(vec![a])],
                target: StateId::from_index(0),
                kind: TransitionKind::Backward,
            }]],
            StateId::from_index(0),
            StateId::from_index(1),
            vec![Expr::sym(a)],
            vec![a],
        )
    }

    #[test]
    fn wrapping_counter_wraps_and_saturating_pins() {
        let mut ab = Alphabet::new();
        let m = adder_monitor(&mut ab);
        let wrap_mod = lower_monitor(
            &m,
            &ab,
            &VerilogOptions {
                counter_width: Some(2), // wraps at 4 adds
                saturating: false,
                ..Default::default()
            },
        );
        let mut rtl = RtlInterp::new(&wrap_mod);
        for _ in 0..4 {
            rtl.step(Valuation::empty());
        }
        assert_eq!(rtl.counter(0), 0, "2-bit counter wrapped");

        let sat_mod = lower_monitor(
            &m,
            &ab,
            &VerilogOptions {
                counter_width: Some(2),
                saturating: true,
                ..Default::default()
            },
        );
        let mut rtl = RtlInterp::new(&sat_mod);
        for _ in 0..10 {
            rtl.step(Valuation::empty());
        }
        assert_eq!(rtl.counter(0), 3, "2-bit counter saturated at 3");
    }

    #[test]
    fn non_total_state_holds_instead_of_panicking() {
        let mut ab = Alphabet::new();
        let a = ab.event("a");
        let m = cesc_core::Monitor::from_parts(
            "partial",
            "clk",
            vec![vec![Transition {
                guard: Expr::sym(a),
                actions: vec![],
                target: StateId::from_index(0),
                kind: TransitionKind::Backward,
            }]],
            StateId::from_index(0),
            StateId::from_index(0),
            vec![],
            vec![],
        );
        let module = lower_monitor(&m, &ab, &VerilogOptions::default());
        let mut rtl = RtlInterp::new(&module);
        // `a` low: no arm fires; the hardware holds state
        assert!(!rtl.step(Valuation::empty()));
        assert_eq!(rtl.state(), 0);
    }
}
