//! # cesc-rtl — execute the emitted RTL, then hold it to the engine's
//! verdict
//!
//! `cesc-hdl` lowers a synthesized monitor to an [`cesc_hdl::RtlModule`]
//! and renders it as Verilog; until this crate existed, nothing in the
//! workspace ever *executed* that RTL, so emitter bugs (cross-wired
//! ports from name collisions, counters wrapping where the engine's
//! scoreboard doesn't, weakened guards) shipped as silently broken
//! text. This crate closes the loop:
//!
//! * [`RtlInterp`] — a cycle-accurate interpreter of the IR, matching
//!   the rendered netlist's register semantics bit for bit (counter
//!   bit-width truncation or saturation, zero-floored decrements,
//!   guard evaluation against pre-update registers, state hold when no
//!   arm fires);
//! * [`CoSim`] / [`cosim_scan`] — the differential harness: one
//!   stimulus stream drives the interpreted RTL and the
//!   [`cesc_core::CompiledMonitor`] batch engine in lock step, and any
//!   cycle where `match_pulse` disagrees with the engine's verdict is
//!   reported as a [`Divergence`].
//!
//! ## What the co-simulation guarantees
//!
//! With the default **saturating** counters, the RTL agrees with the
//! engine whenever the true occurrence count stays within
//! `2^counter_width - 1`, *and* on pure-accumulation overflow (a
//! saturated counter still reads non-zero). The remaining gap is
//! fundamental to finite counters: a counter that saturated can be
//! drained to zero by deletes while the engine's unbounded count is
//! still positive. Legacy **wrapping** counters are strictly worse —
//! `2^counter_width` net adds read as zero — which is exactly the
//! divergence the harness demonstrates in its regression tests.
//!
//! ```
//! use cesc_chart::parse_document;
//! use cesc_core::{synthesize, SynthOptions};
//! use cesc_hdl::VerilogOptions;
//! use cesc_rtl::cosim_scan;
//! use cesc_expr::Valuation;
//!
//! let doc = parse_document(
//!     "scesc hs on clk { instances { M } events { req, ack } \
//!      tick { M: req } tick { M: ack } cause req -> ack; }",
//! ).unwrap();
//! let m = synthesize(doc.chart("hs").unwrap(), &SynthOptions::default()).unwrap();
//! let req = doc.alphabet.lookup("req").unwrap();
//! let ack = doc.alphabet.lookup("ack").unwrap();
//! let trace = vec![Valuation::of([req]), Valuation::of([ack])];
//!
//! let report = cosim_scan(&m, &doc.alphabet, &VerilogOptions::default(), trace.clone())
//!     .expect("RTL and engine agree");
//! assert_eq!(report.matches, m.scan(trace).matches);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cosim;
mod interp;

pub use cosim::{cosim_scan, report_agrees, CoSim, CosimReport, Divergence};
pub use interp::RtlInterp;
