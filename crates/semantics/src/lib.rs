//! # cesc-semantics — the denotational semantics of CESC
//!
//! Reference semantics of the CESC monitor-synthesis reproduction
//! (Gadkari & Ramesh, DATE 2005). Paper §3 maps every chart to the set
//! of runs `[[C]]` that contain a finite interval exhibiting the chart's
//! event ordering (Figure 3); §5 states the synthesis correctness
//! result
//!
//! ```text
//! [[C]] = Σ* × L(M) × Σ^ω
//! ```
//!
//! This crate implements `[[C]]`-membership *directly from the chart* —
//! with no automaton — so it can serve as the independent oracle against
//! which synthesized monitors are property-tested (and as the
//! brute-force baseline in the Figure 3 benchmark):
//!
//! * [`window_matches`] / [`match_positions`] / [`contains_scenario`] —
//!   SCESC windows in a single-clock trace;
//! * [`cesc_matches`] / [`cesc_match_positions`] — structural
//!   compositions (`seq`, `par`, `alt`, `loop`, `implication`);
//! * [`multiclock_contains`] — multi-clock specs over global runs,
//!   including cross-domain causality ordering;
//! * [`witness_window`] / [`cesc_witness`] — satisfying windows used to
//!   plant positive scenarios in generated traffic.
//!
//! # Example
//!
//! ```
//! use cesc_chart::parse_document;
//! use cesc_semantics::{contains_scenario, witness_window};
//! use cesc_trace::Trace;
//!
//! let doc = parse_document(
//!     "scesc hs on clk { instances { M } events { req, ack } \
//!      tick { M: req } tick { M: ack } }",
//! ).unwrap();
//! let chart = doc.chart("hs").unwrap();
//! let window = witness_window(chart)?;
//! let trace = Trace::from_elements(window);
//! assert!(contains_scenario(chart, &trace));
//! # Ok::<(), cesc_semantics::UnsatisfiableChart>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use cesc_chart::{Cesc, MultiClockSpec, Scesc};
use cesc_expr::{sat, Valuation};
use cesc_trace::{ClockSet, GlobalRun, Trace};

/// Error: a chart's pattern contains an unsatisfiable element, so no run
/// can exhibit it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsatisfiableChart {
    /// Name of the offending chart.
    pub chart: String,
    /// Tick whose pattern element is unsatisfiable.
    pub tick: usize,
}

impl fmt::Display for UnsatisfiableChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chart `{}` is unsatisfiable at tick {}",
            self.chart, self.tick
        )
    }
}

impl std::error::Error for UnsatisfiableChart {}

/// Whether `window` (one valuation per chart tick) exhibits the chart's
/// scenario: same length as the chart and element-by-element matching of
/// the extracted pattern — the definition behind Figure 3's semantic
/// mapping.
pub fn window_matches(chart: &Scesc, window: &[Valuation]) -> bool {
    if window.len() != chart.tick_count() {
        return false;
    }
    chart
        .extract_pattern()
        .iter()
        .zip(window)
        .all(|(p, &v)| p.eval_pure(v))
}

/// All window start positions at which the chart's scenario occurs in
/// `trace`.
pub fn match_positions(chart: &Scesc, trace: &Trace) -> Vec<usize> {
    let n = chart.tick_count();
    if n == 0 || trace.len() < n {
        return Vec::new();
    }
    let pattern = chart.extract_pattern();
    (0..=trace.len() - n)
        .filter(|&start| {
            pattern
                .iter()
                .enumerate()
                .all(|(i, p)| p.eval_pure(trace[start + i]))
        })
        .collect()
}

/// Whether `trace` contains at least one window exhibiting the chart —
/// i.e. whether any infinite extension of `trace` belongs to `[[C]]`
/// with the witness interval inside the observed prefix.
pub fn contains_scenario(chart: &Scesc, trace: &Trace) -> bool {
    let n = chart.tick_count();
    if n == 0 || trace.len() < n {
        return false;
    }
    let pattern = chart.extract_pattern();
    'outer: for start in 0..=trace.len() - n {
        for (i, p) in pattern.iter().enumerate() {
            if !p.eval_pure(trace[start + i]) {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

/// Builds a window that exhibits the chart: one satisfying valuation per
/// pattern element (minimal — unmentioned symbols are false).
///
/// # Errors
///
/// Returns [`UnsatisfiableChart`] if some grid line's constraint is
/// contradictory (e.g. an event both present and absent).
pub fn witness_window(chart: &Scesc) -> Result<Vec<Valuation>, UnsatisfiableChart> {
    chart
        .extract_pattern()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            sat::satisfying_valuation(p)
                .map(|w| w.valuation)
                .ok_or_else(|| UnsatisfiableChart {
                    chart: chart.name().to_owned(),
                    tick: i,
                })
        })
        .collect()
}

/// Whether `window` exhibits a structural composition.
///
/// Matching is scenario detection:
/// * `seq` — the window splits into consecutive sub-windows matching the
///   components in order;
/// * `par` — every component matches the whole window;
/// * `alt` — some component matches;
/// * `loop n` — `n` consecutive repetitions;
/// * `implication` — the antecedent window immediately followed by the
///   consequent window (the full observed scenario; verdict-level
///   checking lives in `cesc-core`'s `Checker`);
/// * `async` — always `false`: multi-clock matching needs a global run,
///   use [`multiclock_contains`].
pub fn cesc_matches(cesc: &Cesc, window: &[Valuation]) -> bool {
    match cesc {
        Cesc::Basic(s) => window_matches(s, window),
        Cesc::Seq(cs) => seq_matches(cs, window),
        Cesc::Par(cs) => cs.iter().all(|c| cesc_matches(c, window)),
        Cesc::Alt(cs) => cs.iter().any(|c| cesc_matches(c, window)),
        Cesc::Loop(cesc_chart::LoopBound::Exactly(n), body) => {
            let copies: Vec<&Cesc> = std::iter::repeat_n(body.as_ref(), *n as usize).collect();
            seq_matches_refs(&copies, window)
        }
        Cesc::Implication(a, b) => seq_matches_refs(&[a.as_ref(), b.as_ref()], window),
        Cesc::AsyncPar(_) => false,
    }
}

fn seq_matches(cs: &[Cesc], window: &[Valuation]) -> bool {
    let refs: Vec<&Cesc> = cs.iter().collect();
    seq_matches_refs(&refs, window)
}

/// Dynamic program over split points, memoised on `(component index,
/// window offset)`.
fn seq_matches_refs(cs: &[&Cesc], window: &[Valuation]) -> bool {
    fn go(
        cs: &[&Cesc],
        window: &[Valuation],
        ci: usize,
        wj: usize,
        memo: &mut std::collections::HashMap<(usize, usize), bool>,
    ) -> bool {
        if ci == cs.len() {
            return wj == window.len();
        }
        if let Some(&r) = memo.get(&(ci, wj)) {
            return r;
        }
        let mut ok = false;
        for split in wj..=window.len() {
            if cesc_matches(cs[ci], &window[wj..split]) && go(cs, window, ci + 1, split, memo) {
                ok = true;
                break;
            }
        }
        memo.insert((ci, wj), ok);
        ok
    }
    let mut memo = std::collections::HashMap::new();
    go(cs, window, 0, 0, &mut memo)
}

/// All window positions `(start, len)` at which the composition occurs
/// in `trace`. Compositions may match windows of several lengths (`alt`
/// of different-length branches), so each match reports its length.
pub fn cesc_match_positions(cesc: &Cesc, trace: &Trace) -> Vec<(usize, usize)> {
    let lengths = possible_lengths(cesc, trace.len());
    let mut out = Vec::new();
    for start in 0..trace.len() {
        for &len in &lengths {
            if start + len <= trace.len()
                && cesc_matches(cesc, &trace.as_slice()[start..start + len])
            {
                out.push((start, len));
            }
        }
    }
    out
}

fn possible_lengths(cesc: &Cesc, max: usize) -> Vec<usize> {
    match cesc_chart::component_tick_count(cesc) {
        Some(n) => {
            if n <= max {
                vec![n]
            } else {
                Vec::new()
            }
        }
        None => (1..=max).collect(),
    }
}

/// Builds a window exhibiting a composition (first `alt` branch, loops
/// expanded).
///
/// # Errors
///
/// Returns [`UnsatisfiableChart`] if any contained chart is
/// unsatisfiable. `async` compositions have no single-domain window;
/// they yield an empty window.
pub fn cesc_witness(cesc: &Cesc) -> Result<Vec<Valuation>, UnsatisfiableChart> {
    match cesc {
        Cesc::Basic(s) => witness_window(s),
        Cesc::Seq(cs) => {
            let mut out = Vec::new();
            for c in cs {
                out.extend(cesc_witness(c)?);
            }
            Ok(out)
        }
        Cesc::Par(cs) => {
            // overlay: union of component witnesses element-wise
            let parts: Result<Vec<Vec<Valuation>>, _> = cs.iter().map(cesc_witness).collect();
            let parts = parts?;
            let len = parts.iter().map(Vec::len).max().unwrap_or(0);
            let mut out = vec![Valuation::empty(); len];
            for p in &parts {
                for (i, v) in p.iter().enumerate() {
                    out[i] = out[i] | *v;
                }
            }
            Ok(out)
        }
        Cesc::Alt(cs) => cesc_witness(cs.first().expect("validated non-empty")),
        Cesc::Loop(cesc_chart::LoopBound::Exactly(n), body) => {
            let one = cesc_witness(body)?;
            let mut out = Vec::with_capacity(one.len() * *n as usize);
            for _ in 0..*n {
                out.extend(one.iter().copied());
            }
            Ok(out)
        }
        Cesc::Implication(a, b) => {
            let mut out = cesc_witness(a)?;
            out.extend(cesc_witness(b)?);
            Ok(out)
        }
        Cesc::AsyncPar(_) => Ok(Vec::new()),
    }
}

/// Whether a global run exhibits a multi-clock spec: every component
/// chart matches a window of its clock's projection, and for every
/// cross-domain arrow `ex → ey` the (global) time of `ex`'s occurrence
/// in the matched cause window is ≤ the time of `ey`'s occurrence in
/// the matched effect window.
///
/// `clocks` supplies the domains; each component chart's
/// [`Scesc::clock`] name must resolve in it (charts whose clock is
/// missing simply cannot match).
pub fn multiclock_contains(spec: &MultiClockSpec, clocks: &ClockSet, run: &GlobalRun) -> bool {
    let mut tick_times: Vec<Vec<u64>> = Vec::new();
    let mut candidates: Vec<Vec<usize>> = Vec::new();
    for chart in spec.charts() {
        let Some(clk) = clocks.lookup(chart.clock()) else {
            return false;
        };
        let proj = run.project(clk);
        let times: Vec<u64> = run
            .iter()
            .filter(|s| s.tick_of(clk).is_some())
            .map(|s| s.time)
            .collect();
        let pos = match_positions(chart, &proj);
        if pos.is_empty() {
            return false;
        }
        tick_times.push(times);
        candidates.push(pos);
    }

    fn search(
        spec: &MultiClockSpec,
        tick_times: &[Vec<u64>],
        candidates: &[Vec<usize>],
        chosen: &mut Vec<usize>,
        idx: usize,
    ) -> bool {
        if idx == candidates.len() {
            return cross_arrows_ok(spec, tick_times, chosen);
        }
        for &pos in &candidates[idx] {
            chosen.push(pos);
            if search(spec, tick_times, candidates, chosen, idx + 1) {
                return true;
            }
            chosen.pop();
        }
        false
    }

    fn cross_arrows_ok(spec: &MultiClockSpec, tick_times: &[Vec<u64>], chosen: &[usize]) -> bool {
        for arrow in spec.cross_arrows() {
            let Some(fc) = spec.chart_of_event(arrow.from) else {
                return false;
            };
            let Some(tc) = spec.chart_of_event(arrow.to) else {
                return false;
            };
            let from_tick_in_chart = arrow
                .from_tick
                .unwrap_or_else(|| spec.charts()[fc].ticks_of_event(arrow.from)[0]);
            let to_tick_in_chart = arrow.to_tick.unwrap_or_else(|| {
                *spec.charts()[tc]
                    .ticks_of_event(arrow.to)
                    .last()
                    .expect("validated occurrence")
            });
            let from_global = tick_times[fc][chosen[fc] + from_tick_in_chart];
            let to_global = tick_times[tc][chosen[tc] + to_tick_in_chart];
            if from_global > to_global {
                return false;
            }
        }
        true
    }

    let mut chosen = Vec::new();
    search(spec, &tick_times, &candidates, &mut chosen, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_chart::parse_document;
    use cesc_trace::{ClockDomain, TraceGen};

    fn fig6_doc() -> cesc_chart::Document {
        parse_document(
            r#"
            scesc simple_read on clk {
                instances { Master, Slave }
                events { MCmd_rd, Addr, SCmd_accept, SResp, SData }
                tick { Master: MCmd_rd, Addr; Slave: SCmd_accept }
                tick { Slave: SResp, SData }
                cause MCmd_rd -> SResp;
            }
        "#,
        )
        .unwrap()
    }

    #[test]
    fn witness_matches_its_own_chart() {
        let doc = fig6_doc();
        let chart = doc.chart("simple_read").unwrap();
        let w = witness_window(chart).unwrap();
        assert_eq!(w.len(), 2);
        assert!(window_matches(chart, &w));
    }

    #[test]
    fn wrong_length_windows_never_match() {
        let doc = fig6_doc();
        let chart = doc.chart("simple_read").unwrap();
        let w = witness_window(chart).unwrap();
        assert!(!window_matches(chart, &w[..1]));
        let mut long = w.clone();
        long.push(Valuation::empty());
        assert!(!window_matches(chart, &long));
    }

    #[test]
    fn match_positions_finds_planted_windows() {
        let doc = fig6_doc();
        let chart = doc.chart("simple_read").unwrap();
        let w = witness_window(chart).unwrap();
        let mut g = TraceGen::new(11, &doc.alphabet);
        let mut elems: Vec<Valuation> = g.noise(60, 0.0).iter().collect();
        elems[10] = w[0];
        elems[11] = w[1];
        elems[40] = w[0];
        elems[41] = w[1];
        let t = Trace::from_elements(elems);
        assert_eq!(match_positions(chart, &t), vec![10, 40]);
        assert!(contains_scenario(chart, &t));
    }

    #[test]
    fn unsatisfiable_chart_reports_tick() {
        let doc = parse_document(
            "scesc bad on clk { instances { A } events { e } tick { A: e, !e } }",
        )
        .unwrap();
        let err = witness_window(doc.chart("bad").unwrap()).unwrap_err();
        assert_eq!(err.tick, 0);
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn seq_and_loop_matching() {
        let doc = parse_document(
            r#"
            scesc a on clk { instances { M } events { x } tick { M: x } }
            scesc b on clk { instances { M } events { y } tick { M: y } }
            cesc ab { seq(a, b) }
            cesc aa3 { loop(3, a) }
        "#,
        )
        .unwrap();
        let ab = doc.composition("ab").unwrap();
        let x = doc.alphabet.lookup("x").unwrap();
        let y = doc.alphabet.lookup("y").unwrap();
        let w = [Valuation::of([x]), Valuation::of([y])];
        assert!(cesc_matches(ab, &w));
        assert!(!cesc_matches(ab, &[w[1], w[0]]));

        let aa3 = doc.composition("aa3").unwrap();
        let w3 = [Valuation::of([x]); 3];
        assert!(cesc_matches(aa3, &w3));
        assert!(!cesc_matches(aa3, &w3[..2]));
    }

    #[test]
    fn alt_and_par_matching() {
        let doc = parse_document(
            r#"
            scesc a on clk { instances { M } events { x } tick { M: x } }
            scesc b on clk { instances { M } events { y } tick { M: y } }
            cesc any { alt(a, b) }
            cesc both { par(a, b) }
        "#,
        )
        .unwrap();
        let x = doc.alphabet.lookup("x").unwrap();
        let y = doc.alphabet.lookup("y").unwrap();
        let any = doc.composition("any").unwrap();
        assert!(cesc_matches(any, &[Valuation::of([x])]));
        assert!(cesc_matches(any, &[Valuation::of([y])]));
        assert!(!cesc_matches(any, &[Valuation::empty()]));
        let both = doc.composition("both").unwrap();
        assert!(cesc_matches(both, &[Valuation::of([x, y])]));
        assert!(!cesc_matches(both, &[Valuation::of([x])]));
    }

    #[test]
    fn implication_detects_full_scenario() {
        let doc = parse_document(
            r#"
            scesc req on clk { instances { M } events { r } tick { M: r } }
            scesc rsp on clk { instances { M } events { s } tick { M: s } }
            cesc chk { implies(req, rsp) }
        "#,
        )
        .unwrap();
        let r = doc.alphabet.lookup("r").unwrap();
        let s = doc.alphabet.lookup("s").unwrap();
        let chk = doc.composition("chk").unwrap();
        assert!(cesc_matches(chk, &[Valuation::of([r]), Valuation::of([s])]));
        assert!(!cesc_matches(chk, &[Valuation::of([r]), Valuation::empty()]));
    }

    #[test]
    fn cesc_match_positions_report_lengths() {
        let doc = parse_document(
            r#"
            scesc a on clk { instances { M } events { x } tick { M: x } }
            cesc a2 { seq(a, a) }
        "#,
        )
        .unwrap();
        let x = doc.alphabet.lookup("x").unwrap();
        let a2 = doc.composition("a2").unwrap();
        let t = Trace::from_elements([
            Valuation::of([x]),
            Valuation::of([x]),
            Valuation::empty(),
            Valuation::of([x]),
        ]);
        let pos = cesc_match_positions(a2, &t);
        assert_eq!(pos, vec![(0, 2)]);
    }

    #[test]
    fn cesc_witness_respects_structure() {
        let doc = parse_document(
            r#"
            scesc a on clk { instances { M } events { x } tick { M: x } }
            scesc b on clk { instances { M } events { y } tick { M: y } }
            cesc w { seq(a, loop(2, b)) }
        "#,
        )
        .unwrap();
        let w = doc.composition("w").unwrap();
        let window = cesc_witness(w).unwrap();
        assert_eq!(window.len(), 3);
        assert!(cesc_matches(w, &window));
    }

    #[test]
    fn multiclock_ordering_enforced() {
        let doc = parse_document(
            r#"
            scesc m1 on clk1 { instances { A } events { req } tick { A: req } }
            scesc m2 on clk2 { instances { B } events { rsp } tick { B: rsp } }
            multiclock rw { charts { m1, m2 } cause req -> rsp; }
        "#,
        )
        .unwrap();
        let spec = doc.multiclock_spec("rw").unwrap();
        let req = doc.alphabet.lookup("req").unwrap();
        let rsp = doc.alphabet.lookup("rsp").unwrap();

        let mut clocks = ClockSet::new();
        let c1 = clocks.add(ClockDomain::new("clk1", 2, 0));
        let c2 = clocks.add(ClockDomain::new("clk2", 3, 0));

        // req at clk1-tick1 (t=2), rsp at clk2-tick1 (t=3): causal order ok
        let t1 = Trace::from_elements([Valuation::empty(), Valuation::of([req])]);
        let t2 = Trace::from_elements([Valuation::empty(), Valuation::of([rsp])]);
        let run = GlobalRun::interleave(&clocks, &[(c1, t1), (c2, t2)]).unwrap();
        assert!(multiclock_contains(spec, &clocks, &run));

        // rsp at t=0, req at t=4 → causal order violated
        let t1 = Trace::from_elements([
            Valuation::empty(),
            Valuation::empty(),
            Valuation::of([req]),
        ]);
        let t2 = Trace::from_elements([Valuation::of([rsp]), Valuation::empty()]);
        let run = GlobalRun::interleave(&clocks, &[(c1, t1), (c2, t2)]).unwrap();
        assert!(!multiclock_contains(spec, &clocks, &run));
    }

    #[test]
    fn multiclock_missing_scenario_fails() {
        let doc = parse_document(
            r#"
            scesc m1 on clk1 { instances { A } events { req } tick { A: req } }
            scesc m2 on clk2 { instances { B } events { rsp } tick { B: rsp } }
            multiclock rw { charts { m1, m2 } cause req -> rsp; }
        "#,
        )
        .unwrap();
        let spec = doc.multiclock_spec("rw").unwrap();
        let req = doc.alphabet.lookup("req").unwrap();
        let mut clocks = ClockSet::new();
        let c1 = clocks.add(ClockDomain::new("clk1", 2, 0));
        let c2 = clocks.add(ClockDomain::new("clk2", 3, 0));
        let t1 = Trace::from_elements([Valuation::of([req])]);
        let t2 = Trace::from_elements([Valuation::empty()]); // rsp never happens
        let run = GlobalRun::interleave(&clocks, &[(c1, t1), (c2, t2)]).unwrap();
        assert!(!multiclock_contains(spec, &clocks, &run));
    }

    #[test]
    fn async_composition_has_no_single_domain_match() {
        let doc = parse_document(
            r#"
            scesc m1 on clk1 { instances { A } events { req } tick { A: req } }
            scesc m2 on clk2 { instances { B } events { rsp } tick { B: rsp } }
            cesc multi { async(m1, m2) }
        "#,
        )
        .unwrap();
        let multi = doc.composition("multi").unwrap();
        let req = doc.alphabet.lookup("req").unwrap();
        assert!(!cesc_matches(multi, &[Valuation::of([req])]));
        assert_eq!(cesc_witness(multi).unwrap(), Vec::<Valuation>::new());
    }
}
