//! Random and structured trace generation.
//!
//! Benchmarks and property tests need three kinds of traffic:
//! *background noise* (random valuations with a tunable activity
//! density), *planted scenarios* (a specific window embedded in noise,
//! mirroring Fig 3's picture of a run containing the chart's interval),
//! and *repetitions* (back-to-back transactions).

use cesc_expr::{Alphabet, SymbolId, Valuation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trace::Trace;

/// Deterministic random-trace generator.
///
/// # Examples
///
/// ```
/// use cesc_expr::Alphabet;
/// use cesc_trace::TraceGen;
/// let mut ab = Alphabet::new();
/// ab.event("a");
/// ab.event("b");
/// let mut g = TraceGen::new(42, &ab);
/// let noise = g.noise(100, 0.3);
/// assert_eq!(noise.len(), 100);
/// ```
#[derive(Debug)]
pub struct TraceGen {
    rng: StdRng,
    symbols: Vec<SymbolId>,
}

impl TraceGen {
    /// Creates a generator over all symbols of `alphabet`, seeded for
    /// reproducibility.
    pub fn new(seed: u64, alphabet: &Alphabet) -> Self {
        TraceGen {
            rng: StdRng::seed_from_u64(seed),
            symbols: alphabet.iter().map(|(id, _)| id).collect(),
        }
    }

    /// Creates a generator restricted to the given symbols.
    pub fn with_symbols(seed: u64, symbols: impl IntoIterator<Item = SymbolId>) -> Self {
        TraceGen {
            rng: StdRng::seed_from_u64(seed),
            symbols: symbols.into_iter().collect(),
        }
    }

    /// One random valuation; each symbol is true with probability
    /// `density`.
    pub fn valuation(&mut self, density: f64) -> Valuation {
        let mut v = Valuation::empty();
        for &s in &self.symbols {
            if self.rng.random_bool(density.clamp(0.0, 1.0)) {
                v.insert(s);
            }
        }
        v
    }

    /// `len` ticks of background noise with per-symbol activity
    /// `density`.
    pub fn noise(&mut self, len: usize, density: f64) -> Trace {
        (0..len).map(|_| self.valuation(density)).collect()
    }

    /// Noise of length `len` with `window` planted at tick `at`
    /// (overwriting the noise there).
    ///
    /// # Panics
    ///
    /// Panics if `at + window.len() > len`.
    pub fn noise_with_window(
        &mut self,
        len: usize,
        density: f64,
        at: usize,
        window: &[Valuation],
    ) -> Trace {
        assert!(
            at + window.len() <= len,
            "window [{at}, {}) exceeds trace length {len}",
            at + window.len()
        );
        let mut t = self.noise(len, density);
        let mut out = Trace::with_capacity(len);
        for (i, v) in t.iter().enumerate() {
            if i >= at && i < at + window.len() {
                out.push(window[i - at]);
            } else {
                out.push(v);
            }
        }
        t = out;
        t
    }

    /// Concatenates `count` copies of `pattern`, separated by `gap` idle
    /// (empty) ticks — back-to-back transaction traffic.
    pub fn repeat(&mut self, pattern: &[Valuation], count: usize, gap: usize) -> Trace {
        let mut t = Trace::with_capacity(count * (pattern.len() + gap));
        for _ in 0..count {
            t.extend(pattern.iter().copied());
            t.extend(std::iter::repeat_n(Valuation::empty(), gap));
        }
        t
    }

    /// A uniformly random position for a window of `window_len` inside a
    /// trace of `trace_len` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `window_len > trace_len`.
    pub fn window_position(&mut self, trace_len: usize, window_len: usize) -> usize {
        assert!(window_len <= trace_len);
        if window_len == trace_len {
            0
        } else {
            self.rng.random_range(0..=trace_len - window_len)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alphabet() -> Alphabet {
        let mut ab = Alphabet::new();
        ab.event("a");
        ab.event("b");
        ab.prop("p");
        ab
    }

    #[test]
    fn noise_is_reproducible() {
        let ab = alphabet();
        let t1 = TraceGen::new(7, &ab).noise(50, 0.5);
        let t2 = TraceGen::new(7, &ab).noise(50, 0.5);
        assert_eq!(t1, t2);
        let t3 = TraceGen::new(8, &ab).noise(50, 0.5);
        assert_ne!(t1, t3);
    }

    #[test]
    fn density_extremes() {
        let ab = alphabet();
        let mut g = TraceGen::new(1, &ab);
        let empty = g.noise(20, 0.0);
        assert!(empty.iter().all(|v| v.is_empty()));
        let full = g.noise(20, 1.0);
        assert!(full.iter().all(|v| v.count() == 3));
    }

    #[test]
    fn planted_window_survives() {
        let ab = alphabet();
        let a = ab.lookup("a").unwrap();
        let b = ab.lookup("b").unwrap();
        let mut g = TraceGen::new(3, &ab);
        let window = [Valuation::of([a]), Valuation::of([b])];
        let t = g.noise_with_window(10, 0.9, 4, &window);
        assert_eq!(t.len(), 10);
        assert_eq!(t[4], window[0]);
        assert_eq!(t[5], window[1]);
    }

    #[test]
    #[should_panic(expected = "exceeds trace length")]
    fn window_out_of_range_panics() {
        let ab = alphabet();
        let mut g = TraceGen::new(3, &ab);
        g.noise_with_window(4, 0.1, 3, &[Valuation::empty(), Valuation::empty()]);
    }

    #[test]
    fn repeat_layout() {
        let ab = alphabet();
        let a = ab.lookup("a").unwrap();
        let mut g = TraceGen::new(3, &ab);
        let t = g.repeat(&[Valuation::of([a])], 3, 2);
        assert_eq!(t.len(), 9);
        assert_eq!(t.ticks_where(a), vec![0, 3, 6]);
    }

    #[test]
    fn window_position_in_bounds() {
        let ab = alphabet();
        let mut g = TraceGen::new(9, &ab);
        for _ in 0..100 {
            let p = g.window_position(50, 7);
            assert!(p + 7 <= 50);
        }
        assert_eq!(g.window_position(5, 5), 0);
    }
}
