//! Clock domains and tick schedules.
//!
//! CESC targets GALS (Globally Asynchronous Locally Synchronous) SoCs:
//! each chart region is synchronous to one clock, and a multi-clock CESC's
//! semantics is defined over a *global* clock "obtained as a union of
//! clock ticks contributed by all the component clocks" (paper §3). A
//! [`ClockDomain`] here is a periodic clock with a phase offset in global
//! time units; [`ClockSet`] computes the merged tick schedule.

use std::fmt;

/// Identifier of a clock domain within a [`ClockSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClockId(pub(crate) u32);

impl ClockId {
    /// Zero-based index of the clock within its [`ClockSet`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `ClockId` from a raw index (for table-driven code).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        ClockId(index as u32)
    }
}

impl fmt::Display for ClockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clk{}", self.0)
    }
}

/// A periodic clock: ticks at global times `phase, phase+period,
/// phase+2·period, …`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClockDomain {
    name: String,
    period: u64,
    phase: u64,
}

impl ClockDomain {
    /// Creates a clock named `name` with the given period (> 0) and
    /// phase offset, both in abstract global time units.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(name: &str, period: u64, phase: u64) -> Self {
        assert!(period > 0, "clock period must be positive");
        ClockDomain {
            name: name.to_owned(),
            period,
            phase,
        }
    }

    /// The clock's name (e.g. `clk1` in the paper's Figure 2).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tick period in global time units.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Phase offset of the first tick.
    pub fn phase(&self) -> u64 {
        self.phase
    }

    /// Whether this clock ticks at global time `t`.
    #[inline]
    pub fn ticks_at(&self, t: u64) -> bool {
        t >= self.phase && (t - self.phase).is_multiple_of(self.period)
    }

    /// The global time of this clock's `n`-th tick (zero-based).
    #[inline]
    pub fn tick_time(&self, n: u64) -> u64 {
        self.phase + n * self.period
    }
}

impl fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (period {}, phase {})", self.name, self.period, self.phase)
    }
}

/// An ordered collection of clock domains forming a GALS system.
///
/// # Examples
///
/// ```
/// use cesc_trace::{ClockDomain, ClockSet};
/// let mut clocks = ClockSet::new();
/// let clk1 = clocks.add(ClockDomain::new("clk1", 3, 0));
/// let clk2 = clocks.add(ClockDomain::new("clk2", 5, 1));
/// // global instants where at least one clock ticks:
/// let sched: Vec<_> = clocks.schedule().take(4).collect();
/// assert_eq!(sched[0].time, 0);
/// assert!(sched[0].ticking.contains(&clk1));
/// assert_eq!(sched[1].time, 1);
/// assert!(sched[1].ticking.contains(&clk2));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClockSet {
    domains: Vec<ClockDomain>,
}

/// One instant of the merged (global) tick schedule: the global time and
/// the clocks that tick there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalInstant {
    /// Global time of the instant.
    pub time: u64,
    /// Clocks ticking at this instant (ascending id order).
    pub ticking: Vec<ClockId>,
}

impl ClockSet {
    /// Creates an empty clock set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set holding one clock of period 1 named `clk` — the
    /// degenerate single-clock case used by SCESCs.
    pub fn single() -> (Self, ClockId) {
        let mut s = Self::new();
        let id = s.add(ClockDomain::new("clk", 1, 0));
        (s, id)
    }

    /// Adds a domain, returning its id.
    pub fn add(&mut self, domain: ClockDomain) -> ClockId {
        let id = ClockId(self.domains.len() as u32);
        self.domains.push(domain);
        id
    }

    /// The domain with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this set.
    pub fn domain(&self, id: ClockId) -> &ClockDomain {
        &self.domains[id.index()]
    }

    /// Looks up a clock by name.
    pub fn lookup(&self, name: &str) -> Option<ClockId> {
        self.domains
            .iter()
            .position(|d| d.name() == name)
            .map(|i| ClockId(i as u32))
    }

    /// Number of domains.
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Iterates over `(id, domain)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClockId, &ClockDomain)> {
        self.domains
            .iter()
            .enumerate()
            .map(|(i, d)| (ClockId(i as u32), d))
    }

    /// The clocks ticking at global time `t` (ascending id order).
    pub fn ticking_at(&self, t: u64) -> Vec<ClockId> {
        self.iter()
            .filter(|(_, d)| d.ticks_at(t))
            .map(|(id, _)| id)
            .collect()
    }

    /// Infinite iterator over the merged tick schedule — the paper's
    /// "global clock obtained as a union of clock ticks".
    ///
    /// Instants where no clock ticks are skipped.
    pub fn schedule(&self) -> Schedule<'_> {
        Schedule {
            clocks: self,
            next_tick: self.domains.iter().map(|d| d.phase()).collect(),
        }
    }
}

/// Iterator over the merged global tick schedule, produced by
/// [`ClockSet::schedule`].
#[derive(Debug, Clone)]
pub struct Schedule<'a> {
    clocks: &'a ClockSet,
    next_tick: Vec<u64>,
}

impl Iterator for Schedule<'_> {
    type Item = GlobalInstant;

    fn next(&mut self) -> Option<GlobalInstant> {
        let t = *self.next_tick.iter().min()?;
        let mut ticking = Vec::new();
        for (i, nt) in self.next_tick.iter_mut().enumerate() {
            if *nt == t {
                ticking.push(ClockId(i as u32));
                *nt += self.clocks.domains[i].period();
            }
        }
        Some(GlobalInstant { time: t, ticking })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_at_respects_period_and_phase() {
        let c = ClockDomain::new("c", 4, 2);
        assert!(!c.ticks_at(0));
        assert!(!c.ticks_at(1));
        assert!(c.ticks_at(2));
        assert!(!c.ticks_at(3));
        assert!(c.ticks_at(6));
        assert_eq!(c.tick_time(0), 2);
        assert_eq!(c.tick_time(3), 14);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        ClockDomain::new("bad", 0, 0);
    }

    #[test]
    fn schedule_merges_union_of_ticks() {
        let mut cs = ClockSet::new();
        let a = cs.add(ClockDomain::new("a", 2, 0));
        let b = cs.add(ClockDomain::new("b", 3, 0));
        let sched: Vec<_> = cs.schedule().take(5).collect();
        // times: 0 (a,b), 2 (a), 3 (b), 4 (a), 6 (a,b)
        assert_eq!(sched[0].time, 0);
        assert_eq!(sched[0].ticking, vec![a, b]);
        assert_eq!(sched[1].time, 2);
        assert_eq!(sched[1].ticking, vec![a]);
        assert_eq!(sched[2].time, 3);
        assert_eq!(sched[2].ticking, vec![b]);
        assert_eq!(sched[3].time, 4);
        assert_eq!(sched[4].time, 6);
        assert_eq!(sched[4].ticking, vec![a, b]);
    }

    #[test]
    fn coprime_periods_interleave() {
        let mut cs = ClockSet::new();
        cs.add(ClockDomain::new("clk1", 3, 0));
        cs.add(ClockDomain::new("clk2", 5, 1));
        let times: Vec<u64> = cs.schedule().take(7).map(|g| g.time).collect();
        assert_eq!(times, vec![0, 1, 3, 6, 9, 11, 12]);
    }

    #[test]
    fn single_clock_set() {
        let (cs, id) = ClockSet::single();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs.domain(id).period(), 1);
        let times: Vec<u64> = cs.schedule().take(3).map(|g| g.time).collect();
        assert_eq!(times, vec![0, 1, 2]);
    }

    #[test]
    fn lookup_by_name() {
        let mut cs = ClockSet::new();
        let c = cs.add(ClockDomain::new("core", 2, 0));
        assert_eq!(cs.lookup("core"), Some(c));
        assert_eq!(cs.lookup("nope"), None);
        assert_eq!(cs.ticking_at(0), vec![c]);
        assert_eq!(cs.ticking_at(1), Vec::<ClockId>::new());
    }

    #[test]
    fn display_impls() {
        assert_eq!(ClockId(2).to_string(), "clk2");
        let c = ClockDomain::new("bus", 7, 3);
        assert_eq!(c.to_string(), "bus (period 7, phase 3)");
    }
}
