//! VCD (Value Change Dump, IEEE 1364) import/export for clocked traces.
//!
//! The paper's monitors plug into a simulation environment (Fig 4); in
//! practice simulator output reaches offline checkers as VCD waveforms.
//! [`write_vcd`] dumps a [`Trace`] (events/props as 1-bit wires plus an
//! explicit clock), and [`read_vcd`] samples a VCD back into a trace at
//! each rising clock edge — so monitors synthesized by `cesc-core` can
//! check waveforms from any HDL simulator.
//!
//! Reading is *streaming*: both [`VcdStream`] (single clock, yields
//! [`Valuation`] chunks) and [`GlobalVcdStream`] (many clocks, yields
//! [`GlobalStep`] chunks) pull lines from any [`io::BufRead`], so a
//! multi-GB dump is checked in constant memory — neither the VCD text
//! nor the decoded trace is ever resident in full. The `&str`
//! constructors remain as thin wrappers over the byte-slice reader.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, BufRead};

use cesc_expr::{Alphabet, SymbolId, Valuation};

use crate::clock::{ClockId, ClockSet};
use crate::global::{GlobalRun, GlobalStep};
use crate::trace::Trace;

/// Options for [`write_vcd`] / [`write_vcd_global`].
#[derive(Debug, Clone)]
pub struct VcdWriteOptions {
    /// Name of the generated clock signal ([`write_vcd`] only;
    /// [`write_vcd_global`] names clocks after the [`ClockSet`]).
    pub clock_name: String,
    /// Half-period of the clock in timescale units (full period is
    /// `2 * half_period`).
    pub half_period: u64,
    /// Timescale declaration, e.g. `"1ns"`.
    pub timescale: String,
    /// Module scope name in the VCD hierarchy.
    pub scope: String,
}

impl Default for VcdWriteOptions {
    fn default() -> Self {
        VcdWriteOptions {
            clock_name: "clk".to_owned(),
            half_period: 5,
            timescale: "1ns".to_owned(),
            scope: "cesc_monitor".to_owned(),
        }
    }
}

fn id_code(mut n: usize) -> String {
    // printable VCD identifier codes: '!'..'~'
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

/// Serialises `trace` as VCD text. Tick `k` of the trace is sampled at
/// the rising edge at time `2k * half_period`.
///
/// # Examples
///
/// ```
/// use cesc_expr::{Alphabet, Valuation};
/// use cesc_trace::{write_vcd, VcdWriteOptions, Trace};
/// let mut ab = Alphabet::new();
/// let req = ab.event("req");
/// let t = Trace::from_elements([Valuation::of([req]), Valuation::empty()]);
/// let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
/// assert!(vcd.contains("$var wire 1"));
/// assert!(vcd.contains("req"));
/// ```
pub fn write_vcd(trace: &Trace, alphabet: &Alphabet, opts: &VcdWriteOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date\n    cesc generated\n$end");
    let _ = writeln!(out, "$version\n    cesc-trace VCD writer\n$end");
    let _ = writeln!(out, "$timescale {} $end", opts.timescale);
    let _ = writeln!(out, "$scope module {} $end", opts.scope);
    let clk_code = id_code(0);
    let _ = writeln!(out, "$var wire 1 {clk_code} {} $end", opts.clock_name);
    let codes: Vec<String> = alphabet
        .iter()
        .map(|(id, sym)| {
            let code = id_code(id.index() + 1);
            let _ = writeln!(out, "$var wire 1 {code} {} $end", sym.name());
            code
        })
        .collect();
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // initial values
    let _ = writeln!(out, "#0");
    let _ = writeln!(out, "$dumpvars");
    let first = trace.get(0).unwrap_or_else(Valuation::empty);
    // no ticks → the clock never rises and nothing is sampled back
    let clk0 = if trace.is_empty() { '0' } else { '1' };
    let _ = writeln!(out, "{clk0}{clk_code}");
    for (id, _) in alphabet.iter() {
        let bit = if first.contains(id) { '1' } else { '0' };
        let _ = writeln!(out, "{bit}{}", codes[id.index()]);
    }
    let _ = writeln!(out, "$end");

    let mut prev = first;
    for k in 0..trace.len() {
        let rise = 2 * k as u64 * opts.half_period;
        let fall = rise + opts.half_period;
        if k > 0 {
            let v = trace[k];
            let _ = writeln!(out, "#{rise}");
            for (id, _) in alphabet.iter() {
                let now = v.contains(id);
                if now != prev.contains(id) {
                    let bit = if now { '1' } else { '0' };
                    let _ = writeln!(out, "{bit}{}", codes[id.index()]);
                }
            }
            let _ = writeln!(out, "1{clk_code}");
            prev = v;
        }
        let _ = writeln!(out, "#{fall}");
        let _ = writeln!(out, "0{clk_code}");
    }
    out
}

/// Serialises a multi-clock [`GlobalRun`] as VCD text: one 1-bit wire
/// per clock domain of `clocks` (named after the domains) plus one per
/// alphabet symbol. The tick of domain `c` at global time `t` becomes
/// a rising edge of `c`'s wire at VCD time `2t * half_period`, with
/// that domain's *owned* symbols (mask `owners[c]`) driven to the
/// tick's valuation just before the edge.
///
/// Owner masks say which symbols each domain drives; they should be
/// pairwise disjoint (when two domains tick the same instant, the
/// later-listed domain wins on shared symbols). Symbols owned by no
/// domain stay constant `0`.
///
/// Round-trip: [`GlobalVcdStream`] over the produced text with the
/// domains' names (and the same masks) recovers exactly the run's
/// ticks, at VCD times `2t * half_period`.
///
/// # Panics
///
/// Panics if `owners.len() != clocks.len()` or `half_period == 0` —
/// both are programming errors in the caller, not data errors.
pub fn write_vcd_global_to<W: io::Write>(
    w: &mut W,
    run: &GlobalRun,
    clocks: &ClockSet,
    alphabet: &Alphabet,
    owners: &[Valuation],
    opts: &VcdWriteOptions,
) -> io::Result<()> {
    assert_eq!(
        owners.len(),
        clocks.len(),
        "one owner mask per clock domain"
    );
    assert!(opts.half_period > 0, "half_period must be positive");
    writeln!(w, "$date\n    cesc generated\n$end")?;
    writeln!(w, "$version\n    cesc-trace VCD writer (global)\n$end")?;
    writeln!(w, "$timescale {} $end", opts.timescale)?;
    writeln!(w, "$scope module {} $end", opts.scope)?;
    let clock_codes: Vec<String> = clocks.iter().map(|(id, _)| id_code(id.index())).collect();
    for (id, d) in clocks.iter() {
        writeln!(w, "$var wire 1 {} {} $end", clock_codes[id.index()], d.name())?;
    }
    let sym_codes: Vec<String> = alphabet
        .iter()
        .map(|(id, _)| id_code(clocks.len() + id.index()))
        .collect();
    for (id, sym) in alphabet.iter() {
        writeln!(w, "$var wire 1 {} {} $end", sym_codes[id.index()], sym.name())?;
    }
    writeln!(w, "$upscope $end")?;
    writeln!(w, "$enddefinitions $end")?;

    writeln!(w, "#0")?;
    writeln!(w, "$dumpvars")?;
    for code in &clock_codes {
        writeln!(w, "0{code}")?;
    }
    for code in &sym_codes {
        writeln!(w, "0{code}")?;
    }
    writeln!(w, "$end")?;

    let mut prev_bits = 0u128;
    for step in run.iter() {
        let rise = 2 * step.time * opts.half_period;
        writeln!(w, "#{rise}")?;
        for &(clock, v) in &step.ticks {
            let own = owners[clock.index()].bits();
            let desired = v.bits() & own;
            let mut diff = (prev_bits ^ desired) & own;
            while diff != 0 {
                let i = diff.trailing_zeros() as usize;
                let bit = if desired >> i & 1 == 1 { '1' } else { '0' };
                writeln!(w, "{bit}{}", sym_codes[i])?;
                diff &= diff - 1;
            }
            prev_bits = (prev_bits & !own) | desired;
            writeln!(w, "1{}", clock_codes[clock.index()])?;
        }
        writeln!(w, "#{}", rise + opts.half_period)?;
        for &(clock, _) in &step.ticks {
            writeln!(w, "0{}", clock_codes[clock.index()])?;
        }
    }
    Ok(())
}

/// [`write_vcd_global_to`] into a `String` (convenience for tests and
/// small runs; prefer the writer form for bulk dumps).
pub fn write_vcd_global(
    run: &GlobalRun,
    clocks: &ClockSet,
    alphabet: &Alphabet,
    owners: &[Valuation],
    opts: &VcdWriteOptions,
) -> String {
    let mut out = Vec::new();
    write_vcd_global_to(&mut out, run, clocks, alphabet, owners, opts)
        .expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("VCD output is ASCII")
}

/// Error from the VCD readers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcdReadError {
    /// A `$var` declaration, timestamp or value change could not be
    /// parsed.
    Malformed {
        /// Line number (1-based) of the offending input.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A requested clock signal is not declared in the VCD.
    MissingClock {
        /// The clock name that was looked for.
        name: String,
    },
    /// The underlying reader failed (I/O error or non-UTF-8 input).
    Io {
        /// The I/O error's message.
        message: String,
    },
}

impl std::fmt::Display for VcdReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VcdReadError::Malformed { line, message } => {
                write!(f, "malformed VCD at line {line}: {message}")
            }
            VcdReadError::MissingClock { name } => {
                write!(f, "clock signal `{name}` not found in VCD")
            }
            VcdReadError::Io { message } => write!(f, "VCD read failed: {message}"),
        }
    }
}

impl std::error::Error for VcdReadError {}

/// Reads one line (without trailing newline handling — callers trim)
/// into `buf`, bumping the 1-based line counter. `Ok(false)` is EOF.
fn read_line<R: BufRead>(
    reader: &mut R,
    buf: &mut String,
    lineno: &mut usize,
) -> Result<bool, VcdReadError> {
    buf.clear();
    match reader.read_line(buf) {
        Ok(0) => Ok(false),
        Ok(_) => {
            *lineno += 1;
            Ok(true)
        }
        Err(e) => Err(VcdReadError::Io {
            message: e.to_string(),
        }),
    }
}

/// Parses the text after `#` as a timestamp.
fn parse_timestamp(rest: &str, lineno: usize) -> Result<u64, VcdReadError> {
    rest.trim()
        .parse::<u64>()
        .map_err(|_| VcdReadError::Malformed {
            line: lineno,
            message: format!("bad timestamp `#{}`", rest.trim()),
        })
}

/// One classified line of the VCD value-change section — the parsing
/// both streaming readers share, so their accepted syntax cannot
/// drift. (The sampling loops themselves stay separate: the
/// single-clock reader emits plain [`Valuation`]s with no per-step
/// allocation, which a shared `GlobalStep`-shaped engine would lose.)
#[derive(Clone, Copy)]
enum BodyLine<'a> {
    /// Blank line or `$...` directive — no effect on sampling.
    Skip,
    /// `#t` timestamp marker.
    Time(u64),
    /// Scalar or vector value change.
    Change(bool, &'a str),
}

fn classify_body_line(line: &str, lineno: usize) -> Result<BodyLine<'_>, VcdReadError> {
    if line.is_empty() || line.starts_with('$') {
        return Ok(BodyLine::Skip); // directives ($dumpvars bodies are value changes)
    }
    if let Some(rest) = line.strip_prefix('#') {
        return parse_timestamp(rest, lineno).map(BodyLine::Time);
    }
    parse_change(line, lineno).map(|(value, code)| BodyLine::Change(value, code))
}

/// Applies a parsed timestamp: `Ok(true)` means time advanced (pending
/// samples must be flushed), `Ok(false)` means the same instant
/// continues; a decreasing timestamp is malformed input.
fn advance_time(cur_time: &mut u64, t: u64, lineno: usize) -> Result<bool, VcdReadError> {
    if t < *cur_time {
        return Err(VcdReadError::Malformed {
            line: lineno,
            message: format!("timestamp #{t} goes backwards (after #{cur_time})"),
        });
    }
    let advanced = t > *cur_time;
    *cur_time = t;
    Ok(advanced)
}

/// Parsed `$var` section: identifier codes of the requested clocks and
/// of every alphabet symbol present in the dump.
struct VcdHeader {
    code_to_symbol: HashMap<String, SymbolId>,
    /// Per requested clock (argument order): its identifier code.
    clock_codes: Vec<Option<String>>,
}

/// Reads `$var` declarations up to `$enddefinitions`.
///
/// A declared name matches a clock or symbol either exactly or with a
/// vector range stripped — both `data[7:0]` and the separate-token
/// form `$var wire 8 ! data [7:0] $end` resolve to `data`.
fn parse_header<R: BufRead>(
    reader: &mut R,
    buf: &mut String,
    lineno: &mut usize,
    alphabet: &Alphabet,
    clock_names: &[&str],
) -> Result<VcdHeader, VcdReadError> {
    let mut header = VcdHeader {
        code_to_symbol: HashMap::new(),
        clock_codes: vec![None; clock_names.len()],
    };
    while read_line(reader, buf, lineno)? {
        let toks: Vec<&str> = buf.split_whitespace().collect();
        if toks.first() == Some(&"$var") {
            // $var var_type size code reference [range] $end
            if toks.len() < 5 || toks[3] == "$end" || toks[4] == "$end" {
                return Err(VcdReadError::Malformed {
                    line: *lineno,
                    message: "short $var declaration".to_owned(),
                });
            }
            let code = toks[3];
            let name = toks[4];
            let base = match name.find('[') {
                Some(i) => &name[..i],
                None => name,
            };
            let mut is_clock = false;
            for (ci, &cn) in clock_names.iter().enumerate() {
                if cn == name || cn == base {
                    is_clock = true;
                    if header.clock_codes[ci].is_none() {
                        header.clock_codes[ci] = Some(code.to_owned());
                    }
                }
            }
            if !is_clock {
                if let Some(id) = alphabet.lookup(name).or_else(|| alphabet.lookup(base)) {
                    header.code_to_symbol.insert(code.to_owned(), id);
                }
            }
        } else if toks.first() == Some(&"$enddefinitions") {
            break;
        }
    }
    Ok(header)
}

/// Streaming VCD reader: parses the header eagerly, then yields
/// sampled valuations in caller-sized chunks instead of materialising
/// the whole trace.
///
/// This is the input side of the batched monitoring path. The reader
/// pulls lines from any [`io::BufRead`] — a `BufReader<File>` for
/// dumps on disk, a byte slice for in-memory text — so resident memory
/// is one line plus one decoded chunk, regardless of dump size.
/// [`read_vcd`] is the convenience wrapper that drains the stream into
/// one [`Trace`].
///
/// # Examples
///
/// ```
/// use cesc_expr::{Alphabet, Valuation};
/// use cesc_trace::{write_vcd, VcdStream, VcdWriteOptions, Trace};
///
/// let mut ab = Alphabet::new();
/// let req = ab.event("req");
/// let t = Trace::from_elements(vec![Valuation::of([req]); 10]);
/// let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
///
/// // `new` borrows a &str; `from_reader` accepts any io::BufRead
/// let mut stream = VcdStream::new(&vcd, &ab, "clk")?;
/// let mut chunk = Vec::new();
/// let mut total = 0;
/// while stream.next_chunk(&mut chunk, 4)? > 0 {
///     total += chunk.len(); // at most 4 ticks resident at a time
/// }
/// assert_eq!(total, 10);
/// # Ok::<(), cesc_trace::VcdReadError>(())
/// ```
#[derive(Debug)]
pub struct VcdStream<R> {
    reader: R,
    /// Reused line buffer.
    line: String,
    /// 1-based number of the last line read.
    lineno: usize,
    code_to_symbol: HashMap<String, SymbolId>,
    clock_code: String,
    current: Valuation,
    clock_level: bool,
    /// All changes dumped at one `#time` are simultaneous: a rising
    /// clock edge samples the signal values *after* every change of
    /// that timestamp has been applied, so the sample is deferred
    /// until the timestamp advances (or input ends).
    pending_sample: bool,
    cur_time: u64,
    done: bool,
}

impl<'a> VcdStream<&'a [u8]> {
    /// Parses the VCD header of in-memory text and positions the
    /// stream at the first value change — a thin wrapper over
    /// [`VcdStream::from_reader`] on the string's bytes.
    ///
    /// # Errors
    ///
    /// As [`VcdStream::from_reader`].
    pub fn new(vcd: &'a str, alphabet: &Alphabet, clock_name: &str) -> Result<Self, VcdReadError> {
        Self::from_reader(vcd.as_bytes(), alphabet, clock_name)
    }
}

impl<R: BufRead> VcdStream<R> {
    /// Parses the VCD header from `reader` and positions the stream at
    /// the first value change. The reader is consumed line by line —
    /// the dump is never resident in full.
    ///
    /// Signals present in the VCD but absent from `alphabet` are
    /// ignored; alphabet symbols absent from the VCD read as constant
    /// false. Vector declarations may carry a range (`data[7:0]`, or
    /// `data [7:0]` as a separate token) — both resolve to the base
    /// name. Multi-bit vector changes (`b... id`) are treated as true
    /// iff any bit is `1`; `x`/`z` bits read as false.
    ///
    /// # Errors
    ///
    /// Returns [`VcdReadError::MissingClock`] if `clock_name` is not
    /// declared, [`VcdReadError::Malformed`] on an unparseable `$var`
    /// declaration, or [`VcdReadError::Io`] if the reader fails.
    pub fn from_reader(
        mut reader: R,
        alphabet: &Alphabet,
        clock_name: &str,
    ) -> Result<Self, VcdReadError> {
        let mut line = String::new();
        let mut lineno = 0usize;
        let header = parse_header(&mut reader, &mut line, &mut lineno, alphabet, &[clock_name])?;
        let clock_code = header.clock_codes.into_iter().next().flatten().ok_or_else(|| {
            VcdReadError::MissingClock {
                name: clock_name.to_owned(),
            }
        })?;
        Ok(VcdStream {
            reader,
            line,
            lineno,
            code_to_symbol: header.code_to_symbol,
            clock_code,
            current: Valuation::empty(),
            clock_level: false,
            pending_sample: false,
            cur_time: 0,
            done: false,
        })
    }

    /// Clears `buf` and refills it with up to `max` sampled
    /// valuations, returning how many were produced. `Ok(0)` signals
    /// end of input — except that `max == 0` also returns `Ok(0)`
    /// without consuming anything (like `Read::read` with an empty
    /// buffer), so never poll for end of input with a zero chunk
    /// size.
    ///
    /// # Errors
    ///
    /// Returns [`VcdReadError::Malformed`] on unparseable value
    /// changes or timestamps, [`VcdReadError::Io`] if the reader
    /// fails. An error poisons the stream: every subsequent call
    /// returns `Ok(0)`, so a caller that retries cannot silently
    /// resume past corrupt input.
    pub fn next_chunk(
        &mut self,
        buf: &mut Vec<Valuation>,
        max: usize,
    ) -> Result<usize, VcdReadError> {
        buf.clear();
        if self.done || max == 0 {
            return Ok(0);
        }
        while buf.len() < max {
            let more = match read_line(&mut self.reader, &mut self.line, &mut self.lineno) {
                Ok(m) => m,
                Err(e) => {
                    self.done = true;
                    return Err(e);
                }
            };
            if !more {
                self.done = true;
                if self.pending_sample {
                    self.pending_sample = false;
                    buf.push(self.current);
                }
                break;
            }
            let classified = classify_body_line(self.line.trim(), self.lineno)
                .and_then(|parsed| match parsed {
                    // Time survives only when the instant advanced, so
                    // the arm below is exactly "flush the sample"
                    BodyLine::Time(t) => advance_time(&mut self.cur_time, t, self.lineno)
                        .map(|advanced| if advanced { parsed } else { BodyLine::Skip }),
                    other => Ok(other),
                });
            match classified {
                Err(e) => {
                    self.done = true;
                    return Err(e);
                }
                Ok(BodyLine::Skip) => {}
                Ok(BodyLine::Time(_)) => {
                    // time advanced: emit the deferred sample
                    if self.pending_sample {
                        self.pending_sample = false;
                        buf.push(self.current);
                    }
                }
                Ok(BodyLine::Change(value, code)) => {
                    if code == self.clock_code {
                        if value && !self.clock_level {
                            self.pending_sample = true; // rising edge: sample at block end
                        }
                        self.clock_level = value;
                    } else if let Some(&id) = self.code_to_symbol.get(code) {
                        if value {
                            self.current.insert(id);
                        } else {
                            self.current.remove(id);
                        }
                    }
                }
            }
        }
        Ok(buf.len())
    }
}

/// One clock a [`GlobalVcdStream`] samples on, optionally with a mask
/// restricting which symbols its ticks carry (a multi-clock chart's
/// local monitor should only see its own chart's signals).
#[derive(Debug, Clone)]
pub struct VcdClockSpec {
    name: String,
    mask: Option<Valuation>,
}

impl VcdClockSpec {
    /// A clock whose ticks sample every alphabet symbol.
    pub fn new(name: &str) -> Self {
        VcdClockSpec {
            name: name.to_owned(),
            mask: None,
        }
    }

    /// A clock whose ticks carry only the symbols in `mask`.
    pub fn masked(name: &str, mask: Valuation) -> Self {
        VcdClockSpec {
            name: name.to_owned(),
            mask: Some(mask),
        }
    }

    /// The clock signal's name in the VCD.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The symbol mask, if any.
    pub fn mask(&self) -> Option<Valuation> {
        self.mask
    }
}

/// Streaming multi-clock VCD reader: samples every requested clock's
/// rising edges and yields [`GlobalStep`] chunks — the input side of
/// the batched multi-clock monitoring path (`cesc check` on a
/// `multiclock` spec).
///
/// Clock `i` of the constructor's list becomes [`ClockId`] index `i`
/// in the produced steps, so a consumer whose locals are listed in the
/// same order can use an identity binding. Step times are VCD
/// timestamps. Clocks rising at the same timestamp share one step
/// (ticks ascending by clock index); each tick's valuation is the
/// signal state after all changes of that timestamp, restricted to the
/// clock's mask.
///
/// # Examples
///
/// ```
/// use cesc_expr::{Alphabet, Valuation};
/// use cesc_trace::{
///     write_vcd_global, ClockDomain, ClockSet, GlobalRun, GlobalVcdStream, Trace,
///     VcdClockSpec, VcdWriteOptions,
/// };
///
/// let mut ab = Alphabet::new();
/// let go = ab.event("go");
/// let done = ab.event("done");
/// let mut clocks = ClockSet::new();
/// let c1 = clocks.add(ClockDomain::new("clk1", 2, 0));
/// let c2 = clocks.add(ClockDomain::new("clk2", 2, 1));
/// let run = GlobalRun::interleave(&clocks, &[
///     (c1, Trace::from_elements([Valuation::of([go])])),
///     (c2, Trace::from_elements([Valuation::of([done])])),
/// ]).unwrap();
///
/// let owners = [Valuation::of([go]), Valuation::of([done])];
/// let vcd = write_vcd_global(&run, &clocks, &ab, &owners, &VcdWriteOptions::default());
///
/// let specs = [
///     VcdClockSpec::masked("clk1", owners[0]),
///     VcdClockSpec::masked("clk2", owners[1]),
/// ];
/// let mut stream = GlobalVcdStream::new(&vcd, &ab, &specs)?;
/// let mut steps = Vec::new();
/// stream.next_chunk(&mut steps, 16)?;
/// assert_eq!(steps.len(), run.len());
/// assert_eq!(steps[0].ticks, run.get(0).unwrap().ticks);
/// # Ok::<(), cesc_trace::VcdReadError>(())
/// ```
#[derive(Debug)]
pub struct GlobalVcdStream<R> {
    reader: R,
    line: String,
    lineno: usize,
    code_to_symbol: HashMap<String, SymbolId>,
    /// Identifier code → indices of the clocks it drives (several when
    /// two requested clocks share one VCD signal).
    clock_codes: HashMap<String, Vec<u32>>,
    /// Per clock: symbol mask its ticks carry (`u128::MAX` = all).
    masks: Vec<u128>,
    current: Valuation,
    levels: Vec<bool>,
    /// Clocks that rose at the current timestamp; their shared step is
    /// emitted when the timestamp advances (or input ends).
    pending: Vec<bool>,
    any_pending: bool,
    /// Recycled tick vectors: [`GlobalVcdStream::next_chunk`] reclaims
    /// the caller's previous chunk's `ticks` allocations here and
    /// [`GlobalVcdStream::flush_at`] reuses them, so steady-state
    /// streaming allocates nothing per step (pinned by the workspace
    /// counting-allocator test).
    spare: Vec<Vec<(ClockId, Valuation)>>,
    cur_time: u64,
    done: bool,
}

impl<'a> GlobalVcdStream<&'a [u8]> {
    /// In-memory wrapper over [`GlobalVcdStream::from_reader`].
    ///
    /// # Errors
    ///
    /// As [`GlobalVcdStream::from_reader`].
    pub fn new(
        vcd: &'a str,
        alphabet: &Alphabet,
        clocks: &[VcdClockSpec],
    ) -> Result<Self, VcdReadError> {
        Self::from_reader(vcd.as_bytes(), alphabet, clocks)
    }
}

impl<R: BufRead> GlobalVcdStream<R> {
    /// Parses the VCD header from `reader` and positions the stream at
    /// the first value change. Every clock in `clocks` must be
    /// declared.
    ///
    /// # Errors
    ///
    /// Returns [`VcdReadError::MissingClock`] naming the first
    /// undeclared clock, [`VcdReadError::Malformed`] on an unparseable
    /// `$var` declaration, or [`VcdReadError::Io`] if the reader
    /// fails.
    pub fn from_reader(
        mut reader: R,
        alphabet: &Alphabet,
        clocks: &[VcdClockSpec],
    ) -> Result<Self, VcdReadError> {
        let mut line = String::new();
        let mut lineno = 0usize;
        let names: Vec<&str> = clocks.iter().map(VcdClockSpec::name).collect();
        let header = parse_header(&mut reader, &mut line, &mut lineno, alphabet, &names)?;
        let mut clock_codes: HashMap<String, Vec<u32>> = HashMap::new();
        for (i, (spec, code)) in clocks.iter().zip(header.clock_codes).enumerate() {
            let code = code.ok_or_else(|| VcdReadError::MissingClock {
                name: spec.name.clone(),
            })?;
            clock_codes.entry(code).or_default().push(i as u32);
        }
        Ok(GlobalVcdStream {
            reader,
            line,
            lineno,
            code_to_symbol: header.code_to_symbol,
            clock_codes,
            masks: clocks
                .iter()
                .map(|s| s.mask.map_or(u128::MAX, Valuation::bits))
                .collect(),
            current: Valuation::empty(),
            levels: vec![false; clocks.len()],
            pending: vec![false; clocks.len()],
            any_pending: false,
            spare: Vec::new(),
            cur_time: 0,
            done: false,
        })
    }

    /// Emits the clocks that rose at instant `time` as one step,
    /// reusing a recycled tick vector when one is available.
    fn flush_at(&mut self, time: u64, buf: &mut Vec<GlobalStep>) {
        if !self.any_pending {
            return;
        }
        let mut ticks = self.spare.pop().unwrap_or_default();
        ticks.extend(
            self.pending
                .iter()
                .enumerate()
                .filter(|&(_, &p)| p)
                .map(|(i, _)| {
                    (
                        ClockId::from_index(i),
                        Valuation::from_bits(self.current.bits() & self.masks[i]),
                    )
                }),
        );
        buf.push(GlobalStep { time, ticks });
        self.pending.iter_mut().for_each(|p| *p = false);
        self.any_pending = false;
    }

    /// Clears `buf` and refills it with up to `max` global steps,
    /// returning how many were produced. `Ok(0)` signals end of input
    /// (`max == 0` also returns `Ok(0)` without consuming anything).
    ///
    /// # Errors
    ///
    /// Returns [`VcdReadError::Malformed`] on unparseable value
    /// changes, unparseable or decreasing timestamps, or
    /// [`VcdReadError::Io`] if the reader fails. Errors poison the
    /// stream (subsequent calls return `Ok(0)`).
    pub fn next_chunk(
        &mut self,
        buf: &mut Vec<GlobalStep>,
        max: usize,
    ) -> Result<usize, VcdReadError> {
        for mut step in buf.drain(..) {
            step.ticks.clear();
            self.spare.push(step.ticks);
        }
        if self.done || max == 0 {
            return Ok(0);
        }
        while buf.len() < max {
            let more = match read_line(&mut self.reader, &mut self.line, &mut self.lineno) {
                Ok(m) => m,
                Err(e) => {
                    self.done = true;
                    return Err(e);
                }
            };
            if !more {
                self.done = true;
                let t = self.cur_time;
                self.flush_at(t, buf);
                break;
            }
            // a pending step belongs to the instant it was sampled at,
            // so the flush uses the time *before* the advance
            let prev_time = self.cur_time;
            let classified = classify_body_line(self.line.trim(), self.lineno)
                .and_then(|parsed| match parsed {
                    BodyLine::Time(t) => advance_time(&mut self.cur_time, t, self.lineno)
                        .map(|advanced| if advanced { parsed } else { BodyLine::Skip }),
                    other => Ok(other),
                });
            match classified {
                Err(e) => {
                    self.done = true;
                    return Err(e);
                }
                Ok(BodyLine::Skip) => {}
                Ok(BodyLine::Time(_)) => self.flush_at(prev_time, buf),
                Ok(BodyLine::Change(value, code)) => {
                    if let Some(indices) = self.clock_codes.get(code) {
                        for &ci in indices {
                            let ci = ci as usize;
                            if value && !self.levels[ci] {
                                self.pending[ci] = true;
                                self.any_pending = true;
                            }
                            self.levels[ci] = value;
                        }
                    } else if let Some(&id) = self.code_to_symbol.get(code) {
                        if value {
                            self.current.insert(id);
                        } else {
                            self.current.remove(id);
                        }
                    }
                }
            }
        }
        Ok(buf.len())
    }
}

/// Parses one VCD value-change line into `(value, identifier code)`.
/// `lineno` is 1-based.
fn parse_change(line: &str, lineno: usize) -> Result<(bool, &str), VcdReadError> {
    if let Some(rest) = line.strip_prefix('b').or_else(|| line.strip_prefix('B')) {
        // vector: b<binary> <code>; x/z bits are "not 1", i.e. false
        let mut parts = rest.split_whitespace();
        let bits = parts.next().unwrap_or("");
        if let Some(bad) = bits.chars().find(|c| !matches!(c, '0' | '1' | 'x' | 'X' | 'z' | 'Z')) {
            return Err(VcdReadError::Malformed {
                line: lineno,
                message: format!("invalid bit `{bad}` in vector change"),
            });
        }
        let code = parts.next().ok_or_else(|| VcdReadError::Malformed {
            line: lineno,
            message: "vector change missing identifier".to_owned(),
        })?;
        Ok((bits.contains('1'), code))
    } else {
        let mut chars = line.chars();
        let v = chars.next().ok_or_else(|| VcdReadError::Malformed {
            line: lineno,
            message: "empty value change".to_owned(),
        })?;
        let value = match v {
            '1' => true,
            '0' | 'x' | 'X' | 'z' | 'Z' => false,
            other => {
                return Err(VcdReadError::Malformed {
                    line: lineno,
                    message: format!("unsupported value change `{other}`"),
                })
            }
        };
        Ok((value, chars.as_str().trim()))
    }
}

/// Parses VCD text and samples the signals named in `alphabet` at each
/// rising edge of `clock_name`, returning the reconstructed trace.
///
/// Convenience wrapper draining a [`VcdStream`] — use the stream
/// directly (over a `BufReader<File>`) to check long waveforms in
/// bounded memory.
///
/// # Errors
///
/// Returns [`VcdReadError::MissingClock`] if `clock_name` is not
/// declared, or [`VcdReadError::Malformed`] on unparseable content.
pub fn read_vcd(
    vcd: &str,
    alphabet: &Alphabet,
    clock_name: &str,
) -> Result<Trace, VcdReadError> {
    let mut stream = VcdStream::new(vcd, alphabet, clock_name)?;
    let mut trace = Trace::new();
    let mut chunk = Vec::new();
    while stream.next_chunk(&mut chunk, 4096)? > 0 {
        trace.extend(chunk.iter().copied());
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockDomain;

    fn setup() -> (Alphabet, SymbolId, SymbolId) {
        let mut ab = Alphabet::new();
        let a = ab.event("req");
        let b = ab.prop("burst");
        (ab, a, b)
    }

    #[test]
    fn write_then_read_round_trips() {
        let (ab, a, b) = setup();
        let t = Trace::from_elements([
            Valuation::of([a]),
            Valuation::of([a, b]),
            Valuation::empty(),
            Valuation::of([b]),
        ]);
        let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
        let back = read_vcd(&vcd, &ab, "clk").unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_trace_round_trips() {
        let (ab, _, _) = setup();
        let t = Trace::new();
        let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
        let back = read_vcd(&vcd, &ab, "clk").unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn missing_clock_is_an_error() {
        let (ab, _, _) = setup();
        let t = Trace::from_elements([Valuation::empty()]);
        let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
        let err = read_vcd(&vcd, &ab, "not_a_clock").unwrap_err();
        assert!(matches!(err, VcdReadError::MissingClock { .. }));
    }

    #[test]
    fn unknown_signals_are_ignored() {
        let (ab, a, _) = setup();
        let vcd = "\
$timescale 1ns $end
$scope module top $end
$var wire 1 ! clk $end
$var wire 1 \" req $end
$var wire 1 # mystery $end
$upscope $end
$enddefinitions $end
#0
0!
0\"
1#
#5
1!
1\"
#10
0!
";
        let t = read_vcd(vcd, &ab, "clk").unwrap();
        assert_eq!(t.len(), 1);
        assert!(t[0].contains(a));
    }

    #[test]
    fn x_and_z_values_read_as_false() {
        let (ab, a, _) = setup();
        let vcd = "\
$var wire 1 ! clk $end
$var wire 1 \" req $end
$enddefinitions $end
#0
1\"
1!
#5
0!
x\"
#10
1!
";
        let t = read_vcd(vcd, &ab, "clk").unwrap();
        assert_eq!(t.len(), 2);
        assert!(t[0].contains(a));
        assert!(!t[1].contains(a));
    }

    #[test]
    fn vector_changes_map_to_any_bit_set() {
        let (ab, a, _) = setup();
        let vcd = "\
$var wire 4 ! clk $end
$var wire 4 \" req $end
$enddefinitions $end
#0
b0010 \"
1!
#5
0!
b0000 \"
#10
1!
";
        let t = read_vcd(vcd, &ab, "clk").unwrap();
        assert_eq!(t.len(), 2);
        assert!(t[0].contains(a));
        assert!(!t[1].contains(a));
    }

    #[test]
    fn vector_x_z_bits_read_as_false() {
        // a vector of only x/z bits is false; any 1 bit wins; an x
        // *alongside* a 1 does not mask it
        let (ab, a, _) = setup();
        let vcd = "\
$var wire 4 ! clk $end
$var wire 4 \" req $end
$enddefinitions $end
#0
bxxzZ \"
1!
#5
0!
bx1z0 \"
#10
1!
#15
0!
";
        let t = read_vcd(vcd, &ab, "clk").unwrap();
        assert_eq!(t.len(), 2);
        assert!(!t[0].contains(a), "all-x/z vector reads as false");
        assert!(t[1].contains(a), "a 1 bit among x/z still reads true");
    }

    #[test]
    fn vector_with_invalid_bits_errors() {
        let (ab, _, _) = setup();
        let vcd = "\
$var wire 1 ! clk $end
$var wire 4 \" req $end
$enddefinitions $end
#0
bq010 \"
1!
";
        let err = read_vcd(vcd, &ab, "clk").unwrap_err();
        assert!(matches!(err, VcdReadError::Malformed { line: 5, .. }), "{err}");
    }

    #[test]
    fn var_with_separate_range_token_resolves_base_name() {
        // `$var wire 8 ! data [7:0] $end` — the name is `data`, the
        // range rides as its own token
        let mut ab = Alphabet::new();
        let data = ab.event("data");
        let vcd = "\
$var wire 1 ! clk $end
$var wire 8 \" data [7:0] $end
$enddefinitions $end
#0
b00000001 \"
1!
#5
0!
";
        let t = read_vcd(vcd, &ab, "clk").unwrap();
        assert_eq!(t.len(), 1);
        assert!(t[0].contains(data));
    }

    #[test]
    fn var_with_attached_range_resolves_base_name() {
        let mut ab = Alphabet::new();
        let data = ab.event("data");
        let vcd = "\
$var wire 1 ! clk $end
$var wire 8 \" data[7:0] $end
$enddefinitions $end
#0
b10000000 \"
1!
#5
0!
";
        let t = read_vcd(vcd, &ab, "clk").unwrap();
        assert_eq!(t.len(), 1);
        assert!(t[0].contains(data));
    }

    #[test]
    fn short_var_declaration_errors() {
        let (ab, _, _) = setup();
        for vcd in [
            "$var wire 1 ! $end\n$enddefinitions $end\n",
            "$var wire 1 $end\n$enddefinitions $end\n",
        ] {
            let err = VcdStream::new(vcd, &ab, "clk").unwrap_err();
            assert!(matches!(err, VcdReadError::Malformed { line: 1, .. }), "{err}");
        }
    }

    #[test]
    fn malformed_timestamp_errors_instead_of_panicking() {
        let (ab, _, _) = setup();
        let vcd = "\
$var wire 1 ! clk $end
$enddefinitions $end
#zero
1!
";
        let err = read_vcd(vcd, &ab, "clk").unwrap_err();
        match err {
            VcdReadError::Malformed { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("timestamp"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn backwards_timestamp_errors_on_single_clock_stream_too() {
        let (ab, _, _) = setup();
        let vcd = "\
$var wire 1 ! clk $end
$enddefinitions $end
#10
1!
#3
0!
";
        let err = read_vcd(vcd, &ab, "clk").unwrap_err();
        match err {
            VcdReadError::Malformed { line, message } => {
                assert_eq!(line, 5);
                assert!(message.contains("backwards"), "{message}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn streaming_chunks_equal_whole_file_read() {
        let (ab, a, b) = setup();
        // 100 ticks of varied activity
        let t: Trace = (0..100u32)
            .map(|i| {
                let mut v = Valuation::empty();
                if i % 2 == 0 {
                    v.insert(a);
                }
                if i % 3 == 0 {
                    v.insert(b);
                }
                v
            })
            .collect();
        let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
        let whole = read_vcd(&vcd, &ab, "clk").unwrap();
        assert_eq!(whole, t);
        for chunk_size in [1usize, 3, 7, 64, 1000] {
            let mut stream = VcdStream::new(&vcd, &ab, "clk").unwrap();
            let mut got = Trace::new();
            let mut chunk = Vec::new();
            loop {
                let n = stream.next_chunk(&mut chunk, chunk_size).unwrap();
                if n == 0 {
                    break;
                }
                assert!(chunk.len() <= chunk_size);
                got.extend(chunk.iter().copied());
            }
            assert_eq!(got, t, "chunk size {chunk_size}");
            // drained stream stays at EOF
            assert_eq!(stream.next_chunk(&mut chunk, chunk_size).unwrap(), 0);
        }
    }

    #[test]
    fn buffered_reader_parse_equals_whole_string_parse() {
        // same bytes through a tiny-capacity BufReader — the streamed
        // path must be byte-for-byte equivalent to the &str path
        let (ab, a, b) = setup();
        let t: Trace = (0..50u32)
            .map(|i| {
                let mut v = Valuation::empty();
                if i % 5 == 0 {
                    v.insert(a);
                }
                if i % 7 == 0 {
                    v.insert(b);
                }
                v
            })
            .collect();
        let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
        let whole = read_vcd(&vcd, &ab, "clk").unwrap();

        let reader = io::BufReader::with_capacity(7, vcd.as_bytes());
        let mut stream = VcdStream::from_reader(reader, &ab, "clk").unwrap();
        let mut got = Trace::new();
        let mut chunk = Vec::new();
        while stream.next_chunk(&mut chunk, 16).unwrap() > 0 {
            got.extend(chunk.iter().copied());
        }
        assert_eq!(got, whole);
    }

    #[test]
    fn error_poisons_stream() {
        let (ab, _, _) = setup();
        let vcd = "\
$var wire 1 ! clk $end
$var wire 1 \" req $end
$enddefinitions $end
#0
1!
#5
0!
q\"
#10
1!
";
        let mut stream = VcdStream::new(vcd, &ab, "clk").unwrap();
        let mut chunk = Vec::new();
        assert!(matches!(
            stream.next_chunk(&mut chunk, 100),
            Err(VcdReadError::Malformed { line: 8, .. })
        ));
        // a retry must NOT resume past the corrupt line
        assert_eq!(stream.next_chunk(&mut chunk, 100).unwrap(), 0);
    }

    #[test]
    fn stream_reports_missing_clock() {
        let (ab, _, _) = setup();
        let t = Trace::from_elements([Valuation::empty()]);
        let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
        assert!(matches!(
            VcdStream::new(&vcd, &ab, "ghost"),
            Err(VcdReadError::MissingClock { .. })
        ));
    }

    #[test]
    fn id_codes_are_printable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = id_code(i);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn malformed_input_reports_line() {
        let (ab, _, _) = setup();
        let vcd = "\
$var wire 1 ! clk $end
$enddefinitions $end
#0
q!
";
        let err = read_vcd(vcd, &ab, "clk").unwrap_err();
        match err {
            VcdReadError::Malformed { line, .. } => assert_eq!(line, 4),
            other => panic!("unexpected {other:?}"),
        }
    }

    // ---- multi-clock global stream ---------------------------------

    fn global_setup() -> (Alphabet, SymbolId, SymbolId, ClockSet, GlobalRun) {
        let mut ab = Alphabet::new();
        let go = ab.event("go");
        let done = ab.event("done");
        let mut clocks = ClockSet::new();
        let c1 = clocks.add(ClockDomain::new("clk1", 2, 0)); // 0,2,4
        let c2 = clocks.add(ClockDomain::new("clk2", 3, 1)); // 1,4
        let t1 = Trace::from_elements([
            Valuation::of([go]),
            Valuation::empty(),
            Valuation::of([go]),
        ]);
        let t2 = Trace::from_elements([Valuation::of([done]), Valuation::of([done])]);
        let run = GlobalRun::interleave(&clocks, &[(c1, t1), (c2, t2)]).unwrap();
        (ab, go, done, clocks, run)
    }

    #[test]
    fn global_write_read_round_trips() {
        let (ab, go, done, clocks, run) = global_setup();
        let owners = [Valuation::of([go]), Valuation::of([done])];
        let opts = VcdWriteOptions {
            half_period: 1,
            ..Default::default()
        };
        let vcd = write_vcd_global(&run, &clocks, &ab, &owners, &opts);
        let specs = [
            VcdClockSpec::masked("clk1", owners[0]),
            VcdClockSpec::masked("clk2", owners[1]),
        ];
        let mut stream = GlobalVcdStream::new(&vcd, &ab, &specs).unwrap();
        let mut steps = Vec::new();
        let mut got: Vec<GlobalStep> = Vec::new();
        while stream.next_chunk(&mut steps, 3).unwrap() > 0 {
            got.extend(steps.iter().cloned());
        }
        assert_eq!(got.len(), run.len());
        for (read, orig) in got.iter().zip(run.iter()) {
            // VCD time = 2 * global time * half_period (half_period=1)
            assert_eq!(read.time, 2 * orig.time);
            assert_eq!(read.ticks, orig.ticks);
        }
    }

    #[test]
    fn global_shared_instants_merge_into_one_step() {
        let (ab, go, done, clocks, run) = global_setup();
        // global time 4 has both clocks ticking
        let shared = run.iter().find(|s| s.ticks.len() == 2).expect("shared instant");
        assert_eq!(shared.time, 4);
        let owners = [Valuation::of([go]), Valuation::of([done])];
        let vcd = write_vcd_global(
            &run,
            &clocks,
            &ab,
            &owners,
            &VcdWriteOptions {
                half_period: 1,
                ..Default::default()
            },
        );
        let specs = [VcdClockSpec::new("clk1"), VcdClockSpec::new("clk2")];
        let mut stream = GlobalVcdStream::new(&vcd, &ab, &specs).unwrap();
        let mut steps = Vec::new();
        stream.next_chunk(&mut steps, 64).unwrap();
        let read_shared = steps.iter().find(|s| s.time == 8).expect("shared step");
        assert_eq!(read_shared.ticks.len(), 2);
    }

    #[test]
    fn global_missing_clock_names_the_culprit() {
        let (ab, _, _, clocks, run) = global_setup();
        let owners = [Valuation::empty(), Valuation::empty()];
        let vcd = write_vcd_global(&run, &clocks, &ab, &owners, &VcdWriteOptions::default());
        let specs = [VcdClockSpec::new("clk1"), VcdClockSpec::new("ghost")];
        match GlobalVcdStream::new(&vcd, &ab, &specs) {
            Err(VcdReadError::MissingClock { name }) => assert_eq!(name, "ghost"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn global_backwards_timestamp_errors() {
        let (ab, _, _) = setup();
        let vcd = "\
$var wire 1 ! clk1 $end
$enddefinitions $end
#5
1!
#3
0!
";
        let mut stream = GlobalVcdStream::new(vcd, &ab, &[VcdClockSpec::new("clk1")]).unwrap();
        let mut steps = Vec::new();
        let err = stream.next_chunk(&mut steps, 16).unwrap_err();
        assert!(matches!(err, VcdReadError::Malformed { line: 5, .. }), "{err}");
        // poisoned
        assert_eq!(stream.next_chunk(&mut steps, 16).unwrap(), 0);
    }

    #[test]
    fn global_stream_masks_restrict_tick_valuations() {
        let (ab, go, done, clocks, run) = global_setup();
        // write WITHOUT ownership separation (both clocks own all
        // symbols), then read back masked: each tick carries only its
        // own chart's signals even though the wires are shared
        let all = Valuation::of([go, done]);
        let vcd = write_vcd_global(
            &run,
            &clocks,
            &ab,
            &[all, all],
            &VcdWriteOptions {
                half_period: 1,
                ..Default::default()
            },
        );
        let specs = [
            VcdClockSpec::masked("clk1", Valuation::of([go])),
            VcdClockSpec::masked("clk2", Valuation::of([done])),
        ];
        let mut stream = GlobalVcdStream::new(&vcd, &ab, &specs).unwrap();
        let mut steps = Vec::new();
        stream.next_chunk(&mut steps, 64).unwrap();
        for step in &steps {
            for &(clock, v) in &step.ticks {
                if clock.index() == 0 {
                    assert!(!v.contains(done), "clk1 tick must not carry done");
                } else {
                    assert!(!v.contains(go), "clk2 tick must not carry go");
                }
            }
        }
    }
}
