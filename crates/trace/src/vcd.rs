//! VCD (Value Change Dump, IEEE 1364) import/export for clocked traces.
//!
//! The paper's monitors plug into a simulation environment (Fig 4); in
//! practice simulator output reaches offline checkers as VCD waveforms.
//! [`write_vcd`] dumps a [`Trace`] (events/props as 1-bit wires plus an
//! explicit clock), and [`read_vcd`] samples a VCD back into a trace at
//! each rising clock edge — so monitors synthesized by `cesc-core` can
//! check waveforms from any HDL simulator.

use std::collections::HashMap;
use std::fmt::Write as _;

use cesc_expr::{Alphabet, SymbolId, Valuation};

use crate::trace::Trace;

/// Options for [`write_vcd`].
#[derive(Debug, Clone)]
pub struct VcdWriteOptions {
    /// Name of the generated clock signal.
    pub clock_name: String,
    /// Half-period of the clock in timescale units (full period is
    /// `2 * half_period`).
    pub half_period: u64,
    /// Timescale declaration, e.g. `"1ns"`.
    pub timescale: String,
    /// Module scope name in the VCD hierarchy.
    pub scope: String,
}

impl Default for VcdWriteOptions {
    fn default() -> Self {
        VcdWriteOptions {
            clock_name: "clk".to_owned(),
            half_period: 5,
            timescale: "1ns".to_owned(),
            scope: "cesc_monitor".to_owned(),
        }
    }
}

fn id_code(mut n: usize) -> String {
    // printable VCD identifier codes: '!'..'~'
    let mut s = String::new();
    loop {
        s.push((b'!' + (n % 94) as u8) as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

/// Serialises `trace` as VCD text. Tick `k` of the trace is sampled at
/// the rising edge at time `2k * half_period`.
///
/// # Examples
///
/// ```
/// use cesc_expr::{Alphabet, Valuation};
/// use cesc_trace::{write_vcd, VcdWriteOptions, Trace};
/// let mut ab = Alphabet::new();
/// let req = ab.event("req");
/// let t = Trace::from_elements([Valuation::of([req]), Valuation::empty()]);
/// let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
/// assert!(vcd.contains("$var wire 1"));
/// assert!(vcd.contains("req"));
/// ```
pub fn write_vcd(trace: &Trace, alphabet: &Alphabet, opts: &VcdWriteOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date\n    cesc generated\n$end");
    let _ = writeln!(out, "$version\n    cesc-trace VCD writer\n$end");
    let _ = writeln!(out, "$timescale {} $end", opts.timescale);
    let _ = writeln!(out, "$scope module {} $end", opts.scope);
    let clk_code = id_code(0);
    let _ = writeln!(out, "$var wire 1 {clk_code} {} $end", opts.clock_name);
    let codes: Vec<String> = alphabet
        .iter()
        .map(|(id, sym)| {
            let code = id_code(id.index() + 1);
            let _ = writeln!(out, "$var wire 1 {code} {} $end", sym.name());
            code
        })
        .collect();
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    // initial values
    let _ = writeln!(out, "#0");
    let _ = writeln!(out, "$dumpvars");
    let first = trace.get(0).unwrap_or_else(Valuation::empty);
    // no ticks → the clock never rises and nothing is sampled back
    let clk0 = if trace.is_empty() { '0' } else { '1' };
    let _ = writeln!(out, "{clk0}{clk_code}");
    for (id, _) in alphabet.iter() {
        let bit = if first.contains(id) { '1' } else { '0' };
        let _ = writeln!(out, "{bit}{}", codes[id.index()]);
    }
    let _ = writeln!(out, "$end");

    let mut prev = first;
    for k in 0..trace.len() {
        let rise = 2 * k as u64 * opts.half_period;
        let fall = rise + opts.half_period;
        if k > 0 {
            let v = trace[k];
            let _ = writeln!(out, "#{rise}");
            for (id, _) in alphabet.iter() {
                let now = v.contains(id);
                if now != prev.contains(id) {
                    let bit = if now { '1' } else { '0' };
                    let _ = writeln!(out, "{bit}{}", codes[id.index()]);
                }
            }
            let _ = writeln!(out, "1{clk_code}");
            prev = v;
        }
        let _ = writeln!(out, "#{fall}");
        let _ = writeln!(out, "0{clk_code}");
    }
    out
}

/// Error from [`read_vcd`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VcdReadError {
    /// A `$var` declaration or value change could not be parsed.
    Malformed {
        /// Line number (1-based) of the offending input.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The requested clock signal is not declared in the VCD.
    MissingClock {
        /// The clock name that was looked for.
        name: String,
    },
}

impl std::fmt::Display for VcdReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VcdReadError::Malformed { line, message } => {
                write!(f, "malformed VCD at line {line}: {message}")
            }
            VcdReadError::MissingClock { name } => {
                write!(f, "clock signal `{name}` not found in VCD")
            }
        }
    }
}

impl std::error::Error for VcdReadError {}

/// Streaming VCD reader: parses the header eagerly, then yields
/// sampled valuations in caller-sized chunks instead of materialising
/// the whole trace.
///
/// This is the input side of the batched monitoring path: the decoded
/// trace stays bounded (one chunk resident at a time) no matter how
/// many ticks the dump holds. The VCD *text* itself is borrowed as
/// one `&str`, so the caller still pays for the raw dump bytes — the
/// stream removes the whole-`Trace` copy, not the text. [`read_vcd`]
/// is the convenience wrapper that drains the stream into one
/// [`Trace`].
///
/// # Examples
///
/// ```
/// use cesc_expr::{Alphabet, Valuation};
/// use cesc_trace::{write_vcd, VcdStream, VcdWriteOptions, Trace};
///
/// let mut ab = Alphabet::new();
/// let req = ab.event("req");
/// let t = Trace::from_elements(vec![Valuation::of([req]); 10]);
/// let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
///
/// let mut stream = VcdStream::new(&vcd, &ab, "clk")?;
/// let mut chunk = Vec::new();
/// let mut total = 0;
/// while stream.next_chunk(&mut chunk, 4)? > 0 {
///     total += chunk.len(); // at most 4 ticks resident at a time
/// }
/// assert_eq!(total, 10);
/// # Ok::<(), cesc_trace::VcdReadError>(())
/// ```
#[derive(Debug)]
pub struct VcdStream<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    code_to_symbol: HashMap<String, SymbolId>,
    clock_code: String,
    current: Valuation,
    clock_level: bool,
    /// All changes dumped at one `#time` are simultaneous: a rising
    /// clock edge samples the signal values *after* every change of
    /// that timestamp has been applied, so the sample is deferred
    /// until the timestamp advances (or input ends).
    pending_sample: bool,
    done: bool,
}

impl<'a> VcdStream<'a> {
    /// Parses the VCD header and positions the stream at the first
    /// value change.
    ///
    /// Signals present in the VCD but absent from `alphabet` are
    /// ignored; alphabet symbols absent from the VCD read as constant
    /// false. Multi-bit vector changes (`b... id`) are treated as true
    /// iff any bit is 1.
    ///
    /// # Errors
    ///
    /// Returns [`VcdReadError::MissingClock`] if `clock_name` is not
    /// declared, or [`VcdReadError::Malformed`] on an unparseable
    /// `$var` declaration.
    pub fn new(
        vcd: &'a str,
        alphabet: &Alphabet,
        clock_name: &str,
    ) -> Result<Self, VcdReadError> {
        let mut code_to_symbol: HashMap<String, SymbolId> = HashMap::new();
        let mut clock_code: Option<String> = None;

        let mut lines = vcd.lines().enumerate();
        for (lineno, line) in lines.by_ref() {
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.first() == Some(&"$var") {
                // $var wire 1 <code> <name> [$end]
                if toks.len() < 5 {
                    return Err(VcdReadError::Malformed {
                        line: lineno + 1,
                        message: "short $var declaration".to_owned(),
                    });
                }
                let code = toks[3].to_owned();
                let name = toks[4];
                if name == clock_name {
                    clock_code = Some(code);
                } else if let Some(id) = alphabet.lookup(name) {
                    code_to_symbol.insert(code, id);
                }
            } else if toks.first() == Some(&"$enddefinitions") {
                break;
            }
        }
        let clock_code = clock_code.ok_or_else(|| VcdReadError::MissingClock {
            name: clock_name.to_owned(),
        })?;

        Ok(VcdStream {
            lines,
            code_to_symbol,
            clock_code,
            current: Valuation::empty(),
            clock_level: false,
            pending_sample: false,
            done: false,
        })
    }

    /// Clears `buf` and refills it with up to `max` sampled
    /// valuations, returning how many were produced. `Ok(0)` signals
    /// end of input — except that `max == 0` also returns `Ok(0)`
    /// without consuming anything (like `Read::read` with an empty
    /// buffer), so never poll for end of input with a zero chunk
    /// size.
    ///
    /// # Errors
    ///
    /// Returns [`VcdReadError::Malformed`] on unparseable value
    /// changes. An error poisons the stream: every subsequent call
    /// returns `Ok(0)`, so a caller that retries cannot silently
    /// resume past corrupt input.
    pub fn next_chunk(
        &mut self,
        buf: &mut Vec<Valuation>,
        max: usize,
    ) -> Result<usize, VcdReadError> {
        buf.clear();
        if self.done || max == 0 {
            return Ok(0);
        }
        while buf.len() < max {
            let Some((lineno, raw)) = self.lines.next() else {
                self.done = true;
                if self.pending_sample {
                    self.pending_sample = false;
                    buf.push(self.current);
                }
                break;
            };
            let line = raw.trim();
            if line.is_empty() || line.starts_with('$') {
                continue; // directives ($dumpvars bodies are value changes)
            }
            if line.strip_prefix('#').is_some() {
                if self.pending_sample {
                    self.pending_sample = false;
                    buf.push(self.current);
                }
                continue;
            }
            let (value, code) = match parse_change(line, lineno) {
                Ok(parsed) => parsed,
                Err(e) => {
                    self.done = true;
                    return Err(e);
                }
            };
            if code == self.clock_code {
                if value && !self.clock_level {
                    self.pending_sample = true; // rising edge: sample at block end
                }
                self.clock_level = value;
            } else if let Some(&id) = self.code_to_symbol.get(code) {
                if value {
                    self.current.insert(id);
                } else {
                    self.current.remove(id);
                }
            }
        }
        Ok(buf.len())
    }
}

/// Parses one VCD value-change line into `(value, identifier code)`.
fn parse_change(line: &str, lineno: usize) -> Result<(bool, &str), VcdReadError> {
    if let Some(rest) = line.strip_prefix('b') {
        // vector: b<binary> <code>
        let mut parts = rest.split_whitespace();
        let bits = parts.next().unwrap_or("");
        let code = parts.next().ok_or_else(|| VcdReadError::Malformed {
            line: lineno + 1,
            message: "vector change missing identifier".to_owned(),
        })?;
        Ok((bits.contains('1'), code))
    } else {
        let mut chars = line.chars();
        let v = chars.next().ok_or_else(|| VcdReadError::Malformed {
            line: lineno + 1,
            message: "empty value change".to_owned(),
        })?;
        let value = match v {
            '1' => true,
            '0' | 'x' | 'X' | 'z' | 'Z' => false,
            other => {
                return Err(VcdReadError::Malformed {
                    line: lineno + 1,
                    message: format!("unsupported value change `{other}`"),
                })
            }
        };
        Ok((value, chars.as_str().trim()))
    }
}

/// Parses VCD text and samples the signals named in `alphabet` at each
/// rising edge of `clock_name`, returning the reconstructed trace.
///
/// Convenience wrapper draining a [`VcdStream`] — use the stream
/// directly to check long waveforms in bounded memory.
///
/// # Errors
///
/// Returns [`VcdReadError::MissingClock`] if `clock_name` is not
/// declared, or [`VcdReadError::Malformed`] on unparseable content.
pub fn read_vcd(
    vcd: &str,
    alphabet: &Alphabet,
    clock_name: &str,
) -> Result<Trace, VcdReadError> {
    let mut stream = VcdStream::new(vcd, alphabet, clock_name)?;
    let mut trace = Trace::new();
    let mut chunk = Vec::new();
    while stream.next_chunk(&mut chunk, 4096)? > 0 {
        trace.extend(chunk.iter().copied());
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Alphabet, SymbolId, SymbolId) {
        let mut ab = Alphabet::new();
        let a = ab.event("req");
        let b = ab.prop("burst");
        (ab, a, b)
    }

    #[test]
    fn write_then_read_round_trips() {
        let (ab, a, b) = setup();
        let t = Trace::from_elements([
            Valuation::of([a]),
            Valuation::of([a, b]),
            Valuation::empty(),
            Valuation::of([b]),
        ]);
        let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
        let back = read_vcd(&vcd, &ab, "clk").unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn empty_trace_round_trips() {
        let (ab, _, _) = setup();
        let t = Trace::new();
        let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
        let back = read_vcd(&vcd, &ab, "clk").unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn missing_clock_is_an_error() {
        let (ab, _, _) = setup();
        let t = Trace::from_elements([Valuation::empty()]);
        let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
        let err = read_vcd(&vcd, &ab, "not_a_clock").unwrap_err();
        assert!(matches!(err, VcdReadError::MissingClock { .. }));
    }

    #[test]
    fn unknown_signals_are_ignored() {
        let (ab, a, _) = setup();
        let vcd = "\
$timescale 1ns $end
$scope module top $end
$var wire 1 ! clk $end
$var wire 1 \" req $end
$var wire 1 # mystery $end
$upscope $end
$enddefinitions $end
#0
0!
0\"
1#
#5
1!
1\"
#10
0!
";
        let t = read_vcd(vcd, &ab, "clk").unwrap();
        assert_eq!(t.len(), 1);
        assert!(t[0].contains(a));
    }

    #[test]
    fn x_and_z_values_read_as_false() {
        let (ab, a, _) = setup();
        let vcd = "\
$var wire 1 ! clk $end
$var wire 1 \" req $end
$enddefinitions $end
#0
1\"
1!
#5
0!
x\"
#10
1!
";
        let t = read_vcd(vcd, &ab, "clk").unwrap();
        assert_eq!(t.len(), 2);
        assert!(t[0].contains(a));
        assert!(!t[1].contains(a));
    }

    #[test]
    fn vector_changes_map_to_any_bit_set() {
        let (ab, a, _) = setup();
        let vcd = "\
$var wire 4 ! clk $end
$var wire 4 \" req $end
$enddefinitions $end
#0
b0010 \"
1!
#5
0!
b0000 \"
#10
1!
";
        let t = read_vcd(vcd, &ab, "clk").unwrap();
        assert_eq!(t.len(), 2);
        assert!(t[0].contains(a));
        assert!(!t[1].contains(a));
    }

    #[test]
    fn streaming_chunks_equal_whole_file_read() {
        let (ab, a, b) = setup();
        // 100 ticks of varied activity
        let t: Trace = (0..100u32)
            .map(|i| {
                let mut v = Valuation::empty();
                if i % 2 == 0 {
                    v.insert(a);
                }
                if i % 3 == 0 {
                    v.insert(b);
                }
                v
            })
            .collect();
        let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
        let whole = read_vcd(&vcd, &ab, "clk").unwrap();
        assert_eq!(whole, t);
        for chunk_size in [1usize, 3, 7, 64, 1000] {
            let mut stream = VcdStream::new(&vcd, &ab, "clk").unwrap();
            let mut got = Trace::new();
            let mut chunk = Vec::new();
            loop {
                let n = stream.next_chunk(&mut chunk, chunk_size).unwrap();
                if n == 0 {
                    break;
                }
                assert!(chunk.len() <= chunk_size);
                got.extend(chunk.iter().copied());
            }
            assert_eq!(got, t, "chunk size {chunk_size}");
            // drained stream stays at EOF
            assert_eq!(stream.next_chunk(&mut chunk, chunk_size).unwrap(), 0);
        }
    }

    #[test]
    fn error_poisons_stream() {
        let (ab, _, _) = setup();
        let vcd = "\
$var wire 1 ! clk $end
$var wire 1 \" req $end
$enddefinitions $end
#0
1!
#5
0!
q\"
#10
1!
";
        let mut stream = VcdStream::new(vcd, &ab, "clk").unwrap();
        let mut chunk = Vec::new();
        assert!(matches!(
            stream.next_chunk(&mut chunk, 100),
            Err(VcdReadError::Malformed { line: 8, .. })
        ));
        // a retry must NOT resume past the corrupt line
        assert_eq!(stream.next_chunk(&mut chunk, 100).unwrap(), 0);
    }

    #[test]
    fn stream_reports_missing_clock() {
        let (ab, _, _) = setup();
        let t = Trace::from_elements([Valuation::empty()]);
        let vcd = write_vcd(&t, &ab, &VcdWriteOptions::default());
        assert!(matches!(
            VcdStream::new(&vcd, &ab, "ghost"),
            Err(VcdReadError::MissingClock { .. })
        ));
    }

    #[test]
    fn id_codes_are_printable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = id_code(i);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn malformed_input_reports_line() {
        let (ab, _, _) = setup();
        let vcd = "\
$var wire 1 ! clk $end
$enddefinitions $end
#0
q!
";
        let err = read_vcd(vcd, &ab, "clk").unwrap_err();
        match err {
            VcdReadError::Malformed { line, .. } => assert_eq!(line, 4),
            other => panic!("unexpected {other:?}"),
        }
    }
}
