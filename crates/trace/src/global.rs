//! Multi-clock global runs.
//!
//! "For defining the semantics of multi-clocked CESCs a global run is
//! defined over a global clock, which is obtained as a union of clock
//! ticks contributed by all the component clocks in the system" (paper
//! §3). A [`GlobalRun`] interleaves the per-domain traces onto the merged
//! tick schedule of a [`ClockSet`]; each [`GlobalStep`] records which
//! domains ticked and their valuations.

use std::fmt;

use cesc_expr::{Alphabet, Valuation};

use crate::clock::{ClockId, ClockSet};
use crate::trace::Trace;

/// One instant of a global run: the global time plus the `(clock,
/// valuation)` pairs of every domain that ticks at that instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalStep {
    /// Global time of the step.
    pub time: u64,
    /// Ticking domains with their tick valuations, ascending by clock id.
    pub ticks: Vec<(ClockId, Valuation)>,
}

impl GlobalStep {
    /// The valuation contributed by `clock` at this step, if it ticked.
    pub fn tick_of(&self, clock: ClockId) -> Option<Valuation> {
        self.ticks
            .iter()
            .find(|(c, _)| *c == clock)
            .map(|&(_, v)| v)
    }
}

/// Error from [`GlobalRun::interleave`]: per-domain trace lengths do not
/// allow a consistent interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterleaveError {
    /// The clock whose trace ran out first.
    pub clock: ClockId,
    /// Ticks the schedule demanded of that clock.
    pub needed: usize,
    /// Ticks its trace actually provided.
    pub provided: usize,
}

impl fmt::Display for InterleaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace for {} too short: schedule needs {} ticks, trace has {}",
            self.clock, self.needed, self.provided
        )
    }
}

impl std::error::Error for InterleaveError {}

/// A finite prefix of a multi-clock global run.
///
/// # Examples
///
/// ```
/// use cesc_expr::{Alphabet, Valuation};
/// use cesc_trace::{ClockDomain, ClockSet, GlobalRun, Trace};
///
/// let mut ab = Alphabet::new();
/// let req = ab.event("req");
/// let mut clocks = ClockSet::new();
/// let fast = clocks.add(ClockDomain::new("fast", 1, 0));
/// let slow = clocks.add(ClockDomain::new("slow", 2, 0));
///
/// let fast_trace = Trace::from_elements([Valuation::of([req]); 4]);
/// let slow_trace = Trace::from_elements([Valuation::empty(); 2]);
/// let run = GlobalRun::interleave(&clocks, &[(fast, fast_trace), (slow, slow_trace)])?;
/// assert_eq!(run.len(), 4); // global instants 0,1,2,3
/// assert_eq!(run.project(fast).len(), 4);
/// assert_eq!(run.project(slow).len(), 2);
/// # Ok::<(), cesc_trace::InterleaveError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GlobalRun {
    steps: Vec<GlobalStep>,
}

impl GlobalRun {
    /// Creates an empty global run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step.
    ///
    /// # Panics
    ///
    /// Panics if `step.time` is not strictly greater than the last step's
    /// time (global instants are strictly ordered).
    pub fn push(&mut self, step: GlobalStep) {
        if let Some(last) = self.steps.last() {
            assert!(
                step.time > last.time,
                "global steps must have strictly increasing times ({} after {})",
                step.time,
                last.time
            );
        }
        self.steps.push(step);
    }

    /// Interleaves per-domain traces onto `clocks`' merged schedule.
    ///
    /// The schedule runs until every supplied trace is exhausted; the
    /// `k`-th tick of domain `c` carries `traces[c][k]`.
    ///
    /// # Errors
    ///
    /// Returns [`InterleaveError`] if the traces cannot be consistently
    /// consumed (a domain's trace runs out while another still has
    /// elements scheduled *before* the exhausted domain's next tick would
    /// occur — i.e. lengths are mutually inconsistent with the schedule).
    pub fn interleave(
        clocks: &ClockSet,
        traces: &[(ClockId, Trace)],
    ) -> Result<GlobalRun, InterleaveError> {
        let mut consumed: Vec<usize> = vec![0; clocks.len()];
        let lengths: Vec<usize> = {
            let mut l = vec![0; clocks.len()];
            for (c, t) in traces {
                l[c.index()] = t.len();
            }
            l
        };
        let by_clock: Vec<Option<&Trace>> = {
            let mut v: Vec<Option<&Trace>> = vec![None; clocks.len()];
            for (c, t) in traces {
                v[c.index()] = Some(t);
            }
            v
        };
        let mut run = GlobalRun::new();
        for instant in clocks.schedule() {
            // stop once every trace fully consumed
            if consumed
                .iter()
                .zip(&lengths)
                .all(|(done, total)| done >= total)
            {
                break;
            }
            let mut ticks = Vec::new();
            for c in instant.ticking {
                let idx = c.index();
                if let Some(t) = by_clock[idx] {
                    if consumed[idx] < t.len() {
                        ticks.push((c, t[consumed[idx]]));
                        consumed[idx] += 1;
                    } else {
                        // this domain's trace is exhausted but others are
                        // not: the lengths disagree with the schedule
                        return Err(InterleaveError {
                            clock: c,
                            needed: consumed[idx] + 1,
                            provided: t.len(),
                        });
                    }
                }
            }
            if !ticks.is_empty() {
                run.push(GlobalStep {
                    time: instant.time,
                    ticks,
                });
            }
        }
        Ok(run)
    }

    /// Number of global steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the run has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The step at index `n`.
    pub fn get(&self, n: usize) -> Option<&GlobalStep> {
        self.steps.get(n)
    }

    /// Iterates over the steps in time order.
    pub fn iter(&self) -> impl Iterator<Item = &GlobalStep> {
        self.steps.iter()
    }

    /// The underlying slice of steps — the form the batched multi-clock
    /// engine consumes in chunks.
    pub fn as_slice(&self) -> &[GlobalStep] {
        &self.steps
    }

    /// Projects the run onto one clock domain, recovering its local trace.
    pub fn project(&self, clock: ClockId) -> Trace {
        self.steps
            .iter()
            .filter_map(|s| s.tick_of(clock))
            .collect()
    }

    /// Renders the run with symbol names:
    /// `t=3 clk0:{req} clk1:{rdy}`.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> impl fmt::Display + 'a {
        DisplayGlobalRun {
            run: self,
            alphabet,
        }
    }
}

struct DisplayGlobalRun<'a> {
    run: &'a GlobalRun,
    alphabet: &'a Alphabet,
}

impl fmt::Display for DisplayGlobalRun<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.run.steps {
            write!(f, "t={:<5}", step.time)?;
            for (c, v) in &step.ticks {
                write!(f, " {}:{}", c, v.display(self.alphabet))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockDomain;

    fn two_clock_setup() -> (ClockSet, ClockId, ClockId, Alphabet, cesc_expr::SymbolId) {
        let mut cs = ClockSet::new();
        let a = cs.add(ClockDomain::new("a", 2, 0));
        let b = cs.add(ClockDomain::new("b", 3, 0));
        let mut ab = Alphabet::new();
        let e = ab.event("e");
        (cs, a, b, ab, e)
    }

    #[test]
    fn interleave_and_project_round_trip() {
        let (cs, a, b, _, e) = two_clock_setup();
        let ta = Trace::from_elements([Valuation::of([e]), Valuation::empty(), Valuation::of([e])]);
        let tb = Trace::from_elements([Valuation::empty(), Valuation::of([e])]);
        let run = GlobalRun::interleave(&cs, &[(a, ta.clone()), (b, tb.clone())]).unwrap();
        assert_eq!(run.project(a), ta);
        assert_eq!(run.project(b), tb);
        // times: a ticks at 0,2,4; b at 0,3 → steps 0,2,3,4
        let times: Vec<u64> = run.iter().map(|s| s.time).collect();
        assert_eq!(times, vec![0, 2, 3, 4]);
    }

    #[test]
    fn shared_instants_carry_both_ticks() {
        let (cs, a, b, _, e) = two_clock_setup();
        let ta = Trace::from_elements([Valuation::of([e])]);
        let tb = Trace::from_elements([Valuation::empty()]);
        let run = GlobalRun::interleave(&cs, &[(a, ta), (b, tb)]).unwrap();
        let step0 = run.get(0).unwrap();
        assert_eq!(step0.ticks.len(), 2);
        assert_eq!(step0.tick_of(a), Some(Valuation::of([e])));
        assert_eq!(step0.tick_of(b), Some(Valuation::empty()));
    }

    #[test]
    fn inconsistent_lengths_error() {
        let (cs, a, b, _, e) = two_clock_setup();
        // a needs ticks at 0,2,4,6… but provides only 1 element while b
        // provides 3 (ticks 0,3,6) — at time 2, a's trace is exhausted.
        let ta = Trace::from_elements([Valuation::of([e])]);
        let tb = Trace::from_elements([Valuation::empty(); 3]);
        let err = GlobalRun::interleave(&cs, &[(a, ta), (b, tb)]).unwrap_err();
        assert_eq!(err.clock, a);
        assert!(err.to_string().contains("too short"));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn push_enforces_time_order() {
        let mut run = GlobalRun::new();
        run.push(GlobalStep {
            time: 5,
            ticks: vec![],
        });
        run.push(GlobalStep {
            time: 5,
            ticks: vec![],
        });
    }

    #[test]
    fn display_shows_times_and_ticks() {
        let (cs, a, b, ab, e) = two_clock_setup();
        let ta = Trace::from_elements([Valuation::of([e])]);
        let tb = Trace::from_elements([Valuation::empty()]);
        let run = GlobalRun::interleave(&cs, &[(a, ta), (b, tb)]).unwrap();
        let s = run.display(&ab).to_string();
        assert!(s.contains("t=0"));
        assert!(s.contains("{e}"));
    }
}
