//! Clocked event traces — the monitor's input.
//!
//! A [`Trace`] is a finite sequence of [`Valuation`]s, one per clock tick
//! of a single domain; it is the concrete representation of the paper's
//! "clocked event traces" (§4) and of finite prefixes of runs (§3,
//! Definition *Run*: `r : N → STATES`).

use std::fmt;
use std::ops::Index;

use cesc_expr::{Alphabet, Valuation};

/// A finite clocked event trace over one clock domain.
///
/// # Examples
///
/// ```
/// use cesc_expr::{Alphabet, Valuation};
/// use cesc_trace::Trace;
///
/// let mut ab = Alphabet::new();
/// let req = ab.event("req");
/// let mut t = Trace::new();
/// t.push(Valuation::of([req]));
/// t.push(Valuation::empty());
/// assert_eq!(t.len(), 2);
/// assert!(t[0].contains(req));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Trace {
    elements: Vec<Valuation>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a trace with pre-allocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Trace {
            elements: Vec::with_capacity(n),
        }
    }

    /// Builds a trace from valuations.
    pub fn from_elements(elements: impl IntoIterator<Item = Valuation>) -> Self {
        Trace {
            elements: elements.into_iter().collect(),
        }
    }

    /// Appends one tick.
    pub fn push(&mut self, v: Valuation) {
        self.elements.push(v);
    }

    /// Number of ticks.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the trace has no ticks.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The valuation at tick `n`, if in range.
    pub fn get(&self, n: usize) -> Option<Valuation> {
        self.elements.get(n).copied()
    }

    /// Iterates over the valuations in tick order.
    pub fn iter(&self) -> impl Iterator<Item = Valuation> + '_ {
        self.elements.iter().copied()
    }

    /// The underlying slice of valuations.
    pub fn as_slice(&self) -> &[Valuation] {
        &self.elements
    }

    /// The window `[start, start+len)` as a sub-trace, if in range.
    pub fn window(&self, start: usize, len: usize) -> Option<&[Valuation]> {
        let end = start.checked_add(len)?;
        self.elements.get(start..end)
    }

    /// Concatenates another trace onto this one.
    pub fn extend_from(&mut self, other: &Trace) {
        self.elements.extend_from_slice(&other.elements);
    }

    /// All ticks at which `symbol`-bit is true.
    pub fn ticks_where(&self, symbol: cesc_expr::SymbolId) -> Vec<usize> {
        self.elements
            .iter()
            .enumerate()
            .filter(|(_, v)| v.contains(symbol))
            .map(|(i, _)| i)
            .collect()
    }

    /// Renders the trace with symbol names, one tick per line:
    /// `  3: {req, rdy}`.
    pub fn display<'a>(&'a self, alphabet: &'a Alphabet) -> impl fmt::Display + 'a {
        DisplayTrace {
            trace: self,
            alphabet,
        }
    }
}

impl Index<usize> for Trace {
    type Output = Valuation;
    fn index(&self, n: usize) -> &Valuation {
        &self.elements[n]
    }
}

impl FromIterator<Valuation> for Trace {
    fn from_iter<T: IntoIterator<Item = Valuation>>(iter: T) -> Self {
        Trace::from_elements(iter)
    }
}

impl Extend<Valuation> for Trace {
    fn extend<T: IntoIterator<Item = Valuation>>(&mut self, iter: T) {
        self.elements.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = Valuation;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Valuation>>;
    fn into_iter(self) -> Self::IntoIter {
        self.elements.iter().copied()
    }
}

impl IntoIterator for Trace {
    type Item = Valuation;
    type IntoIter = std::vec::IntoIter<Valuation>;
    fn into_iter(self) -> Self::IntoIter {
        self.elements.into_iter()
    }
}

struct DisplayTrace<'a> {
    trace: &'a Trace,
    alphabet: &'a Alphabet,
}

impl fmt::Display for DisplayTrace<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.trace.iter().enumerate() {
            writeln!(f, "{i:>4}: {}", v.display(self.alphabet))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cesc_expr::Alphabet;

    fn setup() -> (Alphabet, cesc_expr::SymbolId, cesc_expr::SymbolId) {
        let mut ab = Alphabet::new();
        let a = ab.event("a");
        let b = ab.event("b");
        (ab, a, b)
    }

    #[test]
    fn push_len_get() {
        let (_, a, _) = setup();
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.push(Valuation::of([a]));
        t.push(Valuation::empty());
        assert_eq!(t.len(), 2);
        assert!(t.get(0).unwrap().contains(a));
        assert!(t.get(1).unwrap().is_empty());
        assert_eq!(t.get(2), None);
    }

    #[test]
    fn windows() {
        let (_, a, b) = setup();
        let t = Trace::from_elements([
            Valuation::of([a]),
            Valuation::of([b]),
            Valuation::of([a, b]),
        ]);
        let w = t.window(1, 2).unwrap();
        assert_eq!(w.len(), 2);
        assert!(w[0].contains(b) && !w[0].contains(a));
        assert!(t.window(2, 2).is_none());
        assert_eq!(t.window(3, 0).unwrap().len(), 0);
    }

    #[test]
    fn ticks_where_finds_occurrences() {
        let (_, a, b) = setup();
        let t = Trace::from_elements([
            Valuation::of([a]),
            Valuation::of([b]),
            Valuation::of([a]),
        ]);
        assert_eq!(t.ticks_where(a), vec![0, 2]);
        assert_eq!(t.ticks_where(b), vec![1]);
    }

    #[test]
    fn collect_and_extend() {
        let (_, a, b) = setup();
        let t: Trace = [Valuation::of([a])].into_iter().collect();
        let mut u = Trace::new();
        u.extend([Valuation::of([b])]);
        let mut joined = t.clone();
        joined.extend_from(&u);
        assert_eq!(joined.len(), 2);
        assert!(joined[0].contains(a) && joined[1].contains(b));
    }

    #[test]
    fn iteration_borrowed_and_owned() {
        let (_, a, _) = setup();
        let t = Trace::from_elements([Valuation::of([a]), Valuation::empty()]);
        assert_eq!((&t).into_iter().count(), 2);
        assert_eq!(t.clone().into_iter().count(), 2);
        assert_eq!(t.as_slice().len(), 2);
    }

    #[test]
    fn display_lists_ticks() {
        let (ab, a, b) = setup();
        let t = Trace::from_elements([Valuation::of([a]), Valuation::of([a, b])]);
        let s = t.display(&ab).to_string();
        assert!(s.contains("0: {a}"));
        assert!(s.contains("1: {a, b}"));
    }
}
