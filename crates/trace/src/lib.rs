//! # cesc-trace — clocked traces, global runs and VCD I/O
//!
//! Trace substrate of the CESC monitor-synthesis reproduction (Gadkari &
//! Ramesh, DATE 2005):
//!
//! * [`Trace`] — a finite clocked event trace over one domain (the
//!   monitor's input, paper §4);
//! * [`ClockDomain`] / [`ClockSet`] — periodic clocks of a GALS system
//!   and their merged ("union") tick schedule (paper §3);
//! * [`GlobalRun`] — a multi-clock run interleaving per-domain traces;
//! * [`write_vcd`] / [`read_vcd`] / [`write_vcd_global`] — Value
//!   Change Dump export/import so monitors can check waveforms from
//!   real HDL simulators;
//! * [`VcdStream`] / [`GlobalVcdStream`] — streaming VCD readers over
//!   any [`std::io::BufRead`]: single-clock valuation chunks or
//!   multi-clock [`GlobalStep`] chunks, in constant memory;
//! * [`TraceGen`] — deterministic noise / planted-scenario / repeated
//!   transaction generators for benchmarks and property tests.
//!
//! # Example
//!
//! ```
//! use cesc_expr::{Alphabet, Valuation};
//! use cesc_trace::{Trace, TraceGen, write_vcd, read_vcd, VcdWriteOptions};
//!
//! let mut ab = Alphabet::new();
//! let req = ab.event("req");
//! let mut gen = TraceGen::new(1, &ab);
//! let trace = gen.noise(100, 0.25);
//!
//! let vcd = write_vcd(&trace, &ab, &VcdWriteOptions::default());
//! let back = read_vcd(&vcd, &ab, "clk")?;
//! assert_eq!(back, trace);
//! # Ok::<(), cesc_trace::VcdReadError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clock;
mod gen;
mod global;
mod trace;
mod vcd;

pub use clock::{ClockDomain, ClockId, ClockSet, GlobalInstant, Schedule};
pub use gen::TraceGen;
pub use global::{GlobalRun, GlobalStep, InterleaveError};
pub use trace::Trace;
pub use vcd::{
    read_vcd, write_vcd, write_vcd_global, write_vcd_global_to, GlobalVcdStream, VcdClockSpec,
    VcdReadError, VcdStream, VcdWriteOptions,
};

// Chunk hand-off contract: the decoupled harnesses in `cesc-sim` and
// the sharded fleet executor in `cesc-par` move decoded chunks
// (`Vec<Valuation>`, `Vec<GlobalStep>`) and clock sets across threads.
// Pin thread-safety at compile time so an accidental `Rc`/`RefCell`/
// raw-pointer field in any of these types fails this crate's build
// instead of surfacing as a distant trait-bound error in a consumer.
const _: () = {
    const fn chunk_handoff_is_thread_safe<T: Send + Sync>() {}
    chunk_handoff_is_thread_safe::<cesc_expr::Valuation>();
    chunk_handoff_is_thread_safe::<Trace>();
    chunk_handoff_is_thread_safe::<GlobalStep>();
    chunk_handoff_is_thread_safe::<GlobalRun>();
    chunk_handoff_is_thread_safe::<ClockId>();
    chunk_handoff_is_thread_safe::<ClockSet>();
};
