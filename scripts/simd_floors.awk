# Acceptance floors for the bit-sliced engine (the `make verify-simd`
# gate). Input: the one-line JSON trajectory records printed by
# `cargo bench` (cesc_bench::emit_record), one record per line.
#
# Floors:
#   simd_throughput / sparse_guard_hit   speedup_vs_batch >= 2.0
#   simd_throughput / ocp_burst_read     speedup_vs_batch >= 1.3
#   parallel_throughput                  speedup          >= 1.0

function field(name,    a) {
    if (match($0, "\"" name "\":-?[0-9.eE+-]+")) {
        split(substr($0, RSTART, RLENGTH), a, ":")
        return a[2] + 0
    }
    return -1
}

function floor_check(label, value, floor) {
    if (value < floor) {
        printf "FAIL %s %.3f < %.1f\n", label, value, floor
        bad = 1
    } else {
        printf "ok   %s %.3f >= %.1f\n", label, value, floor
    }
}

/"bench":"simd_throughput"/ && /"workload":"sparse_guard_hit"/ {
    seen_sparse = 1
    floor_check("sparse_guard_hit speedup_vs_batch", field("speedup_vs_batch"), 2.0)
}

/"bench":"simd_throughput"/ && /"workload":"ocp_burst_read"/ {
    seen_ocp = 1
    floor_check("ocp_burst_read speedup_vs_batch", field("speedup_vs_batch"), 1.3)
}

/"bench":"parallel_throughput"/ {
    seen_par = 1
    floor_check("parallel_throughput speedup", field("speedup"), 1.0)
}

END {
    if (!seen_sparse || !seen_ocp || !seen_par) {
        print "FAIL missing bench record(s)"
        bad = 1
    }
    exit bad
}
